"""Real-process de Bruijn cluster runtime (E25).

Each prefix-shard group of DG(d, k) runs as its own OS process serving
route queries over the E21 TCP protocol, while the SWIM layer from
:mod:`repro.network.membership` — the very same :class:`SwimMember`
state machine the simulator drives — runs over wall-clock asyncio UDP
datagrams.  A DEAD verdict triggers detection-driven self-healing
(:class:`repro.network.resilience.SelfHealingRouteTable`) in every
surviving process, with distance-ranked local detours answering queries
whose next hop died until the repair lands.

Layout:

* :mod:`repro.cluster.codec` — the SWIM datagram wire format.
* :mod:`repro.cluster.swim` — wall-clock :class:`Clock`/``Transport``
  bindings and the per-process :class:`SwimAgent`.
* :mod:`repro.cluster.node` — the node process: engine + server +
  agent + self-healing loop.
* :mod:`repro.cluster.harness` — spawn/kill/isolate N node processes
  and run measured fault drills (the ``repro cluster`` CLI's engine).
"""

from repro.cluster.codec import decode_packet, encode_packet
from repro.cluster.node import ClusterNodeSpec, ClusterQueryEngine
from repro.cluster.harness import (ClusterHarness, ClusterSpec,
                                   run_kill_drill)
from repro.cluster.swim import SwimAgent

__all__ = [
    "ClusterHarness",
    "ClusterNodeSpec",
    "ClusterQueryEngine",
    "ClusterSpec",
    "SwimAgent",
    "decode_packet",
    "encode_packet",
    "run_kill_drill",
]
