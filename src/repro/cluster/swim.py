"""Wall-clock bindings for the SWIM state machine (E25).

The simulator runs :class:`~repro.network.membership.SwimMember`
instances over a discrete-event heap and symbolic packet delivery; this
module runs the *same* class over the asyncio event loop and real UDP
datagrams:

* :class:`WallClock` — ``Clock`` over ``loop.call_later`` (monotonic
  loop time, cancellable handles so a closed agent leaves no timers).
* :class:`UdpSwimTransport` — ``Transport`` that serializes packets
  through :mod:`repro.cluster.codec` and fires them at per-node peer
  addresses.  UDP is the honest medium for SWIM: sends never block,
  never error a live sender, and silence is exactly what the protocol
  is designed to detect.
* :class:`SwimAgent` — one per node process: binds the datagram
  endpoint, owns the member, decodes/validates incoming gossip (a
  malformed datagram is counted and dropped, never applied), and
  reports confirmed-dead-set changes upward so the node can trigger
  table repair.

Node identities are small ints ``0..n_nodes-1`` over a complete
membership graph — the cluster runs one SWIM participant per *process*
(a prefix-shard group of sites), not per de Bruijn site, so fleet sizes
are tens, not ``d^k``.
"""

from __future__ import annotations

import asyncio
import math
import random
from typing import Callable, Dict, FrozenSet, Mapping, Optional, Set, Tuple

from repro.cluster.codec import decode_packet, encode_packet
from repro.exceptions import ProtocolError
from repro.network.membership import (Clock, SwimConfig, SwimListener,
                                      SwimMember, SwimPacket, Transport)
from repro.service.metrics import MetricsRegistry

Address = Tuple[str, int]


class WallClock(Clock):
    """Member timers on the asyncio loop's monotonic clock."""

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop
        self._handles: Set[asyncio.TimerHandle] = set()
        self._closed = False

    def now(self) -> float:
        """The loop's monotonic time (the member's wall clock)."""
        return self._loop.time()

    def call_later(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` after ``delay`` seconds; tracked for close()."""
        if self._closed:
            return
        handle: Optional[asyncio.TimerHandle] = None

        def fire() -> None:
            self._handles.discard(handle)
            fn()

        handle = self._loop.call_later(delay, fire)
        self._handles.add(handle)

    def close(self) -> None:
        """Cancel every outstanding timer; further schedules are no-ops."""
        self._closed = True
        for handle in self._handles:
            handle.cancel()
        self._handles.clear()


class UdpSwimTransport(Transport):
    """Fire-and-forget datagrams to per-node peer addresses.

    ``peers`` maps node id -> UDP address; when the harness interposes
    wire-fault proxies, those are proxy addresses and the transport
    neither knows nor cares.  Unknown destinations and OS-level send
    errors (a peer's port going unreachable mid-fault) drop the packet
    silently — exactly the simulator transport's contract.
    """

    def __init__(
        self,
        sendto: Callable[[bytes, Address], None],
        peers: Mapping[int, Address],
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._sendto = sendto
        self._peers = dict(peers)
        self._registry = registry

    def send(self, source: int, destination: int,
             packet: SwimPacket) -> None:
        """Encode and fire one packet at ``destination``'s address."""
        address = self._peers.get(destination)
        if address is None:
            return
        data = encode_packet(packet)
        try:
            self._sendto(data, address)
        except OSError:  # pragma: no cover - kernel-dependent
            return
        if self._registry is not None:
            self._registry.inc("swim.datagrams_sent")
            self._registry.inc("swim.bytes_sent", len(data))


class _SwimProtocol(asyncio.DatagramProtocol):
    def __init__(self, agent: "SwimAgent") -> None:
        self._agent = agent

    def datagram_received(self, data: bytes, addr: Address) -> None:
        self._agent._on_datagram(data)

    def error_received(self, exc: Exception) -> None:
        # ICMP port-unreachable for a freshly killed peer: expected
        # noise during exactly the faults SWIM exists to detect.
        pass


class SwimAgent(SwimListener):
    """One process's SWIM participant over a real UDP socket.

    ``on_dead_change`` fires (in the event loop) with the member's full
    confirmed-dead node set whenever it changes — conviction or
    acquittal — which is where the node process hangs detection-driven
    table repair.  ``update_budget`` defaults to the same
    ``retransmit_mult * log2(N)`` epidemic budget the simulator uses.
    """

    def __init__(
        self,
        node_id: int,
        n_nodes: int,
        config: SwimConfig,
        *,
        peers: Mapping[int, Address],
        bind: Address,
        registry: Optional[MetricsRegistry] = None,
        on_dead_change: Optional[Callable[[FrozenSet[int]], None]] = None,
        update_budget: Optional[int] = None,
    ) -> None:
        if not 0 <= node_id < n_nodes:
            raise ProtocolError(
                f"node id {node_id} outside cluster of {n_nodes}")
        self.node_id = node_id
        self.n_nodes = n_nodes
        self.config = config
        self.registry = registry if registry is not None else MetricsRegistry()
        self.on_dead_change = on_dead_change
        self._peers = dict(peers)
        self._bind = bind
        self._budget = update_budget if update_budget is not None else max(
            3, math.ceil(config.retransmit_mult * math.log2(n_nodes + 1)))
        self._udp: Optional[asyncio.DatagramTransport] = None
        self.clock: Optional[WallClock] = None
        self.member: Optional[SwimMember] = None
        self._last_dead: FrozenSet[int] = frozenset()

    async def start(self, sock=None) -> Address:
        """Bind the socket, arm the probe loop; returns the bound address.

        ``sock`` serves datagrams from a pre-bound UDP socket instead of
        binding ``bind`` — the harness pre-binds in the parent and hands
        the socket through the fork, eliminating port races.
        """
        loop = asyncio.get_running_loop()
        if sock is not None:
            self._udp, _ = await loop.create_datagram_endpoint(
                lambda: _SwimProtocol(self), sock=sock)
        else:
            self._udp, _ = await loop.create_datagram_endpoint(
                lambda: _SwimProtocol(self), local_addr=self._bind)
        self.clock = WallClock(loop)
        transport = UdpSwimTransport(
            self._udp.sendto, self._peers, self.registry)
        self.member = SwimMember(
            self.node_id,
            [node for node in range(self.n_nodes) if node != self.node_id],
            self.config,
            clock=self.clock,
            transport=transport,
            rng=random.Random(f"{self.config.seed}:node:{self.node_id}"),
            listener=self,
            update_budget=self._budget,
        )
        self.member.start()
        return self._udp.get_extra_info("sockname")[:2]

    def dead_nodes(self) -> FrozenSet[int]:
        """This node's current confirmed-dead peer set."""
        if self.member is None:
            return frozenset()
        return self.member.view.dead_sites()

    # -- datagram ingress ------------------------------------------------

    def _on_datagram(self, data: bytes) -> None:
        registry = self.registry
        registry.inc("swim.datagrams_received")
        try:
            packet = decode_packet(data, self.n_nodes)
        except ProtocolError:
            registry.inc("swim.malformed_datagrams")
            return
        if packet.source == self.node_id:
            return  # reflected own traffic (misconfigured proxy loop)
        if self.member is not None:
            self.member.on_packet(packet)

    # -- SwimListener ----------------------------------------------------

    def on_dead_marked(self, observer: int, subject: int,
                       incarnation: int) -> None:
        """SwimListener hook: a conviction changed the dead set."""
        self.registry.inc("swim.convictions")
        self._publish()

    def on_cleared(self, observer: int, subject: int, incarnation: int,
                   firsthand: bool) -> None:
        """SwimListener hook: an acquittal may have shrunk the dead set."""
        self._publish()

    def _publish(self) -> None:
        member = self.member
        if member is None:
            return
        dead = member.view.dead_sites()
        self.registry.set_counter("swim.incarnation",
                                  member.view.incarnation)
        if dead == self._last_dead:
            return
        self._last_dead = dead
        self.registry.set_counter("swim.dead_count", len(dead))
        if self.on_dead_change is not None:
            self.on_dead_change(dead)

    async def close(self) -> None:
        """Cancel timers and release the socket."""
        if self.clock is not None:
            self.clock.close()
        if self._udp is not None:
            self._udp.close()
            self._udp = None
