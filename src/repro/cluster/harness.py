"""Process-level fault harness for the de Bruijn cluster (E25).

:class:`ClusterHarness` spawns one OS process per prefix-shard group
(:func:`repro.cluster.node.cluster_node_main` via the ``fork`` start
method), injects process faults (SIGKILL, SIGSTOP, double-fault) and
wire faults (black-hole partitions through per-node
:class:`~repro.service.chaosproxy.UdpChaosProxy` relays), and measures
what the survivors actually do about it:

* **detection latency** — wall time from the fault to each survivor's
  ``cluster.dead_mask`` reflecting the verdict, asserted against
  :meth:`ClusterSpec.detection_bound`;
* **repair fidelity** — each survivor's ``cluster.table_digest`` must
  converge to the digest of a fresh
  :func:`~repro.network.resilience.compile_with_failures` over the
  surviving topology (byte-identity, not plausibility);
* **delivery** — a concurrent :func:`run_robust_burst` through the kill
  must finish with zero synthetic-timeout replies and zero errors.

All ports are pre-bound in the parent and handed through the fork, so
readiness never races a bind and a killed node's ports die with it
(clients see ``ECONNREFUSED``, not a hang).
"""

from __future__ import annotations

import asyncio
import os
import signal
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.cluster.codec import peek_source
from repro.cluster.node import ClusterNodeSpec, cluster_node_main, table_digest
from repro.core.packed import PackedSpace
from repro.core.parallel import ACTION_UNREACHABLE
from repro.exceptions import RoutingError, SimulationError
from repro.network.resilience import compile_with_failures
from repro.service.chaosproxy import DatagramFaultPlan, UdpChaosProxy
from repro.service.client import fetch_stats, run_robust_burst
from repro.service.metrics import MetricsRegistry

WordTuple = Tuple[int, ...]


@dataclass(frozen=True)
class ClusterSpec:
    """Shape and timing of one harness-managed cluster."""

    d: int = 2
    k: int = 5
    nodes: int = 4
    directed: bool = False
    host: str = "127.0.0.1"
    probe_interval: float = 0.25
    probe_timeout: float = 0.12
    suspicion_timeout: float = 0.6
    indirect_probes: int = 1
    piggyback_limit: int = 8
    seed: str = "cluster"
    repair_delay: float = 0.0
    #: Interpose a :class:`UdpChaosProxy` in front of every node's
    #: membership port (required for :meth:`ClusterHarness.isolate`).
    use_proxies: bool = False
    proxy_plan: DatagramFaultPlan = field(default_factory=DatagramFaultPlan)

    def __post_init__(self) -> None:
        order = self.d ** self.k
        if self.nodes < 2:
            raise SimulationError("a cluster needs at least 2 nodes")
        if self.nodes > order:
            raise SimulationError(
                f"{self.nodes} nodes cannot partition {order} sites")

    @property
    def order(self) -> int:
        return self.d ** self.k

    def site_ranges(self) -> Tuple[Tuple[int, int], ...]:
        """Partition ``[0, d**k)`` into ``nodes`` contiguous ranges.

        Remainder sites go to the low-id nodes, so range sizes differ by
        at most one — every node owns at least one site.
        """
        order, nodes = self.order, self.nodes
        base, extra = divmod(order, nodes)
        ranges: List[Tuple[int, int]] = []
        start = 0
        for node in range(nodes):
            stop = start + base + (1 if node < extra else 0)
            ranges.append((start, stop))
            start = stop
        return tuple(ranges)

    def detection_bound(self) -> float:
        """Worst-case wall-clock kill->verdict latency (plus slack).

        One full shuffled round-robin sweep can *just* miss the victim
        (``(nodes-1) * probe_interval`` per sweep, so two sweeps bound
        the next direct probe), the probe waits out its direct and
        indirect timeouts, then the suspicion window must lapse.  One
        extra second absorbs scheduler and loop-dispatch noise.
        """
        return (2 * (self.nodes - 1) * self.probe_interval
                + 2 * self.probe_timeout
                + self.suspicion_timeout
                + 1.0)


class _ProxyLoopThread:
    """A private event loop thread hosting the UDP chaos proxies."""

    def __init__(self) -> None:
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="cluster-proxy-loop", daemon=True)
        self._thread.start()
        self._ready.wait()

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.call_soon(self._ready.set)
        self.loop.run_forever()

    def call(self, coro):
        """Run a coroutine on the proxy loop and wait for its result."""
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result(10.0)

    def fire(self, fn, *args) -> None:
        """Invoke a plain callable on the proxy loop (fire-and-forget)."""
        self.loop.call_soon_threadsafe(fn, *args)

    def close(self) -> None:
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=5.0)
        if not self.loop.is_closed():
            self.loop.close()


class ClusterHarness:
    """Spawn, fault, observe, and tear down a real-process cluster."""

    def __init__(self, spec: ClusterSpec, workdir: str) -> None:
        self.spec = spec
        self.workdir = workdir
        self.table_path = os.path.join(workdir, "cluster-table.dbrt")
        self.processes: List = []  # multiprocessing.Process per node
        self.tcp_ports: List[int] = []
        self.swim_ports: List[int] = []
        self.proxies: List[Optional[UdpChaosProxy]] = []
        self.registry = MetricsRegistry()
        self._proxy_loop: Optional[_ProxyLoopThread] = None
        self._space = PackedSpace(spec.d, spec.k)
        self._digests: Dict[FrozenSet[int], int] = {}

    # -- lifecycle -------------------------------------------------------

    def up(self, timeout: float = 20.0) -> None:
        """Compile the table, bind every port, fork the fleet, await
        readiness."""
        import multiprocessing

        spec = self.spec
        os.makedirs(self.workdir, exist_ok=True)
        pristine = compile_with_failures(
            spec.d, spec.k, directed=spec.directed, failed=())
        pristine.save(self.table_path)
        self._digests[frozenset()] = table_digest(pristine)

        tcp_socks: List[socket.socket] = []
        udp_socks: List[socket.socket] = []
        real_swim: List[Tuple[str, int]] = []
        for _ in range(spec.nodes):
            tcp = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            tcp.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            tcp.bind((spec.host, 0))
            tcp.listen(1024)
            tcp_socks.append(tcp)
            self.tcp_ports.append(tcp.getsockname()[1])
            udp = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            udp.bind((spec.host, 0))
            udp_socks.append(udp)
            real_swim.append((spec.host, udp.getsockname()[1]))
        self.swim_ports = [port for _, port in real_swim]

        # Peers address each node through its ingress proxy, when wire
        # faults are in play; the node's own entry stays its real bind
        # (only used as documentation — the socket rides the fork).
        peer_addrs = list(real_swim)
        if spec.use_proxies:
            self._proxy_loop = _ProxyLoopThread()
            for node in range(spec.nodes):
                proxy = UdpChaosProxy(
                    real_swim[node], plan=spec.proxy_plan, host=spec.host,
                    sender_of=peek_source, registry=self.registry)
                addr = self._proxy_loop.call(proxy.start())
                self.proxies.append(proxy)
                peer_addrs[node] = addr
        else:
            self.proxies = [None] * spec.nodes

        ranges = spec.site_ranges()
        context = multiprocessing.get_context("fork")
        for node in range(spec.nodes):
            swim_peers = tuple(
                real_swim[i] if i == node else tuple(peer_addrs[i])
                for i in range(spec.nodes))
            node_spec = ClusterNodeSpec(
                node_id=node,
                n_nodes=spec.nodes,
                d=spec.d,
                k=spec.k,
                directed=spec.directed,
                table_path=self.table_path,
                site_ranges=ranges,
                swim_peers=swim_peers,
                probe_interval=spec.probe_interval,
                probe_timeout=spec.probe_timeout,
                suspicion_timeout=spec.suspicion_timeout,
                indirect_probes=spec.indirect_probes,
                piggyback_limit=spec.piggyback_limit,
                seed=spec.seed,
                repair_delay=spec.repair_delay,
            )
            siblings = ([s for i, s in enumerate(tcp_socks) if i != node]
                        + [s for i, s in enumerate(udp_socks) if i != node])
            process = context.Process(
                target=cluster_node_main,
                args=(node_spec, tcp_socks[node], udp_socks[node], siblings),
                name=f"cluster-node-{node}")
            process.start()
            self.processes.append(process)
        # The children inherited the sockets across the fork; close the
        # parent's copies so a killed node's ports actually die with it.
        for sock in tcp_socks + udp_socks:
            sock.close()
        self.wait_ready(timeout=timeout)
        pristine.close()

    def wait_ready(self, timeout: float = 20.0) -> None:
        """Block until every node answers ``STATS`` on its TCP port."""
        deadline = time.monotonic() + timeout
        for node, port in enumerate(self.tcp_ports):
            while True:
                budget = deadline - time.monotonic()
                if budget <= 0:
                    raise SimulationError(
                        f"node {node} not ready within {timeout}s")
                try:
                    fetch_stats(self.spec.host, port, retries=0)
                    break
                except (ConnectionError, OSError):
                    time.sleep(0.02)

    def stop(self, timeout: float = 5.0) -> None:
        """SIGTERM the fleet, SIGKILL stragglers, stop the proxies."""
        for process in self.processes:
            if process.is_alive():
                try:
                    os.kill(process.pid, signal.SIGCONT)  # unfreeze first
                    process.terminate()
                except (ProcessLookupError, OSError):
                    pass
        deadline = time.monotonic() + timeout
        for process in self.processes:
            process.join(timeout=max(0.05, deadline - time.monotonic()))
        for process in self.processes:
            if process.is_alive():
                process.kill()
                process.join(timeout=2.0)
        if self._proxy_loop is not None:
            for proxy in self.proxies:
                if proxy is not None:
                    self._proxy_loop.call(proxy.stop())
            self._proxy_loop.close()
            self._proxy_loop = None

    def __enter__(self) -> "ClusterHarness":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- process faults --------------------------------------------------

    def kill(self, node: int) -> float:
        """SIGKILL ``node``; returns the monotonic kill timestamp."""
        process = self.processes[node]
        stamp = time.monotonic()
        os.kill(process.pid, signal.SIGKILL)
        process.join(timeout=5.0)
        return stamp

    def pause(self, node: int) -> float:
        """SIGSTOP ``node`` (alive but silent — SWIM must convict it)."""
        stamp = time.monotonic()
        os.kill(self.processes[node].pid, signal.SIGSTOP)
        return stamp

    def resume(self, node: int) -> float:
        """SIGCONT a paused node; it should refute and rejoin."""
        stamp = time.monotonic()
        os.kill(self.processes[node].pid, signal.SIGCONT)
        return stamp

    # -- wire faults (require ``use_proxies=True``) ----------------------

    def isolate(self, node: int) -> float:
        """Bidirectional black-hole of ``node``'s membership traffic.

        Ingress dies at the victim's own proxy; egress dies at every
        *other* node's ingress proxy via sender blocking (receiving a
        ping is firsthand ALIVE evidence, so half-open isolation would
        never convict).
        """
        self._require_proxies()
        stamp = time.monotonic()
        loop = self._proxy_loop
        loop.fire(self.proxies[node].partition)
        for other, proxy in enumerate(self.proxies):
            if other != node:
                loop.fire(proxy.block_sender, node)
        return stamp

    def heal(self, node: int) -> float:
        """Lift :meth:`isolate`; the node should refute and rejoin."""
        self._require_proxies()
        stamp = time.monotonic()
        loop = self._proxy_loop
        loop.fire(self.proxies[node].heal)
        for other, proxy in enumerate(self.proxies):
            if other != node:
                loop.fire(proxy.unblock_sender, node)
        return stamp

    def _require_proxies(self) -> None:
        if not self.spec.use_proxies or self._proxy_loop is None:
            raise SimulationError(
                "wire faults need ClusterSpec(use_proxies=True)")

    # -- observation -----------------------------------------------------

    def counters(self, node: int) -> Dict[str, int]:
        """One node's live counter snapshot via ``STATS``."""
        stats = fetch_stats(self.spec.host, self.tcp_ports[node])
        return dict(stats.get("counters", {}))

    def status(self) -> List[Dict[str, object]]:
        """Fleet view: liveness, verdicts, repair state per node."""
        rows: List[Dict[str, object]] = []
        for node, process in enumerate(self.processes):
            row: Dict[str, object] = {
                "node": node,
                "pid": process.pid,
                "alive": process.is_alive(),
                "tcp_port": self.tcp_ports[node],
                "swim_port": self.swim_ports[node],
            }
            if process.is_alive():
                try:
                    counters = self.counters(node)
                except Exception:
                    counters = {}
                for key in ("cluster.dead_mask", "cluster.unrepaired",
                            "cluster.repairs", "cluster.table_digest",
                            "cluster.detoured_queries", "swim.incarnation",
                            "swim.dead_count"):
                    if key in counters:
                        row[key] = counters[key]
            rows.append(row)
        return rows

    def survivors(self, dead: Iterable[int]) -> List[int]:
        """Node ids not in ``dead``, ascending."""
        gone = set(dead)
        return [n for n in range(self.spec.nodes) if n not in gone]

    def expected_digest(self, dead: Iterable[int]) -> int:
        """Digest of a fresh ``compile_with_failures`` for this verdict."""
        verdict = frozenset(dead)
        cached = self._digests.get(verdict)
        if cached is not None:
            return cached
        spec = self.spec
        ranges = spec.site_ranges()
        failed: List[int] = []
        for node in sorted(verdict):
            start, stop = ranges[node]
            failed.extend(range(start, stop))
        table = compile_with_failures(
            spec.d, spec.k, directed=spec.directed, failed=failed)
        digest = table_digest(table)
        table.close()
        self._digests[verdict] = digest
        return digest

    def wait_for_verdict(
        self, dead: Iterable[int], timeout: Optional[float] = None,
    ) -> Dict[int, float]:
        """Poll survivors until each one's dead mask matches ``dead``.

        Returns ``{node: monotonic timestamp}`` of when each survivor
        was *observed* holding the verdict (subtract the fault stamp for
        a latency upper bound — polling adds at most the poll period).
        """
        verdict = frozenset(dead)
        mask = 0
        for node in verdict:
            mask |= 1 << node
        bound = timeout if timeout is not None else self.spec.detection_bound()
        deadline = time.monotonic() + bound
        observed: Dict[int, float] = {}
        waiting = set(self.survivors(verdict))
        while waiting:
            if time.monotonic() > deadline:
                raise SimulationError(
                    f"nodes {sorted(waiting)} missed verdict {sorted(verdict)}"
                    f" within {bound:.2f}s")
            for node in sorted(waiting):
                try:
                    counters = self.counters(node)
                except (ConnectionError, OSError):
                    continue
                if counters.get("cluster.dead_mask", 0) == mask:
                    observed[node] = time.monotonic()
                    waiting.discard(node)
            if waiting:
                time.sleep(0.02)
        return observed

    def wait_repaired(
        self, dead: Iterable[int], timeout: float = 30.0,
    ) -> Dict[int, float]:
        """Poll survivors until each table digest matches the fresh
        compile for ``dead`` and detour mode has ended."""
        verdict = frozenset(dead)
        want = self.expected_digest(verdict)
        deadline = time.monotonic() + timeout
        observed: Dict[int, float] = {}
        waiting = set(self.survivors(verdict))
        while waiting:
            if time.monotonic() > deadline:
                raise SimulationError(
                    f"nodes {sorted(waiting)} not repaired within "
                    f"{timeout:.1f}s")
            for node in sorted(waiting):
                try:
                    counters = self.counters(node)
                except (ConnectionError, OSError):
                    continue
                if (counters.get("cluster.table_digest") == want
                        and counters.get("cluster.unrepaired", 1) == 0):
                    observed[node] = time.monotonic()
                    waiting.discard(node)
            if waiting:
                time.sleep(0.02)
        return observed

    # -- query traffic ---------------------------------------------------

    def sample_pairs(
        self, count: int, dead: Iterable[int] = (), seed: str = "drill",
    ) -> List[Tuple[WordTuple, WordTuple]]:
        """Routable (source, destination) word pairs avoiding ``dead``.

        Both endpoints live on surviving nodes and the pair is finite-
        distance in the *post-failure* table, so every sampled query has
        an answer before, during (via detours), and after repair.
        """
        import random as _random

        spec = self.spec
        verdict = frozenset(dead)
        ranges = spec.site_ranges()
        live: List[int] = []
        for node in self.survivors(verdict):
            start, stop = ranges[node]
            live.extend(range(start, stop))
        table = compile_with_failures(
            spec.d, spec.k, directed=spec.directed,
            failed=[] if not verdict else [
                site for node in sorted(verdict)
                for site in range(*ranges[node])])
        rng = _random.Random(f"{seed}:{spec.seed}")
        space = self._space
        pairs: List[Tuple[WordTuple, WordTuple]] = []
        guard = 0
        while len(pairs) < count:
            guard += 1
            if guard > count * 100:
                raise SimulationError(
                    "could not sample enough routable pairs — is the "
                    "surviving topology connected?")
            px = rng.choice(live)
            py = rng.choice(live)
            try:
                if table.distance_packed(px, py) >= ACTION_UNREACHABLE:
                    continue
            except RoutingError:
                continue  # disconnected by the failures
            pairs.append((space.unpack(px), space.unpack(py)))
        table.close()
        return pairs


def run_kill_drill(
    spec: ClusterSpec,
    workdir: str,
    victim: Optional[int] = None,
    queries: int = 10_000,
    burst_window: int = 64,
) -> Dict[str, object]:
    """The E25 drill: kill a node under load, measure everything.

    Phases: bring up the fleet, run a baseline burst, start a concurrent
    :func:`run_robust_burst` aimed at the victim (surviving nodes as
    failover endpoints), SIGKILL the victim mid-burst, wait for the SWIM
    verdict on every survivor (detection latency vs the bound), wait for
    byte-identical table repair, join the burst (zero lost queries), and
    run a healed burst.  Returns the measurements; raises
    :class:`SimulationError` when an assertion fails.
    """
    from repro.service.client import RetryPolicy

    victim = victim if victim is not None else spec.nodes - 1
    report: Dict[str, object] = {
        "spec": {
            "d": spec.d, "k": spec.k, "nodes": spec.nodes,
            "directed": spec.directed,
            "probe_interval": spec.probe_interval,
            "probe_timeout": spec.probe_timeout,
            "suspicion_timeout": spec.suspicion_timeout,
            "repair_delay": spec.repair_delay,
            "detection_bound": spec.detection_bound(),
        },
        "victim": victim,
        "queries": queries,
    }
    with ClusterHarness(spec, workdir) as harness:
        harness.up()
        host = spec.host
        survivors = harness.survivors([victim])
        pairs = harness.sample_pairs(queries, dead=[victim])

        # Phase 0: baseline — the victim answers before the fault.
        baseline, _ = run_robust_burst(
            host, harness.tcp_ports[victim], pairs[:256], d=spec.d,
            directed=spec.directed, window=burst_window)
        baseline_ok = sum(1 for r in baseline.replies if r.ok)
        if baseline_ok != len(baseline.replies):
            raise SimulationError(
                f"baseline burst lost {len(baseline.replies) - baseline_ok} "
                "queries on a healthy cluster")
        report["baseline"] = {
            "queries": len(baseline.replies), "ok": baseline_ok,
            "elapsed_s": baseline.elapsed,
        }

        # Phase 1: a continuous burst *through* the kill.  One
        # RobustRouteClient dials the victim first (failover must carry
        # it to the survivors) and keeps chunks of queries in flight
        # until every survivor has repaired — so the fault, the detour
        # window, and the repair all happen under live traffic, and the
        # zero-loss claim is about queries that actually crossed them.
        from repro.service.client import RobustRouteClient

        fallbacks = [(host, harness.tcp_ports[n]) for n in survivors]
        stop_flag = threading.Event()
        chunks: List[Dict[str, float]] = []
        burst_result: Dict[str, object] = {}
        chunk_size = max(burst_window, 256)

        def _burst() -> None:
            async def _run() -> None:
                async with RobustRouteClient(
                    host, harness.tcp_ports[victim], d=spec.d,
                    policy=RetryPolicy(retries=8, backoff_base=0.02,
                                       deadline=60.0),
                    fallbacks=fallbacks,
                ) as client:
                    index = 0
                    asked = 0
                    while not stop_flag.is_set() or asked < queries:
                        chunk = [pairs[(index + j) % len(pairs)]
                                 for j in range(chunk_size)]
                        index += chunk_size
                        started = time.monotonic()
                        outcome = await client.query_many(
                            chunk, directed=spec.directed,
                            window=burst_window)
                        ok = sum(1 for r in outcome.replies if r.ok)
                        asked += len(outcome.replies)
                        chunks.append({
                            "start": started,
                            "end": time.monotonic(),
                            "queries": len(outcome.replies),
                            "ok": ok,
                        })
                    burst_result["snapshot"] = client.registry.snapshot()

            asyncio.run(_run())

        burst_thread = threading.Thread(target=_burst, name="drill-burst")
        burst_thread.start()
        time.sleep(0.1)  # let the burst get in flight

        kill_stamp = harness.kill(victim)
        verdicts = harness.wait_for_verdict([victim])
        detection = {node: stamp - kill_stamp
                     for node, stamp in verdicts.items()}
        bound = spec.detection_bound()
        worst = max(detection.values())
        if worst > bound:
            raise SimulationError(
                f"detection took {worst:.2f}s, bound is {bound:.2f}s")

        repaired = harness.wait_repaired([victim])
        repair_latency = {node: stamp - kill_stamp
                          for node, stamp in repaired.items()}
        want_digest = harness.expected_digest([victim])
        digests: Dict[int, int] = {}
        detoured = 0
        for node in survivors:
            counters = harness.counters(node)
            digests[node] = counters.get("cluster.table_digest", -1)
            detoured += counters.get("cluster.detoured_queries", 0)
            if digests[node] != want_digest:
                raise SimulationError(
                    f"node {node} repaired digest {digests[node]:#x} != "
                    f"fresh compile {want_digest:#x}")

        stop_flag.set()
        burst_thread.join(timeout=180.0)
        if burst_thread.is_alive():
            raise SimulationError("drill burst did not finish")
        snapshot = burst_result["snapshot"]
        total = sum(int(c["queries"]) for c in chunks)
        total_ok = sum(int(c["ok"]) for c in chunks)
        lost = total - total_ok
        if lost:
            raise SimulationError(
                f"{lost} of {total} queries lost through the kill")
        spanned = sum(1 for c in chunks
                      if c["start"] <= kill_stamp <= c["end"])
        last_repair = max(repaired.values())
        phases = {"before": [0, 0], "fault": [0, 0], "healed": [0, 0]}
        for c in chunks:
            if c["end"] <= kill_stamp:
                bucket = phases["before"]
            elif c["start"] >= last_repair:
                bucket = phases["healed"]
            else:
                bucket = phases["fault"]
            bucket[0] += int(c["queries"])
            bucket[1] += int(c["ok"])
        report["fault_burst"] = {
            "queries": total,
            "ok": total_ok,
            "lost": lost,
            "chunks": len(chunks),
            "chunks_spanning_kill": spanned,
            "per_phase": {name: {"queries": q, "ok": ok}
                          for name, (q, ok) in phases.items()},
            "failovers": snapshot["counters"].get("client.failovers", 0),
            "retries": snapshot["counters"].get("client.retries", 0),
        }
        report["detection_s"] = detection
        report["detection_bound_s"] = bound
        report["repair_s"] = repair_latency
        report["table_digest"] = {
            "expected": want_digest,
            "survivors": digests,
        }
        report["detoured_queries"] = detoured

        # Phase 2: healed — survivors answer directly, no retries needed.
        target = survivors[0]
        healed, _ = run_robust_burst(
            host, harness.tcp_ports[target], pairs[:512], d=spec.d,
            directed=spec.directed, window=burst_window)
        healed_ok = sum(1 for r in healed.replies if r.ok)
        if healed_ok != len(healed.replies):
            raise SimulationError(
                f"healed burst lost {len(healed.replies) - healed_ok} "
                "queries after repair")
        report["healed"] = {
            "queries": len(healed.replies), "ok": healed_ok,
            "elapsed_s": healed.elapsed,
        }
    return report
