"""Wire format for SWIM datagrams between cluster node processes.

The simulator hands :class:`~repro.network.membership.SwimPacket`
records between members as Python objects; real processes need bytes.
One packet maps to one UDP datagram:

```
magic    2  b"SW"
version  1  0x01
kind     1  0=ping 1=ping-req 2=ack 3=relayed-ack
source   2  sender node id (u16, big-endian)
probe_id 4  member-local probe sequence (u32)
target   2  probed node id, 0xFFFF when absent
incarn   4  acked incarnation (u32)
relay_to 2  indirect-probe origin, 0xFFFF when absent
count    1  number of piggybacked updates
```

followed by ``count`` update records of ``state(1) subject(2)
incarnation(4)``.  Everything is fixed-width, so the decoder can check
the exact expected length up front — a truncated or padded datagram is
rejected whole, never partially applied.

Hostile-input contract (fuzzed in ``tests/test_cluster_codec.py``):
:func:`decode_packet` either returns a fully validated packet or raises
:class:`~repro.exceptions.ProtocolError`.  Node ids and update subjects
are range-checked against the cluster size and states against the SWIM
state set, so malformed gossip can never crash a node or smuggle in a
verdict about a member that does not exist.
"""

from __future__ import annotations

import struct

from repro.exceptions import ProtocolError
from repro.network.membership import ALIVE, DEAD, SwimPacket

_MAGIC = b"SW"
_VERSION = 1
#: ``magic version kind source probe_id target incarn relay_to count``
_HEADER = struct.Struct("!2sBBHIHIHB")
_UPDATE = struct.Struct("!BHI")
#: Wire sentinel for an absent ``target``/``relay_to`` field.
_NONE = 0xFFFF

_KIND_CODES = {"ping": 0, "ping-req": 1, "ack": 2, "relayed-ack": 3}
_KIND_NAMES = {code: kind for kind, code in _KIND_CODES.items()}

#: The largest datagram :func:`encode_packet` can produce with the
#: protocol-wide 255-update ceiling; useful for receive buffer sizing.
MAX_DATAGRAM = _HEADER.size + 255 * _UPDATE.size


def _encode_site(site, field: str) -> int:
    if site is None:
        return _NONE
    if not isinstance(site, int) or not 0 <= site < _NONE:
        raise ProtocolError(f"swim codec: {field} {site!r} is not a "
                            f"node id in [0, {_NONE})")
    return site


def encode_packet(packet: SwimPacket) -> bytes:
    """Serialize one packet; raises :class:`ProtocolError` on bad fields."""
    kind = _KIND_CODES.get(packet.kind)
    if kind is None:
        raise ProtocolError(f"swim codec: unknown kind {packet.kind!r}")
    updates = packet.updates
    if len(updates) > 255:
        raise ProtocolError(f"swim codec: {len(updates)} updates exceed "
                            "the 255-per-packet ceiling")
    if not 0 <= packet.probe_id <= 0xFFFFFFFF:
        raise ProtocolError(f"swim codec: probe_id {packet.probe_id} "
                            "out of u32 range")
    if not 0 <= packet.incarnation <= 0xFFFFFFFF:
        raise ProtocolError(f"swim codec: incarnation "
                            f"{packet.incarnation} out of u32 range")
    parts = [_HEADER.pack(
        _MAGIC, _VERSION, kind,
        _encode_site(packet.source, "source"),
        packet.probe_id,
        _encode_site(packet.target, "target"),
        packet.incarnation,
        _encode_site(packet.relay_to, "relay_to"),
        len(updates))]
    for state, subject, incarnation in updates:
        if not ALIVE <= state <= DEAD:
            raise ProtocolError(f"swim codec: update state {state!r} "
                                "is not a SWIM state")
        if not 0 <= incarnation <= 0xFFFFFFFF:
            raise ProtocolError(f"swim codec: update incarnation "
                                f"{incarnation} out of u32 range")
        parts.append(_UPDATE.pack(
            state, _encode_site(subject, "update subject"), incarnation))
    return b"".join(parts)


def peek_source(data: bytes):
    """Best-effort sender node id of a datagram, or ``None``.

    For the wire-fault proxy's sender blocking: it must classify
    arbitrary garbage without raising, so this only checks the magic and
    header length before reading the source field — full validation
    stays in :func:`decode_packet` at the receiving node.
    """
    if len(data) < _HEADER.size or data[:2] != _MAGIC:
        return None
    return struct.unpack_from("!H", data, 4)[0]


def _decode_site(value: int, n_nodes: int, field: str):
    if value == _NONE:
        return None
    if value >= n_nodes:
        raise ProtocolError(f"swim codec: {field} {value} >= cluster "
                            f"size {n_nodes}")
    return value


def decode_packet(data: bytes, n_nodes: int) -> SwimPacket:
    """Parse and validate one datagram.

    Returns a packet whose every site id is a valid node of an
    ``n_nodes``-member cluster, or raises :class:`ProtocolError` —
    never anything else, and never a partially-applied result.
    """
    if len(data) < _HEADER.size:
        raise ProtocolError(f"swim codec: datagram of {len(data)} bytes "
                            f"is shorter than the {_HEADER.size}-byte "
                            "header")
    (magic, version, kind_code, source, probe_id, target, incarnation,
     relay_to, count) = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise ProtocolError(f"swim codec: bad magic {magic!r}")
    if version != _VERSION:
        raise ProtocolError(f"swim codec: unsupported version {version}")
    kind = _KIND_NAMES.get(kind_code)
    if kind is None:
        raise ProtocolError(f"swim codec: unknown kind code {kind_code}")
    expected = _HEADER.size + count * _UPDATE.size
    if len(data) != expected:
        raise ProtocolError(f"swim codec: {len(data)}-byte datagram "
                            f"declares {count} updates (expected "
                            f"{expected} bytes)")
    source_id = _decode_site(source, n_nodes, "source")
    if source_id is None:
        raise ProtocolError("swim codec: source may not be absent")
    updates = []
    offset = _HEADER.size
    for _ in range(count):
        state, subject, update_inc = _UPDATE.unpack_from(data, offset)
        offset += _UPDATE.size
        if not ALIVE <= state <= DEAD:
            raise ProtocolError(f"swim codec: update state {state} is "
                                "not a SWIM state")
        subject_id = _decode_site(subject, n_nodes, "update subject")
        if subject_id is None:
            raise ProtocolError("swim codec: update subject may not be "
                                "absent")
        updates.append((state, subject_id, update_inc))
    return SwimPacket(
        kind=kind,
        source=source_id,
        probe_id=probe_id,
        target=_decode_site(target, n_nodes, "target"),
        incarnation=incarnation,
        relay_to=_decode_site(relay_to, n_nodes, "relay_to"),
        updates=tuple(updates),
    )
