"""One cluster node process: serve queries, gossip, self-heal (E25).

A node owns a contiguous packed-site range of DG(d, k) (its
"prefix-shard group"), answers route queries for the *whole* graph from
its own writable mmap of the compiled table, and runs a
:class:`~repro.cluster.swim.SwimAgent` against its peers.  When the
agent confirms a peer DEAD, every site in that peer's range is treated
as failed:

1. immediately, the engine enters **detour mode** — table walks that
   would step onto a dead site deflect through
   :meth:`~repro.network.resilience.LocalDetourPolicy.ranked_alternatives`
   (distance-layer deflection, bounded alternatives and budget), so
   queries keep answering from the stale table;
2. a background task runs
   :meth:`~repro.network.resilience.SelfHealingRouteTable.sync`, which
   restores pristine rows and re-repairs — byte-identical to a fresh
   ``compile_with_failures`` on the surviving topology — after which
   detour mode ends.

Both phases are measured, not assumed: the engine counts detoured
queries, the node publishes repair counts/latency and a table digest
through the ordinary ``STATS`` frame, and the harness compares that
digest against its own ``compile_with_failures`` compile.
"""

from __future__ import annotations

import asyncio
import hashlib
import signal
import socket
import time
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.core.parallel import ACTION_AT_DESTINATION, ACTION_UNREACHABLE
from repro.core.tables import CompiledRouteTable
from repro.exceptions import RoutingError
from repro.network.membership import SwimConfig
from repro.network.resilience import (LocalDetourPolicy,
                                      SelfHealingRouteTable)
from repro.service.engine import _STEP_OF_ACTION, RouteQueryEngine
from repro.service.metrics import MetricsRegistry
from repro.service.server import RouteQueryServer, ServerConfig


def table_digest(table: CompiledRouteTable) -> int:
    """A 64-bit content digest of the table's action+distance bytes.

    The byte-identity witness between a survivor's live repaired table
    and the harness's fresh ``compile_with_failures``: equal digests
    over the full ``2 * order**2`` payload (sha256-truncated) mean equal
    bytes for any practical purpose, and an int travels through the
    ``STATS`` counter snapshot unchanged.
    """
    digest = hashlib.sha256()
    digest.update(table.actions)
    digest.update(table.distances)
    return int.from_bytes(digest.digest()[:8], "big")


@dataclass(frozen=True)
class ClusterNodeSpec:
    """Everything one node process needs, as picklable plain data.

    ``site_ranges[i]`` is node *i*'s owned packed range ``[start,
    stop)``; the ranges partition ``[0, d**k)``.  ``swim_peers[i]`` is
    where node *i*'s membership port is reached — the node's own entry
    is its real bind address, other entries may point at the harness's
    wire-fault proxies.  ``repair_delay`` artificially postpones the
    self-healing sync so tests and benchmarks can observe (and count) a
    real detour window even on fast hardware.
    """

    node_id: int
    n_nodes: int
    d: int
    k: int
    directed: bool
    table_path: str
    site_ranges: Tuple[Tuple[int, int], ...]
    swim_peers: Tuple[Tuple[str, int], ...]
    probe_interval: float = 0.25
    probe_timeout: float = 0.12
    suspicion_timeout: float = 0.6
    indirect_probes: int = 1
    piggyback_limit: int = 8
    seed: str = "cluster"
    repair_delay: float = 0.0

    def swim_config(self) -> SwimConfig:
        """The membership timers as a :class:`SwimConfig`."""
        return SwimConfig(
            probe_interval=self.probe_interval,
            probe_timeout=self.probe_timeout,
            indirect_probes=self.indirect_probes,
            suspicion_timeout=self.suspicion_timeout,
            piggyback_limit=self.piggyback_limit,
            seed=self.seed,
        )

    def failed_sites(self, dead_nodes: FrozenSet[int]) -> List[int]:
        """The packed sites owned by ``dead_nodes``, sorted."""
        failed: List[int] = []
        for node in sorted(dead_nodes):
            start, stop = self.site_ranges[node]
            failed.extend(range(start, stop))
        return failed


class ClusterQueryEngine(RouteQueryEngine):
    """A route engine whose table walk honors a live dead-site set.

    ``dead_packed`` holds the packed sites of peers whose DEAD verdict
    has *not yet been repaired into the table*.  While non-empty, path
    queries walk the (stale) table checking each next hop against the
    set and deflecting through the detour policy's ranked alternatives;
    once the self-healing sync lands the set empties and the engine is
    exactly its parent again (the repaired table routes around the dead
    range by construction).
    """

    def __init__(
        self,
        d: int,
        k: int,
        table: CompiledRouteTable,
        registry: Optional[MetricsRegistry] = None,
        detour_policy: Optional[LocalDetourPolicy] = None,
    ) -> None:
        super().__init__(d, k, table=table, registry=registry)
        self.detour_policy = (detour_policy if detour_policy is not None
                              else LocalDetourPolicy(table))
        self.dead_packed: FrozenSet[int] = frozenset()

    def resolve(self, source, destination, directed, want_path):
        """Answer one query, detouring around ``dead_packed`` if set."""
        table = self._table_for(directed)
        dead = self.dead_packed
        if table is None or not dead:
            return super().resolve(source, destination, directed, want_path)
        self.registry.inc("engine.table_lookups")
        space = table.space
        px = space.pack_checked(source)
        py = space.pack_checked(destination)
        if py in dead:
            raise RoutingError(
                f"destination {destination!r} is on a confirmed-dead node")
        if px in dead:
            raise RoutingError(
                f"source {source!r} is on a confirmed-dead node")
        return self._walk_with_detours(table, px, py, want_path)

    def _walk_with_detours(self, table, px: int, py: int, want_path: bool):
        space = table.space
        actions = table.actions
        dead = self.dead_packed
        policy = self.detour_policy
        base = py * table.order
        current = px
        steps: List[int] = []
        detours = 0
        hop_budget = table.order + policy.max_detours + 1
        while current != py:
            if len(steps) >= hop_budget:
                raise RoutingError(
                    "detour walk exceeded its hop budget (deflection "
                    "cycle around the dead range)")
            action = actions[base + current]
            if action == ACTION_UNREACHABLE:
                raise RoutingError(
                    "destination unreachable from the detour position")
            if action == ACTION_AT_DESTINATION:  # pragma: no cover
                break
            nxt = space.apply_action(current, action)
            if nxt in dead:
                if detours >= policy.max_detours:
                    raise RoutingError(
                        "detour budget exhausted around dead next hops")
                for nbr, alt_action in policy.ranked_alternatives(
                        table, current, nxt, py)[:policy.max_alternatives]:
                    if nbr not in dead:
                        nxt, action = nbr, alt_action
                        detours += 1
                        break
                else:
                    raise RoutingError(
                        "no live detour around a dead next hop")
            steps.append(action)
            current = nxt
        if detours:
            self.registry.inc("cluster.detoured_queries")
            self.registry.inc("cluster.detour_hops", detours)
        if not want_path:
            return len(steps), None
        step_of = _STEP_OF_ACTION[table.d]
        return len(steps), [step_of[action] for action in steps]


class _ClusterNode:
    """The asyncio composition living inside one node process."""

    def __init__(self, spec: ClusterNodeSpec,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.spec = spec
        self.registry = registry if registry is not None else MetricsRegistry()
        self.table = CompiledRouteTable.load(spec.table_path, writable=True)
        self.healer = SelfHealingRouteTable(self.table)
        self.engine = ClusterQueryEngine(
            spec.d, spec.k, self.table, registry=self.registry,
            detour_policy=LocalDetourPolicy(self.table))
        self.agent: Optional[object] = None
        self._verdict: FrozenSet[int] = frozenset()
        self._repair_task: Optional[asyncio.Task] = None
        registry = self.registry
        registry.set_counter("cluster.node_id", spec.node_id)
        registry.set_counter("cluster.n_nodes", spec.n_nodes)
        registry.set_counter("cluster.dead_mask", 0)
        registry.set_counter("cluster.unrepaired", 0)
        registry.set_counter("cluster.table_digest", table_digest(self.table))

    # -- verdict -> repair pipeline --------------------------------------

    def _on_dead_change(self, dead_nodes: FrozenSet[int]) -> None:
        spec = self.spec
        self._verdict = dead_nodes
        self.engine.dead_packed = frozenset(spec.failed_sites(dead_nodes))
        mask = 0
        for node in dead_nodes:
            mask |= 1 << node
        self.registry.set_counter("cluster.dead_mask", mask)
        self.registry.set_counter("cluster.unrepaired", 1)
        if self._repair_task is None or self._repair_task.done():
            self._repair_task = asyncio.get_running_loop().create_task(
                self._repair_loop())

    async def _repair_loop(self) -> None:
        spec = self.spec
        registry = self.registry
        while True:
            target = self._verdict
            if spec.repair_delay > 0:
                await asyncio.sleep(spec.repair_delay)
                if self._verdict != target:
                    continue  # verdict moved while we held the window open
            started = time.perf_counter()
            report = self.healer.sync(spec.failed_sites(target))
            elapsed = time.perf_counter() - started
            if report is not None:
                registry.inc("cluster.repairs")
                registry.histogram("cluster.repair_ms").observe(
                    elapsed * 1000.0)
            registry.set_counter("cluster.rows_repaired",
                                 self.healer.rows_repaired)
            registry.set_counter("cluster.rows_patched",
                                 self.healer.rows_patched)
            registry.set_counter("cluster.table_digest",
                                 table_digest(self.table))
            if self._verdict == target:
                # The table now encodes the verdict: leave detour mode.
                self.engine.dead_packed = frozenset()
                registry.set_counter("cluster.unrepaired", 0)
                return
            # A newer verdict arrived mid-repair: go again.

    # -- lifecycle -------------------------------------------------------

    async def run(self, stop_event: asyncio.Event,
                  tcp_socket: Optional[socket.socket] = None,
                  udp_socket: Optional[socket.socket] = None) -> None:
        from repro.cluster.swim import SwimAgent

        spec = self.spec
        server = RouteQueryServer(self.engine, ServerConfig())
        peers = {node: tuple(addr)
                 for node, addr in enumerate(spec.swim_peers)
                 if node != spec.node_id}
        self.agent = SwimAgent(
            spec.node_id, spec.n_nodes, spec.swim_config(),
            peers=peers,
            bind=tuple(spec.swim_peers[spec.node_id]),
            registry=self.registry,
            on_dead_change=self._on_dead_change,
        )
        await self.agent.start(sock=udp_socket)
        try:
            await server.start(listen_socket=tcp_socket)
            await stop_event.wait()
        finally:
            await server.stop()
            await self.agent.close()
            self.table.close()


async def _node_async(spec: ClusterNodeSpec,
                      tcp_socket: Optional[socket.socket],
                      udp_socket: Optional[socket.socket]) -> None:
    loop = asyncio.get_running_loop()
    stop_event = asyncio.Event()
    loop.add_signal_handler(signal.SIGTERM, stop_event.set)
    loop.add_signal_handler(signal.SIGINT, lambda: None)
    node = _ClusterNode(spec)
    await node.run(stop_event, tcp_socket=tcp_socket, udp_socket=udp_socket)


def cluster_node_main(spec: ClusterNodeSpec,
                      tcp_socket: Optional[socket.socket] = None,
                      udp_socket: Optional[socket.socket] = None,
                      close_first: Sequence[socket.socket] = ()) -> None:
    """Fork target: run one node until SIGTERM.

    The harness pre-binds both sockets in the parent and hands them
    through the fork so there is no port race between readiness polling
    and bind.  ``close_first`` holds the *other* nodes' inherited
    sockets: every forked child gets a copy of every fd bound before the
    fork, and a listening socket stays bound while *any* process holds
    it — so each child drops its siblings' sockets immediately, and a
    SIGKILLed node's ports genuinely die with it (clients see
    ``ECONNREFUSED``, not a backlog hang).
    """
    for sock in close_first:
        try:
            sock.close()
        except OSError:  # pragma: no cover - already closed is fine
            pass
    asyncio.run(_node_async(spec, tcp_socket, udp_socket))
