"""Length-prefixed binary wire protocol for the route-query service.

Every frame on the wire is::

    +----------------+------+-------------+------------------+
    | length (4, BE) | type | request id  | body             |
    +----------------+------+-------------+------------------+
                       1 B     4 B (BE)     length - 5 bytes

``length`` counts everything after itself, so a reader needs exactly one
fixed-size read to know how much to buffer — the classic micro-batching-
friendly framing.  Frame types:

``QUERY``
    ``flags(1) d(1) k(1) source(k) destination(k)`` — flags bit 0 selects
    the directed network, bit 1 asks for the routing path (not just the
    distance).  Words use the one-byte-per-digit encoding of
    :func:`repro.network.message.encode_word`.
``REPLY``
    ``distance(1) n_steps(1) path(2*n_steps)`` — the path field is the
    paper's ``(a_i, b_i)`` pair encoding from
    :func:`repro.network.message.encode_path`, wildcards as
    :data:`~repro.network.message.WILDCARD_BYTE`.
``ERROR``
    ``code(1) message(utf-8)`` — see :class:`ErrorCode`; ``OVERLOADED``
    is the server's explicit backpressure signal.
``STATS`` / ``STATS_REPLY``
    empty request; the reply body is the UTF-8 JSON metrics snapshot of
    :meth:`repro.service.metrics.MetricsRegistry.snapshot`.

The codec is pure and synchronous; :class:`FrameDecoder` is the
incremental parser both the asyncio server and client feed socket chunks
through.
"""

from __future__ import annotations

import enum
import json
import struct
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.routing import Path
from repro.core.word import WordTuple
from repro.exceptions import ProtocolError, WirePathError
from repro.network.message import (
    decode_path,
    decode_word,
    encode_path,
    encode_word,
)

#: Frame length prefix (big-endian, counts type + request id + body).
_LENGTH = struct.Struct("!I")

#: Frame type byte plus request-id word.
_HEAD = struct.Struct("!BI")

#: Hard ceiling on one frame's payload; anything larger is a protocol
#: violation, not a big request (a DG(255, 255) query is still < 1 KiB).
MAX_FRAME_BYTES = 1 << 20


class FrameType(enum.IntEnum):
    """The one-byte frame discriminator."""

    QUERY = 0  #: route/distance request
    REPLY = 1  #: successful answer
    ERROR = 2  #: per-request failure (see :class:`ErrorCode`)
    STATS = 3  #: metrics-snapshot request
    STATS_REPLY = 4  #: metrics snapshot as UTF-8 JSON


class ErrorCode(enum.IntEnum):
    """Why a query got an ``ERROR`` frame instead of a ``REPLY``."""

    MALFORMED = 0  #: the query body failed to decode
    OVERLOADED = 1  #: admission queue full — explicit backpressure
    TIMEOUT = 2  #: the request aged out before the engine reached it
    UNSUPPORTED = 3  #: wrong (d, k) for this server, or unknown frame
    INTERNAL = 4  #: the engine raised; message carries the repr
    SHUTTING_DOWN = 5  #: server is draining and no longer answers


#: ``flags`` bit 0: route on the uni-directional network.
FLAG_DIRECTED = 0x01
#: ``flags`` bit 1: include the routing path in the reply.
FLAG_WANT_PATH = 0x02


@dataclass(frozen=True)
class RouteQuery:
    """One decoded ``QUERY`` frame."""

    request_id: int
    d: int
    source: WordTuple
    destination: WordTuple
    directed: bool = False
    want_path: bool = True

    @property
    def k(self) -> int:
        return len(self.source)


@dataclass(frozen=True)
class Frame:
    """One decoded frame: type, correlation id, raw body."""

    frame_type: FrameType
    request_id: int
    body: bytes


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------


def encode_frame(frame_type: FrameType, request_id: int, body: bytes = b"") -> bytes:
    """Wrap ``body`` in the length-prefixed frame envelope."""
    if not 0 <= request_id <= 0xFFFFFFFF:
        raise ProtocolError(f"request id {request_id} does not fit 32 bits")
    if len(body) + _HEAD.size > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame body of {len(body)} bytes exceeds the cap")
    return (
        _LENGTH.pack(_HEAD.size + len(body))
        + _HEAD.pack(int(frame_type), request_id)
        + body
    )


def encode_query(
    request_id: int,
    d: int,
    source: WordTuple,
    destination: WordTuple,
    directed: bool = False,
    want_path: bool = True,
) -> bytes:
    """A complete ``QUERY`` frame for one (source, destination) pair."""
    k = len(source)
    if len(destination) != k:
        raise ProtocolError(
            f"source has {k} digits but destination has {len(destination)}"
        )
    if not 0 < k <= 0xFF or not 1 < d <= 0xFF:
        raise ProtocolError(f"(d, k) = ({d}, {k}) does not fit the wire format")
    flags = (FLAG_DIRECTED if directed else 0) | (FLAG_WANT_PATH if want_path else 0)
    body = bytes([flags, d, k]) + encode_word(source) + encode_word(destination)
    return encode_frame(FrameType.QUERY, request_id, body)


def decode_query(frame: Frame) -> RouteQuery:
    """Parse a ``QUERY`` frame's body (raises :class:`ProtocolError`)."""
    body = frame.body
    if len(body) < 3:
        raise ProtocolError("query body too short for its header")
    flags, d, k = body[0], body[1], body[2]
    if d < 2 or k < 1:
        raise ProtocolError(f"query carries invalid parameters (d={d}, k={k})")
    if len(body) != 3 + 2 * k:
        raise ProtocolError(
            f"query body is {len(body)} bytes, expected {3 + 2 * k} for k={k}"
        )
    source = decode_word(body[3 : 3 + k])
    destination = decode_word(body[3 + k : 3 + 2 * k])
    for word in (source, destination):
        if any(digit >= d for digit in word):
            raise ProtocolError(f"word {word!r} has digits outside 0..{d - 1}")
    return RouteQuery(
        request_id=frame.request_id,
        d=d,
        source=source,
        destination=destination,
        directed=bool(flags & FLAG_DIRECTED),
        want_path=bool(flags & FLAG_WANT_PATH),
    )


def encode_reply(request_id: int, distance: int, path: Optional[Path]) -> bytes:
    """A ``REPLY`` frame; ``path=None`` answers a distance-only query."""
    if not 0 <= distance <= 0xFF:
        raise ProtocolError(f"distance {distance} does not fit one byte")
    steps = encode_path(path) if path else b""
    if len(steps) // 2 > 0xFF:
        raise ProtocolError(f"path of {len(steps) // 2} steps does not fit")
    body = bytes([distance, len(steps) // 2]) + steps
    return encode_frame(FrameType.REPLY, request_id, body)


def decode_reply(frame: Frame) -> Tuple[int, Path]:
    """Parse a ``REPLY`` body into ``(distance, path)``."""
    body = frame.body
    if len(body) < 2:
        raise ProtocolError("reply body too short for its header")
    distance, n_steps = body[0], body[1]
    if len(body) != 2 + 2 * n_steps:
        raise ProtocolError(
            f"reply body is {len(body)} bytes, expected {2 + 2 * n_steps}"
        )
    try:
        return distance, decode_path(body[2:])
    except WirePathError as exc:
        # Corrupt step bytes are a wire-protocol violation, not a
        # routing error: keep the decode contract to one exception type.
        raise ProtocolError(f"reply carries a malformed path: {exc}") from exc


def encode_error(request_id: int, code: ErrorCode, message: str = "") -> bytes:
    """An ``ERROR`` frame carrying ``code`` and a short UTF-8 message."""
    return encode_frame(
        FrameType.ERROR, request_id, bytes([int(code)]) + message.encode("utf-8")
    )


def decode_error(frame: Frame) -> Tuple[ErrorCode, str]:
    """Parse an ``ERROR`` body into ``(code, message)``."""
    if not frame.body:
        raise ProtocolError("error body is empty")
    try:
        code = ErrorCode(frame.body[0])
    except ValueError as exc:
        raise ProtocolError(f"unknown error code {frame.body[0]}") from exc
    return code, frame.body[1:].decode("utf-8", errors="replace")


def encode_stats_request(request_id: int) -> bytes:
    """An empty ``STATS`` request frame."""
    return encode_frame(FrameType.STATS, request_id)


def encode_stats_reply(request_id: int, snapshot: Dict[str, object]) -> bytes:
    """A ``STATS_REPLY`` frame carrying the snapshot as UTF-8 JSON."""
    return encode_frame(
        FrameType.STATS_REPLY,
        request_id,
        json.dumps(snapshot, sort_keys=True).encode("utf-8"),
    )


def decode_stats_reply(frame: Frame) -> Dict[str, object]:
    """Parse a ``STATS_REPLY`` body back into the snapshot dict."""
    try:
        snapshot = json.loads(frame.body.decode("utf-8"))
    except ValueError as exc:
        raise ProtocolError("stats reply is not valid JSON") from exc
    if not isinstance(snapshot, dict):
        raise ProtocolError("stats reply is not a JSON object")
    return snapshot


# ----------------------------------------------------------------------
# Incremental decoding
# ----------------------------------------------------------------------


class FrameDecoder:
    """Incremental frame parser: feed socket chunks, iterate frames.

    Keeps at most one partial frame of state, so a pipelined burst that
    arrives as arbitrary TCP segment boundaries decodes identically to
    one frame per segment (property-tested).

    >>> decoder = FrameDecoder()
    >>> blob = encode_stats_request(7)
    >>> [f.request_id for f in decoder.feed(blob[:3])]
    []
    >>> [f.request_id for f in decoder.feed(blob[3:])]
    [7]
    """

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Frame]:
        """Append ``data`` and return every frame it completed."""
        self._buffer.extend(data)
        return list(self._drain())

    def _drain(self) -> Iterator[Frame]:
        buffer = self._buffer
        offset = 0
        try:
            while len(buffer) - offset >= _LENGTH.size:
                (length,) = _LENGTH.unpack_from(buffer, offset)
                if length < _HEAD.size or length > MAX_FRAME_BYTES:
                    raise ProtocolError(f"frame length {length} out of range")
                if len(buffer) - offset - _LENGTH.size < length:
                    break
                head_at = offset + _LENGTH.size
                type_byte, request_id = _HEAD.unpack_from(buffer, head_at)
                try:
                    frame_type = FrameType(type_byte)
                except ValueError as exc:
                    raise ProtocolError(f"unknown frame type {type_byte}") from exc
                body = bytes(buffer[head_at + _HEAD.size : head_at + length])
                offset += _LENGTH.size + length
                yield Frame(frame_type, request_id, body)
        finally:
            del buffer[:offset]

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward the next (incomplete) frame."""
        return len(self._buffer)
