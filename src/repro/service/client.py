"""Pipelining client for the route-query service, with a connection pool.

:class:`RouteServiceClient` is the asyncio client: it keeps up to
``pool_size`` connections open, correlates replies to queries by request
id, and pipelines — :meth:`~RouteServiceClient.query_many` keeps a
bounded ``window`` of queries in flight per connection instead of
waiting a full round trip per query, which is where a de Bruijn query
service earns its throughput (single-query latency is wire-dominated; a
pipelined burst amortises it away).

Blocking wrappers (:func:`query_once`, :func:`run_burst`,
:func:`fetch_stats`) cover scripts, tests and the ``debruijn-routing
query`` subcommand without forcing callers to manage an event loop.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.routing import Path
from repro.core.word import WordTuple
from repro.exceptions import ProtocolError, ServiceError
from repro.service.protocol import (
    ErrorCode,
    FrameDecoder,
    FrameType,
    decode_error,
    decode_reply,
    decode_stats_reply,
    encode_query,
    encode_stats_request,
)


@dataclass(frozen=True)
class RouteReply:
    """The outcome of one query: a distance/path, or a service error."""

    distance: Optional[int]
    path: Optional[Path]
    error_code: Optional[ErrorCode] = None
    error_message: str = ""

    @property
    def ok(self) -> bool:
        """True for a successful ``REPLY``, False for any ``ERROR``."""
        return self.error_code is None


@dataclass
class QueryOutcome:
    """A pipelined burst's replies (input order) plus wall-clock cost."""

    replies: List[RouteReply]
    elapsed: float

    @property
    def ok_count(self) -> int:
        return sum(1 for reply in self.replies if reply.ok)

    @property
    def error_counts(self) -> Dict[str, int]:
        """Errors keyed by :class:`ErrorCode` name."""
        counts: Dict[str, int] = {}
        for reply in self.replies:
            if reply.error_code is not None:
                name = reply.error_code.name
                counts[name] = counts.get(name, 0) + 1
        return counts

    @property
    def qps(self) -> float:
        """Answered queries (replies *and* errors) per second."""
        return len(self.replies) / self.elapsed if self.elapsed > 0 else 0.0


class _PooledConnection:
    """One pooled stream plus its decoder and request-id counter."""

    __slots__ = ("reader", "writer", "decoder", "next_id")

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.decoder = FrameDecoder()
        self.next_id = 0

    def take_id(self) -> int:
        self.next_id = (self.next_id + 1) & 0xFFFFFFFF
        return self.next_id


class RouteServiceClient:
    """Asyncio client with pooling and per-connection pipelining.

    >>> # doctest-style sketch; see tests/test_service.py for live use
    >>> # async with RouteServiceClient("127.0.0.1", port, d=2) as client:
    >>> #     reply = await client.query((0, 1, 1), (1, 1, 0))
    """

    def __init__(
        self,
        host: str,
        port: int,
        d: Optional[int] = None,
        pool_size: int = 1,
        connect_timeout: float = 5.0,
    ) -> None:
        if pool_size < 1:
            raise ServiceError(f"pool size must be >= 1, got {pool_size}")
        self.host = host
        self.port = port
        self.d = d
        self.pool_size = pool_size
        self.connect_timeout = connect_timeout
        self._pool: List[Optional[_PooledConnection]] = [None] * pool_size

    async def _connection(self, index: int) -> _PooledConnection:
        slot = index % self.pool_size
        connection = self._pool[slot]
        if connection is None or connection.writer.is_closing():
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port),
                timeout=self.connect_timeout,
            )
            connection = _PooledConnection(reader, writer)
            self._pool[slot] = connection
        return connection

    async def close(self) -> None:
        """Close every pooled connection."""
        for slot, connection in enumerate(self._pool):
            if connection is None:
                continue
            self._pool[slot] = None
            try:
                connection.writer.close()
                await connection.writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def __aenter__(self) -> "RouteServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- queries ---------------------------------------------------------

    def _digit_base(self, d: Optional[int]) -> int:
        base = d if d is not None else self.d
        if base is None:
            raise ServiceError(
                "alphabet size d is required (set it on the client or query)"
            )
        return base

    async def query(
        self,
        source: WordTuple,
        destination: WordTuple,
        directed: bool = False,
        want_path: bool = True,
        d: Optional[int] = None,
    ) -> RouteReply:
        """One round trip for one (source, destination) pair."""
        outcome = await self.query_many(
            [(source, destination)], directed=directed, want_path=want_path, d=d
        )
        return outcome.replies[0]

    async def query_many(
        self,
        pairs: Sequence[Tuple[WordTuple, WordTuple]],
        directed: bool = False,
        want_path: bool = True,
        d: Optional[int] = None,
        window: int = 256,
        reconnect: int = 0,
    ) -> QueryOutcome:
        """Pipeline ``pairs`` across the pool; replies come back in order.

        ``window`` bounds in-flight queries per connection (the client's
        half of backpressure); ``window=0`` means "fire everything at
        once" — used by the overload tests to slam a bounded server.

        ``reconnect`` is the number of times a broken connection may be
        replaced mid-burst, re-issuing only the still-unanswered queries
        on a fresh stream.  The default 0 keeps the historical behaviour
        (a mid-burst EOF raises :class:`ServiceError`); a positive value
        makes bursts survive a crashed pool worker, whose in-flight
        replies are genuinely lost and must be re-asked.
        """
        base = self._digit_base(d)
        replies: List[Optional[RouteReply]] = [None] * len(pairs)
        shards: List[List[int]] = [[] for _ in range(self.pool_size)]
        for index in range(len(pairs)):
            shards[index % self.pool_size].append(index)
        pipelines = []
        live_shards = []
        for slot, shard in enumerate(shards):
            if not shard:
                continue
            connection = await self._connection(slot)
            live_shards.append((slot, shard, connection))
        start = time.perf_counter()
        await asyncio.gather(*[
            self._run_shard(
                slot,
                connection,
                shard,
                pairs,
                replies,
                base,
                directed,
                want_path,
                window if window > 0 else len(pairs),
                reconnect,
            )
            for slot, shard, connection in live_shards
        ])
        elapsed = time.perf_counter() - start
        return QueryOutcome([reply for reply in replies if reply is not None],
                            elapsed)

    async def _run_shard(
        self,
        slot: int,
        connection: _PooledConnection,
        shard: List[int],
        pairs: Sequence[Tuple[WordTuple, WordTuple]],
        replies: List[Optional[RouteReply]],
        d: int,
        directed: bool,
        want_path: bool,
        window: int,
        reconnect: int,
    ) -> None:
        """Drive one shard, replacing the connection up to ``reconnect`` times."""
        attempts = 0
        remaining = shard
        while True:
            try:
                await self._pipeline(
                    connection, remaining, pairs, replies, d, directed,
                    want_path, window,
                )
                return
            except (ServiceError, ConnectionResetError, BrokenPipeError,
                    OSError):
                if self._pool[slot] is connection:
                    self._pool[slot] = None
                try:
                    connection.writer.close()
                except Exception:  # pragma: no cover - best-effort close
                    pass
                remaining = [i for i in remaining if replies[i] is None]
                if not remaining:
                    return
                attempts += 1
                if attempts > reconnect:
                    raise
                await asyncio.sleep(0.05 * attempts)
                connection = await self._connection(slot)

    async def _pipeline(
        self,
        connection: _PooledConnection,
        shard: List[int],
        pairs: Sequence[Tuple[WordTuple, WordTuple]],
        replies: List[Optional[RouteReply]],
        d: int,
        directed: bool,
        want_path: bool,
        window: int,
    ) -> None:
        in_flight: Dict[int, int] = {}
        cursor = 0
        answered = 0
        writer, reader, decoder = (
            connection.writer,
            connection.reader,
            connection.decoder,
        )
        while answered < len(shard):
            while cursor < len(shard) and len(in_flight) < window:
                index = shard[cursor]
                cursor += 1
                request_id = connection.take_id()
                in_flight[request_id] = index
                source, destination = pairs[index]
                writer.write(
                    encode_query(
                        request_id, d, source, destination, directed, want_path
                    )
                )
            await writer.drain()
            for frame in await self._read_frames(reader, decoder):
                index = in_flight.pop(frame.request_id, None)
                if index is None:
                    raise ProtocolError(
                        f"reply for unknown request id {frame.request_id}"
                    )
                if frame.frame_type == FrameType.REPLY:
                    distance, path = decode_reply(frame)
                    replies[index] = RouteReply(distance, path)
                elif frame.frame_type == FrameType.ERROR:
                    code, message = decode_error(frame)
                    replies[index] = RouteReply(None, None, code, message)
                else:
                    raise ProtocolError(
                        f"unexpected frame type {frame.frame_type!r} mid-burst"
                    )
                answered += 1

    async def _read_frames(self, reader, decoder) -> List:
        while True:
            data = await reader.read(1 << 16)
            if not data:
                raise ServiceError("server closed the connection mid-burst")
            frames = decoder.feed(data)
            if frames:
                return frames

    async def stats(self) -> Dict[str, object]:
        """Fetch the server's metrics snapshot over a ``STATS`` frame."""
        connection = await self._connection(0)
        request_id = connection.take_id()
        connection.writer.write(encode_stats_request(request_id))
        await connection.writer.drain()
        for frame in await self._read_frames(connection.reader, connection.decoder):
            if (
                frame.frame_type == FrameType.STATS_REPLY
                and frame.request_id == request_id
            ):
                return decode_stats_reply(frame)
            raise ProtocolError(
                f"expected a stats reply, got {frame.frame_type!r}"
            )
        raise ServiceError("no stats reply received")  # pragma: no cover


# ----------------------------------------------------------------------
# Blocking conveniences (scripts, CLI, tests)
# ----------------------------------------------------------------------


def query_once(
    host: str,
    port: int,
    source: WordTuple,
    destination: WordTuple,
    d: int,
    directed: bool = False,
    want_path: bool = True,
) -> RouteReply:
    """Connect, ask one query, disconnect — the smallest possible client."""

    async def _run() -> RouteReply:
        async with RouteServiceClient(host, port, d=d) as client:
            return await client.query(
                source, destination, directed=directed, want_path=want_path
            )

    return asyncio.run(_run())


def run_burst(
    host: str,
    port: int,
    pairs: Sequence[Tuple[WordTuple, WordTuple]],
    d: int,
    directed: bool = False,
    want_path: bool = True,
    pool_size: int = 1,
    window: int = 256,
    reconnect: int = 0,
) -> QueryOutcome:
    """Blocking pipelined burst; returns the :class:`QueryOutcome`."""

    async def _run() -> QueryOutcome:
        async with RouteServiceClient(
            host, port, d=d, pool_size=pool_size
        ) as client:
            return await client.query_many(
                pairs,
                directed=directed,
                want_path=want_path,
                window=window,
                reconnect=reconnect,
            )

    return asyncio.run(_run())


def fetch_stats(host: str, port: int) -> Dict[str, object]:
    """Blocking ``STATS`` round trip."""

    async def _run() -> Dict[str, object]:
        async with RouteServiceClient(host, port) as client:
            return await client.stats()

    return asyncio.run(_run())
