"""Pipelining client for the route-query service, with a connection pool.

:class:`RouteServiceClient` is the asyncio client: it keeps up to
``pool_size`` connections open, correlates replies to queries by request
id, and pipelines — :meth:`~RouteServiceClient.query_many` keeps a
bounded ``window`` of queries in flight per connection instead of
waiting a full round trip per query, which is where a de Bruijn query
service earns its throughput (single-query latency is wire-dominated; a
pipelined burst amortises it away).

Blocking wrappers (:func:`query_once`, :func:`run_burst`,
:func:`fetch_stats`) cover scripts, tests and the ``debruijn-routing
query`` subcommand without forcing callers to manage an event loop.

For hostile wires (see :mod:`repro.service.chaosproxy`) the module also
provides a hardened layer: :class:`RetryPolicy` (per-burst deadline
budget, exponential backoff with seeded jitter, optional hedging),
:class:`CircuitBreaker` (closed → open → half-open with a single probe)
and :class:`RobustRouteClient`, which wraps the plain client and
guarantees every query gets *an* answer — a server reply, or a
synthetic ``TIMEOUT`` reply carrying :data:`CLIENT_DEADLINE_MESSAGE`
once the budget is spent.  Resilience events are counted in a
:class:`~repro.service.metrics.MetricsRegistry` (``client.retries``,
``client.deadline_exceeded``, ``client.breaker_open``, ...).
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.routing import Path
from repro.core.word import WordTuple
from repro.exceptions import ProtocolError, ServiceError
from repro.service.metrics import MetricsRegistry
from repro.service.protocol import (
    ErrorCode,
    FrameDecoder,
    FrameType,
    decode_error,
    decode_reply,
    decode_stats_reply,
    encode_query,
    encode_stats_request,
)

#: ``error_message`` of the synthetic reply a :class:`RobustRouteClient`
#: fabricates when a query's deadline budget runs out client-side.
#: Loadgen and the chaos campaign treat these as *lost*, not answered.
CLIENT_DEADLINE_MESSAGE = "client deadline exceeded"

#: Error codes worth re-asking: transient server-side conditions, plus
#: ``MALFORMED``/``INTERNAL`` which, for a query the client knows it
#: encoded correctly, are evidence of wire corruption rather than a
#: caller bug.  ``UNSUPPORTED`` (wrong d/k) is permanent and is not
#: retried.
RETRYABLE_ERROR_CODES = frozenset(
    {
        ErrorCode.OVERLOADED,
        ErrorCode.TIMEOUT,
        ErrorCode.SHUTTING_DOWN,
        ErrorCode.MALFORMED,
        ErrorCode.INTERNAL,
    }
)


@dataclass(frozen=True)
class RouteReply:
    """The outcome of one query: a distance/path, or a service error."""

    distance: Optional[int]
    path: Optional[Path]
    error_code: Optional[ErrorCode] = None
    error_message: str = ""

    @property
    def ok(self) -> bool:
        """True for a successful ``REPLY``, False for any ``ERROR``."""
        return self.error_code is None


@dataclass
class QueryOutcome:
    """A pipelined burst's replies (input order) plus wall-clock cost."""

    replies: List[RouteReply]
    elapsed: float

    @property
    def ok_count(self) -> int:
        return sum(1 for reply in self.replies if reply.ok)

    @property
    def error_counts(self) -> Dict[str, int]:
        """Errors keyed by :class:`ErrorCode` name."""
        counts: Dict[str, int] = {}
        for reply in self.replies:
            if reply.error_code is not None:
                name = reply.error_code.name
                counts[name] = counts.get(name, 0) + 1
        return counts

    @property
    def qps(self) -> float:
        """Answered queries (replies *and* errors) per second."""
        return len(self.replies) / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def lost_count(self) -> int:
        """Queries that never got a server answer: synthetic
        client-deadline replies fabricated by :class:`RobustRouteClient`."""
        return sum(
            1
            for reply in self.replies
            if reply.error_message == CLIENT_DEADLINE_MESSAGE
        )


class _PooledConnection:
    """One pooled stream plus its decoder and request-id counter."""

    __slots__ = ("reader", "writer", "decoder", "next_id")

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.decoder = FrameDecoder()
        self.next_id = 0

    def take_id(self) -> int:
        self.next_id = (self.next_id + 1) & 0xFFFFFFFF
        return self.next_id


class RouteServiceClient:
    """Asyncio client with pooling and per-connection pipelining.

    >>> # doctest-style sketch; see tests/test_service.py for live use
    >>> # async with RouteServiceClient("127.0.0.1", port, d=2) as client:
    >>> #     reply = await client.query((0, 1, 1), (1, 1, 0))
    """

    def __init__(
        self,
        host: str,
        port: int,
        d: Optional[int] = None,
        pool_size: int = 1,
        connect_timeout: float = 5.0,
    ) -> None:
        if pool_size < 1:
            raise ServiceError(f"pool size must be >= 1, got {pool_size}")
        self.host = host
        self.port = port
        self.d = d
        self.pool_size = pool_size
        self.connect_timeout = connect_timeout
        self._pool: List[Optional[_PooledConnection]] = [None] * pool_size

    async def _connection(self, index: int) -> _PooledConnection:
        slot = index % self.pool_size
        connection = self._pool[slot]
        if connection is None or connection.writer.is_closing():
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port),
                timeout=self.connect_timeout,
            )
            connection = _PooledConnection(reader, writer)
            self._pool[slot] = connection
        return connection

    async def close(self) -> None:
        """Close every pooled connection."""
        for slot, connection in enumerate(self._pool):
            if connection is None:
                continue
            self._pool[slot] = None
            try:
                connection.writer.close()
                await connection.writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def __aenter__(self) -> "RouteServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- queries ---------------------------------------------------------

    def _digit_base(self, d: Optional[int]) -> int:
        base = d if d is not None else self.d
        if base is None:
            raise ServiceError(
                "alphabet size d is required (set it on the client or query)"
            )
        return base

    async def query(
        self,
        source: WordTuple,
        destination: WordTuple,
        directed: bool = False,
        want_path: bool = True,
        d: Optional[int] = None,
    ) -> RouteReply:
        """One round trip for one (source, destination) pair."""
        outcome = await self.query_many(
            [(source, destination)], directed=directed, want_path=want_path, d=d
        )
        return outcome.replies[0]

    async def query_many(
        self,
        pairs: Sequence[Tuple[WordTuple, WordTuple]],
        directed: bool = False,
        want_path: bool = True,
        d: Optional[int] = None,
        window: int = 256,
        reconnect: int = 0,
        results: Optional[List[Optional[RouteReply]]] = None,
    ) -> QueryOutcome:
        """Pipeline ``pairs`` across the pool; replies come back in order.

        ``window`` bounds in-flight queries per connection (the client's
        half of backpressure); ``window=0`` means "fire everything at
        once" — used by the overload tests to slam a bounded server.

        ``reconnect`` is the number of times a broken connection may be
        replaced mid-burst, re-issuing only the still-unanswered queries
        on a fresh stream.  The default 0 keeps the historical behaviour
        (a mid-burst EOF raises :class:`ServiceError`); a positive value
        makes bursts survive a crashed pool worker, whose in-flight
        replies are genuinely lost and must be re-asked.

        ``results`` (len == len(pairs)) is filled in place as replies
        stream back, so a caller that cancels or times the burst out
        still sees every reply received before the failure — the
        hardened client's way of keeping partial progress across
        abandoned attempts.
        """
        base = self._digit_base(d)
        if results is not None and len(results) != len(pairs):
            raise ServiceError(
                f"results buffer holds {len(results)} slots for "
                f"{len(pairs)} pairs")
        replies: List[Optional[RouteReply]] = (
            results if results is not None else [None] * len(pairs))
        shards: List[List[int]] = [[] for _ in range(self.pool_size)]
        for index in range(len(pairs)):
            shards[index % self.pool_size].append(index)
        pipelines = []
        live_shards = []
        for slot, shard in enumerate(shards):
            if not shard:
                continue
            connection = await self._connection(slot)
            live_shards.append((slot, shard, connection))
        start = time.perf_counter()
        tasks = [
            asyncio.ensure_future(self._run_shard(
                slot,
                connection,
                shard,
                pairs,
                replies,
                base,
                directed,
                want_path,
                window if window > 0 else len(pairs),
                reconnect,
            ))
            for slot, shard, connection in live_shards
        ]
        try:
            await asyncio.gather(*tasks)
        except BaseException:
            # One shard failing must not leave its siblings running:
            # a zombie shard would keep reading (and re-dialing) pool
            # slots that the caller's next burst reuses.
            for task in tasks:
                if not task.done():
                    task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            raise
        elapsed = time.perf_counter() - start
        return QueryOutcome([reply for reply in replies if reply is not None],
                            elapsed)

    async def _run_shard(
        self,
        slot: int,
        connection: _PooledConnection,
        shard: List[int],
        pairs: Sequence[Tuple[WordTuple, WordTuple]],
        replies: List[Optional[RouteReply]],
        d: int,
        directed: bool,
        want_path: bool,
        window: int,
        reconnect: int,
    ) -> None:
        """Drive one shard, replacing the connection up to ``reconnect`` times.

        Only *unproductive* reconnects are charged against the budget:
        a connection that answered some queries before dying reset the
        counter, so a burst over a wire where every connection
        eventually dies (chaos-proxy reset faults) still completes as
        long as each connection makes progress.  Each reconnect also
        halves the in-flight window (floor 8): on a wire that kills
        connections after a byte quota, a big pipelined slam burns the
        whole quota on queries whose replies never come back, while a
        small window keeps the ratio of answered to written high.
        """
        attempts = 0
        remaining = shard
        while True:
            try:
                await self._pipeline(
                    connection, remaining, pairs, replies, d, directed,
                    want_path, window,
                )
                return
            except (ServiceError, ConnectionResetError, BrokenPipeError,
                    OSError):
                if self._pool[slot] is connection:
                    self._pool[slot] = None
                try:
                    connection.writer.close()
                except Exception:  # pragma: no cover - best-effort close
                    pass
                still = [i for i in remaining if replies[i] is None]
                if not still:
                    return
                if len(still) < len(remaining):
                    attempts = 0  # progress: don't charge the budget
                remaining = still
                attempts += 1
                if attempts > reconnect:
                    raise
                window = max(8, window >> 1)
                if attempts > 1:
                    # Back off only when the last connection died without
                    # answering anything; after progress, redial at once.
                    await asyncio.sleep(0.05 * (attempts - 1))
                connection = await self._connection(slot)

    async def _pipeline(
        self,
        connection: _PooledConnection,
        shard: List[int],
        pairs: Sequence[Tuple[WordTuple, WordTuple]],
        replies: List[Optional[RouteReply]],
        d: int,
        directed: bool,
        want_path: bool,
        window: int,
    ) -> None:
        in_flight: Dict[int, int] = {}
        cursor = 0
        answered = 0
        writer, reader, decoder = (
            connection.writer,
            connection.reader,
            connection.decoder,
        )
        while answered < len(shard):
            while cursor < len(shard) and len(in_flight) < window:
                index = shard[cursor]
                cursor += 1
                request_id = connection.take_id()
                in_flight[request_id] = index
                source, destination = pairs[index]
                writer.write(
                    encode_query(
                        request_id, d, source, destination, directed, want_path
                    )
                )
            await writer.drain()
            for frame in await self._read_frames(reader, decoder):
                index = in_flight.pop(frame.request_id, None)
                if index is None:
                    raise ProtocolError(
                        f"reply for unknown request id {frame.request_id}"
                    )
                if frame.frame_type == FrameType.REPLY:
                    distance, path = decode_reply(frame)
                    replies[index] = RouteReply(distance, path)
                elif frame.frame_type == FrameType.ERROR:
                    code, message = decode_error(frame)
                    replies[index] = RouteReply(None, None, code, message)
                else:
                    raise ProtocolError(
                        f"unexpected frame type {frame.frame_type!r} mid-burst"
                    )
                answered += 1

    async def _read_frames(self, reader, decoder) -> List:
        while True:
            data = await reader.read(1 << 16)
            if not data:
                raise ServiceError("server closed the connection mid-burst")
            frames = decoder.feed(data)
            if frames:
                return frames

    async def stats(self) -> Dict[str, object]:
        """Fetch the server's metrics snapshot over a ``STATS`` frame."""
        connection = await self._connection(0)
        request_id = connection.take_id()
        connection.writer.write(encode_stats_request(request_id))
        await connection.writer.drain()
        for frame in await self._read_frames(connection.reader, connection.decoder):
            if (
                frame.frame_type == FrameType.STATS_REPLY
                and frame.request_id == request_id
            ):
                return decode_stats_reply(frame)
            raise ProtocolError(
                f"expected a stats reply, got {frame.frame_type!r}"
            )
        raise ServiceError("no stats reply received")  # pragma: no cover


# ----------------------------------------------------------------------
# Resilience layer: retry policy, circuit breaker, robust client
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """How hard a :class:`RobustRouteClient` fights for an answer.

    ``deadline`` is the wall-clock budget (seconds) shared by every
    query in one burst — all attempts, backoffs and breaker waits must
    fit inside it.  ``hedge_after`` arms hedging: if an attempt has not
    completed within that many seconds, the same queries are raced on a
    second connection and the first finisher wins.
    """

    retries: int = 4
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    deadline: Optional[float] = 30.0
    #: Cap on one attempt's wall clock.  None lets a single attempt use
    #: the whole remaining deadline; a finite cap makes black-hole
    #: partitions (connect succeeds, bytes vanish) fail fast enough for
    #: the circuit breaker to accumulate failures and trip.
    attempt_timeout: Optional[float] = None
    hedge_after: Optional[float] = None
    seed: str = "retry"

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff_base and backoff_max must be non-negative")
        for name in ("deadline", "attempt_timeout", "hedge_after"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Exponential backoff for ``attempt`` (1-based) with seeded
        jitter: the nominal delay is scaled by a uniform draw in
        [0.5, 1.0) so synchronized clients desynchronize."""
        nominal = min(self.backoff_max, self.backoff_base * (2 ** (attempt - 1)))
        return nominal * (0.5 + rng.random() / 2.0)


@dataclass(frozen=True)
class BreakerConfig:
    """Circuit breaker tuning: trip after ``failure_threshold``
    consecutive transport failures, probe every ``probe_interval``
    seconds while open."""

    failure_threshold: int = 5
    probe_interval: float = 1.0


class CircuitBreaker:
    """Closed → open → half-open breaker over transport failures.

    While **closed** every call is allowed; ``failure_threshold``
    consecutive failures trip it **open**, where calls fail fast
    (``client.breaker_short_circuits``) instead of burning the deadline
    budget against a dead wire.  After ``probe_interval`` seconds one
    call is let through as a **half-open** probe: success closes the
    breaker, failure re-opens it and restarts the interval.  This is
    what bounds partition-heal recovery to one probe interval (E24).
    """

    def __init__(
        self,
        config: Optional[BreakerConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        now: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or BreakerConfig()
        self.registry = registry or MetricsRegistry()
        self.state = "closed"
        self.failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        self._now = now

    def allow(self) -> bool:
        """May a request proceed right now?"""
        if self.state == "closed":
            return True
        now = self._now()
        if self.state == "open":
            if now - self._opened_at >= self.config.probe_interval:
                self.state = "half_open"
                self._probe_inflight = True
                return True
            return False
        # half-open: exactly one probe at a time
        if self._probe_inflight:
            return False
        self._probe_inflight = True
        return True

    def seconds_until_probe(self) -> float:
        """Seconds until an open breaker lets the next probe through."""
        if self.state != "open":
            return 0.0
        elapsed = self._now() - self._opened_at
        return max(0.0, self.config.probe_interval - elapsed)

    def record_success(self) -> None:
        """An attempt succeeded: close the breaker, reset the count."""
        self.state = "closed"
        self.failures = 0
        self._probe_inflight = False

    def record_failure(self) -> None:
        """An attempt failed: count it, trip open past the threshold."""
        self.failures += 1
        self._probe_inflight = False
        tripped = (
            self.state == "half_open"
            or self.failures >= self.config.failure_threshold
        )
        if tripped and self.state != "open":
            self.state = "open"
            self._opened_at = self._now()
            self.registry.inc("client.breaker_open")
        elif tripped:
            self._opened_at = self._now()


class RobustRouteClient:
    """Hardened client: every query in a burst gets an answer.

    Wraps a primary :class:`RouteServiceClient` (and, when hedging is
    armed, a second one with its own connection) behind a
    :class:`RetryPolicy` and a :class:`CircuitBreaker`.  Transport
    failures and retryable error replies are re-asked with backoff
    until they succeed, the retry budget runs out, or the burst's
    deadline expires — at which point still-unanswered queries are
    filled with synthetic ``TIMEOUT`` replies carrying
    :data:`CLIENT_DEADLINE_MESSAGE` and counted in
    ``client.deadline_exceeded``.

    ``fallbacks`` lists alternate ``(host, port)`` endpoints serving the
    same table (e.g. the surviving processes of a cluster).  When an
    attempt dies on a transport fault the client rotates to the next
    endpoint before retrying — counted in ``client.failovers`` — so a
    burst survives its primary being SIGKILLed mid-flight.
    """

    def __init__(
        self,
        host: str,
        port: int,
        d: Optional[int] = None,
        pool_size: int = 1,
        policy: Optional[RetryPolicy] = None,
        breaker: Optional[BreakerConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        connect_timeout: float = 5.0,
        fallbacks: Sequence[Tuple[str, int]] = (),
    ) -> None:
        self.policy = policy or RetryPolicy()
        self.registry = registry or MetricsRegistry()
        self.breaker = CircuitBreaker(breaker, self.registry)
        self._rng = random.Random(self.policy.seed)
        self._endpoints: List[Tuple[str, int]] = [(host, port)]
        self._endpoints.extend((h, p) for h, p in fallbacks)
        self._endpoint_index = 0
        self._d = d
        self._pool_size = pool_size
        self._connect_timeout = connect_timeout
        self._primary = RouteServiceClient(
            host, port, d=d, pool_size=pool_size, connect_timeout=connect_timeout
        )
        self._hedge: Optional[RouteServiceClient] = None
        if self.policy.hedge_after is not None:
            self._hedge = RouteServiceClient(
                host, port, d=d, pool_size=1, connect_timeout=connect_timeout
            )

    @property
    def endpoint(self) -> Tuple[str, int]:
        """The ``(host, port)`` the next attempt will dial."""
        return self._endpoints[self._endpoint_index]

    def _rotate_endpoint(self) -> None:
        """Point the (already-closed) clients at the next endpoint."""
        if len(self._endpoints) < 2:
            return
        self._endpoint_index = (
            self._endpoint_index + 1
        ) % len(self._endpoints)
        host, port = self._endpoints[self._endpoint_index]
        self.registry.inc("client.failovers")
        self._primary = RouteServiceClient(
            host, port, d=self._d, pool_size=self._pool_size,
            connect_timeout=self._connect_timeout,
        )
        if self._hedge is not None:
            self._hedge = RouteServiceClient(
                host, port, d=self._d, pool_size=1,
                connect_timeout=self._connect_timeout,
            )

    async def close(self) -> None:
        """Close the primary (and hedge) clients' pooled connections."""
        await self._primary.close()
        if self._hedge is not None:
            await self._hedge.close()

    async def __aenter__(self) -> "RobustRouteClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def query(
        self,
        source: WordTuple,
        destination: WordTuple,
        directed: bool = False,
        want_path: bool = True,
        d: Optional[int] = None,
    ) -> RouteReply:
        """One hardened query; never raises on transport failure."""
        outcome = await self.query_many(
            [(source, destination)], directed=directed, want_path=want_path, d=d
        )
        return outcome.replies[0]

    async def stats(self) -> Dict[str, object]:
        """A ``STATS`` round trip on the primary client."""
        return await self._primary.stats()

    async def query_many(
        self,
        pairs: Sequence[Tuple[WordTuple, WordTuple]],
        directed: bool = False,
        want_path: bool = True,
        d: Optional[int] = None,
        window: int = 256,
        reconnect: int = 0,  # accepted for signature parity; retries subsume it
    ) -> QueryOutcome:
        """Hardened burst: every pair gets a reply, real or synthetic.

        Retries transport failures and retryable error replies with
        backoff under the policy's deadline; progress made by a failed
        or timed-out attempt is kept, and budgets reset on progress.
        """
        start = time.perf_counter()
        deadline = (
            start + self.policy.deadline if self.policy.deadline is not None else None
        )
        final: List[Optional[RouteReply]] = [None] * len(pairs)
        pending = list(range(len(pairs)))
        attempt = 0
        while pending:
            remaining = deadline - time.perf_counter() if deadline else None
            if remaining is not None and remaining <= 0:
                break
            if not self.breaker.allow():
                self.registry.inc("client.breaker_short_circuits")
                wait = max(self.breaker.seconds_until_probe(), 0.001)
                if remaining is not None and wait >= remaining:
                    await asyncio.sleep(max(0.0, remaining))
                    break
                await asyncio.sleep(wait)
                continue
            self.registry.inc("client.attempts")
            subset = [pairs[i] for i in pending]
            before = len(pending)
            # The attempt streams replies into this buffer, so even an
            # attempt that times out or dies mid-burst contributes the
            # replies it already received.
            scratch: List[Optional[RouteReply]] = [None] * len(subset)
            # Degrade the in-flight window as attempts fail: a huge
            # write burst on a wire that resets connections mid-frame
            # can die before a single reply streams back, so smaller
            # windows trade throughput for guaranteed progress.
            effective_window = max(8, window >> attempt) if window > 0 else window
            bound = remaining
            if self.policy.attempt_timeout is not None:
                bound = (
                    self.policy.attempt_timeout
                    if remaining is None
                    else min(remaining, self.policy.attempt_timeout)
                )
            outcome: Optional[QueryOutcome] = None
            try:
                outcome = await self._attempt(
                    subset, directed, want_path, d, effective_window, bound,
                    scratch,
                )
            except (ServiceError, ConnectionError, OSError, asyncio.TimeoutError):
                self.breaker.record_failure()
                # A timed-out or failed attempt may leave pooled
                # connections mid-stream (or fated to trickle forever);
                # drop them so the retry dials fresh ones — at the next
                # fallback endpoint, when one is configured.
                await self._primary.close()
                if self._hedge is not None:
                    await self._hedge.close()
                self._rotate_endpoint()
            if outcome is not None:
                self.breaker.record_success()
            # Harvest the scratch buffer either way: an abandoned
            # attempt's partial replies count just as much.
            still: List[int] = []
            for offset, index in enumerate(pending):
                reply = scratch[offset]
                if reply is None:
                    still.append(index)
                    continue
                final[index] = reply
                if (
                    not reply.ok
                    and reply.error_code in RETRYABLE_ERROR_CODES
                ):
                    still.append(index)
            pending = still
            if not pending:
                break
            if len(pending) < before:
                attempt = 0  # progress: don't charge the retry budget
            attempt += 1
            if attempt > self.policy.retries:
                break
            self.registry.inc("client.retries")
            delay = self.policy.backoff(attempt, self._rng)
            if deadline is not None:
                delay = min(delay, max(0.0, deadline - time.perf_counter()))
            await asyncio.sleep(delay)
        lost = 0
        for index in range(len(pairs)):
            if final[index] is None:
                final[index] = RouteReply(
                    None, None, ErrorCode.TIMEOUT, CLIENT_DEADLINE_MESSAGE
                )
                lost += 1
        if lost:
            self.registry.inc("client.deadline_exceeded", lost)
        elapsed = time.perf_counter() - start
        return QueryOutcome([r for r in final if r is not None], elapsed)

    async def _attempt(
        self,
        subset: Sequence[Tuple[WordTuple, WordTuple]],
        directed: bool,
        want_path: bool,
        d: Optional[int],
        window: int,
        remaining: Optional[float],
        scratch: List[Optional[RouteReply]],
    ) -> QueryOutcome:
        """One attempt over the primary connection, hedged onto the
        second connection if it outlives ``hedge_after``.

        ``scratch`` is the caller's results buffer: replies stream into
        it as they arrive (from the primary and the hedge alike), so
        the caller keeps whatever this attempt managed even when it is
        cancelled or errors out.
        """
        hedge_after = self.policy.hedge_after
        # The inner reconnect budget preserves partial progress *within*
        # an attempt: when every fresh connection is fated to die (e.g.
        # reset_rate=1.0 through the chaos proxy), per-connection
        # partial bursts are the only way the burst ever completes.
        inner_reconnect = max(1, self.policy.retries)
        primary = asyncio.ensure_future(
            self._primary.query_many(
                subset, directed=directed, want_path=want_path, d=d,
                window=window, reconnect=inner_reconnect, results=scratch,
            )
        )
        if self._hedge is None or hedge_after is None:
            return await self._await_bounded(primary, remaining)
        first_wait = hedge_after
        if remaining is not None:
            first_wait = min(first_wait, remaining)
        try:
            return await asyncio.wait_for(asyncio.shield(primary), first_wait)
        except asyncio.TimeoutError:
            if remaining is not None and first_wait >= remaining:
                await self._reap(primary)
                raise
        except Exception:
            await self._reap(primary)
            raise
        self.registry.inc("client.hedges")
        hedge = asyncio.ensure_future(
            self._hedge.query_many(
                subset, directed=directed, want_path=want_path, d=d,
                window=window, reconnect=inner_reconnect, results=scratch,
            )
        )
        racers = {primary, hedge}
        budget = (
            None if remaining is None else max(0.001, remaining - first_wait)
        )
        try:
            while racers:
                done, racers_left = await asyncio.wait(
                    racers, return_when=asyncio.FIRST_COMPLETED, timeout=budget
                )
                if not done:
                    raise asyncio.TimeoutError()
                racers = set(racers_left)
                for task in done:
                    if not task.cancelled() and task.exception() is None:
                        if task is hedge:
                            self.registry.inc("client.hedge_wins")
                        return task.result()
            # both racers failed: surface the primary's error
            raise primary.exception() or ServiceError("hedged attempt failed")
        finally:
            await self._reap(primary, hedge)

    @staticmethod
    async def _await_bounded(task: "asyncio.Future", remaining: Optional[float]):
        if remaining is None:
            return await task
        try:
            return await asyncio.wait_for(task, remaining)
        except asyncio.TimeoutError:
            raise

    @staticmethod
    async def _reap(*tasks: "asyncio.Future") -> None:
        """Cancel and retrieve stragglers so no 'exception was never
        retrieved' noise leaks from abandoned racers."""
        for task in tasks:
            if not task.done():
                task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)


# ----------------------------------------------------------------------
# Blocking conveniences (scripts, CLI, tests)
# ----------------------------------------------------------------------


def query_once(
    host: str,
    port: int,
    source: WordTuple,
    destination: WordTuple,
    d: int,
    directed: bool = False,
    want_path: bool = True,
    retries: int = 3,
    backoff: float = 0.05,
) -> RouteReply:
    """Connect, ask one query, disconnect — the smallest possible client.

    A connection refused or reset is retried on a fresh socket up to
    ``retries`` extra times with seeded-jitter backoff: worker respawn
    windows (the supervisor recycling a crashed worker, a cluster node
    restarting) last tens of milliseconds, and a one-shot query should
    ride them out rather than bubble ``ECONNREFUSED`` to the operator.
    The final attempt's failure propagates.
    """

    async def _attempt() -> RouteReply:
        async with RouteServiceClient(host, port, d=d) as client:
            return await client.query(
                source, destination, directed=directed, want_path=want_path
            )

    async def _run() -> RouteReply:
        rng = random.Random(f"query-once:{host}:{port}")
        for attempt in range(retries + 1):
            try:
                return await _attempt()
            except (ConnectionError, OSError, asyncio.TimeoutError):
                if attempt == retries:
                    raise
                await asyncio.sleep(
                    backoff * (attempt + 1) * (0.5 + rng.random() / 2)
                )
        raise ServiceError("unreachable")  # pragma: no cover

    return asyncio.run(_run())


def run_burst(
    host: str,
    port: int,
    pairs: Sequence[Tuple[WordTuple, WordTuple]],
    d: int,
    directed: bool = False,
    want_path: bool = True,
    pool_size: int = 1,
    window: int = 256,
    reconnect: int = 0,
) -> QueryOutcome:
    """Blocking pipelined burst; returns the :class:`QueryOutcome`."""

    async def _run() -> QueryOutcome:
        async with RouteServiceClient(
            host, port, d=d, pool_size=pool_size
        ) as client:
            return await client.query_many(
                pairs,
                directed=directed,
                want_path=want_path,
                window=window,
                reconnect=reconnect,
            )

    return asyncio.run(_run())


def run_robust_burst(
    host: str,
    port: int,
    pairs: Sequence[Tuple[WordTuple, WordTuple]],
    d: int,
    directed: bool = False,
    want_path: bool = True,
    pool_size: int = 1,
    window: int = 256,
    policy: Optional[RetryPolicy] = None,
    breaker: Optional[BreakerConfig] = None,
    fallbacks: Sequence[Tuple[str, int]] = (),
) -> Tuple[QueryOutcome, Dict[str, object]]:
    """Blocking hardened burst; returns (outcome, client metrics
    snapshot) so callers can report ``client.*`` counters alongside the
    replies."""

    async def _run() -> Tuple[QueryOutcome, Dict[str, object]]:
        async with RobustRouteClient(
            host, port, d=d, pool_size=pool_size, policy=policy,
            breaker=breaker, fallbacks=fallbacks,
        ) as client:
            outcome = await client.query_many(
                pairs, directed=directed, want_path=want_path, window=window
            )
            return outcome, client.registry.snapshot()

    return asyncio.run(_run())


def fetch_stats(
    host: str, port: int, retries: int = 3, backoff: float = 0.05
) -> Dict[str, object]:
    """Blocking ``STATS`` round trip, retried on transport faults.

    A ``STATS`` request is idempotent and tiny, so when the wire is
    hostile (e.g. the connection dies mid-reply behind a chaos proxy)
    the round trip is simply repeated on a fresh connection, up to
    ``retries`` extra attempts with seeded-jitter ``backoff`` between
    them — jittered so a fleet of pollers hammering a respawning worker
    doesn't re-synchronize its retries.  The final attempt's failure
    propagates.
    """

    async def _attempt() -> Dict[str, object]:
        async with RouteServiceClient(host, port) as client:
            return await client.stats()

    async def _run() -> Dict[str, object]:
        rng = random.Random(f"fetch-stats:{host}:{port}")
        for attempt in range(retries + 1):
            try:
                return await _attempt()
            except (ConnectionError, OSError, ServiceError,
                    asyncio.TimeoutError):
                if attempt == retries:
                    raise
                await asyncio.sleep(
                    backoff * (attempt + 1) * (0.5 + rng.random() / 2)
                )
        raise ServiceError("unreachable")  # pragma: no cover

    return asyncio.run(_run())
