"""Counters and fixed-bucket latency histograms for the query service.

A deliberately small, dependency-free registry in the Prometheus style:
monotonic :class:`Counter` values plus :class:`Histogram` observations
binned into a *fixed* set of upper-bound buckets chosen at construction.
Fixed buckets keep ``observe`` O(log buckets) with zero allocation —
safe inside the server's hot path — while still answering p50/p95/p99
by linear interpolation inside the winning bucket (the standard
``histogram_quantile`` estimate; exact enough at the default 5 %
bucket-to-bucket resolution, and tested against sorted-sample quantiles).

The whole registry serialises to a plain dict (:meth:`MetricsRegistry.
snapshot`) which the server ships over the ``STATS`` frame and the CLI
writes with ``--stats-json``.  Snapshots carry the raw bucket counts, so
:meth:`MetricsRegistry.merge` can fold many workers' snapshots into one
fleet-wide registry bucket-wise: merged quantiles are exactly the
quantiles of the concatenated observation streams (same buckets, summed
counts, min-of-mins / max-of-maxes) — the multi-process supervisor's
``STATS`` aggregation path.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Optional, Sequence, Tuple

#: Default latency buckets (seconds): 22 geometric steps, ~50 µs .. ~10 s.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    5e-05 * (1.75**i) for i in range(22)
)


class Counter:
    """A monotonically increasing named counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Histogram:
    """Fixed-bucket histogram with quantile estimates.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    implicit overflow bucket catches everything beyond the last edge.

    >>> h = Histogram("demo", bounds=(1.0, 2.0, 4.0))
    >>> for v in (0.5, 1.5, 1.6, 3.0):
    ...     h.observe(v)
    >>> h.count, round(h.total, 1)
    (4, 6.6)
    >>> 1.0 <= h.quantile(0.5) <= 2.0
    True
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "_min", "_max")

    def __init__(
        self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be a sorted non-empty sequence")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of every observation (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 < q <= 1) from the buckets.

        Linear interpolation inside the bucket holding the q-th
        observation, clamped to the observed min/max so tails never
        over-report beyond what was actually seen.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile {q} outside (0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= rank:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = (
                    self.bounds[index] if index < len(self.bounds) else self._max
                )
                fraction = (rank - seen) / bucket_count
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, self._min), self._max)
            seen += bucket_count
        return self._max  # pragma: no cover - defensive (rank <= count)

    def merge_snapshot(self, row: Dict[str, object]) -> None:
        """Fold another histogram's :meth:`snapshot` into this one.

        The other histogram must have identical bucket bounds — merging
        is a bucket-wise count addition, so the merged quantile estimate
        equals the estimate of a single histogram that observed both
        streams.  Raises :class:`ValueError` on a bounds mismatch or a
        summary-only snapshot (one without ``bounds``/``counts``).
        """
        bounds = row.get("bounds")
        counts = row.get("counts")
        if bounds is None or counts is None:
            raise ValueError(
                f"histogram {self.name}: snapshot has no bucket data to merge"
            )
        if tuple(float(b) for b in bounds) != self.bounds:
            raise ValueError(f"histogram {self.name}: bucket bounds differ")
        if len(counts) != len(self.counts):
            raise ValueError(f"histogram {self.name}: bucket count mismatch")
        other_count = int(row["count"])
        if other_count == 0:
            return
        for index, bucket_count in enumerate(counts):
            self.counts[index] += int(bucket_count)
        self.count += other_count
        self.total += float(row["sum"])
        self._min = min(self._min, float(row["min"]))
        self._max = max(self._max, float(row["max"]))

    def snapshot(self) -> Dict[str, object]:
        """The summary row exported over the wire (plus raw buckets)."""
        return {
            "count": float(self.count),
            "sum": self.total,
            "mean": self.mean,
            "min": self._min if self.count else 0.0,
            "max": self._max if self.count else 0.0,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "bounds": list(self.bounds),
            "counts": list(self.counts),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self.count})"


class MetricsRegistry:
    """Named counters and histograms with one-call snapshot export.

    ``counter`` / ``histogram`` are get-or-create and return the same
    object for the same name, so modules can look metrics up lazily
    without coordinating construction order.
    """

    __slots__ = ("_counters", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter(name)
        return found

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        """The histogram under ``name`` (created with ``bounds`` on first use)."""
        found = self._histograms.get(name)
        if found is None:
            found = self._histograms[name] = Histogram(
                name, bounds if bounds is not None else DEFAULT_LATENCY_BUCKETS
            )
        return found

    def inc(self, name: str, amount: int = 1) -> None:
        """Shorthand for ``registry.counter(name).inc(amount)``."""
        self.counter(name).inc(amount)

    def set_counter(self, name: str, value: int) -> None:
        """Force a counter to an externally computed total (gauge-style)."""
        counter = self.counter(name)
        if value < counter.value:
            counter.value = value
        else:
            counter.inc(value - counter.value)

    def merge(self, other_snapshot: Dict[str, object]) -> None:
        """Fold one :meth:`snapshot` dict into this registry.

        Counters add; histograms merge bucket-wise (identical bounds
        required, see :meth:`Histogram.merge_snapshot`).  Calling this
        once per worker snapshot on a fresh registry yields the
        fleet-wide view the supervisor serves over ``STATS``: summed
        counters, and latency quantiles computed over the union of every
        worker's observations.
        """
        counters = other_snapshot.get("counters", {})
        if isinstance(counters, dict):
            for name, value in counters.items():
                self.counter(name).inc(int(value))
        histograms = other_snapshot.get("histograms", {})
        if isinstance(histograms, dict):
            for name, row in histograms.items():
                bounds = row.get("bounds")
                if bounds is None:
                    raise ValueError(
                        f"histogram {name}: snapshot has no bucket data"
                    )
                self.histogram(name, bounds=bounds).merge_snapshot(row)

    def snapshot(self) -> Dict[str, object]:
        """Everything, as plain JSON-serialisable types."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(self._histograms.items())
            },
        }
