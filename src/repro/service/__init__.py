"""Route-query service: a network-facing front end for the routing core.

Everything the previous PRs built — Algorithm 1/2 planners with the
:class:`~repro.core.routing.RouteCache`, the one-to-many batch engine of
:mod:`repro.core.batch`, and the mmap-loadable
:class:`~repro.core.tables.CompiledRouteTable` — was only reachable
in-process.  This package puts it on the wire:

* :mod:`repro.service.protocol` — length-prefixed binary frames
  (query / reply / error / stats) that reuse the paper's five-field
  path encoding from :mod:`repro.network.message`.
* :mod:`repro.service.engine` — the tiered resolver: O(1) compiled-table
  lookups when a table is loaded, cache-backed ``route()`` planning
  otherwise, and same-destination coalescing through the suffix-automaton
  batch engine.
* :mod:`repro.service.server` — an asyncio server with a micro-batching
  queue (flush on size or deadline), a bounded admission queue that
  answers overload with an explicit error frame instead of buffering
  without limit, per-request timeouts, and graceful drain on shutdown.
* :mod:`repro.service.client` — a pipelining client with a connection
  pool, plus blocking convenience wrappers for scripts and the CLI.
* :mod:`repro.service.metrics` — the counter / fixed-bucket-histogram
  registry whose snapshot the server exposes over a ``STATS`` frame,
  with bucket-wise snapshot merging for fleet-wide aggregation.
* :mod:`repro.service.supervisor` — the multi-core front end: a
  supervisor forks one worker per core (``SO_REUSEPORT`` or a shared
  listener), each mmap-loading the same compiled table, with fleet-wide
  ``STATS`` aggregation, graceful drain, and crashed-worker respawn.
* :mod:`repro.service.loadgen` — closed-loop load generation: capacity
  sweeps that report sustained-at-SLO qps, and soak scenarios with
  client churn, window-0 slams, and RSS-drift tracking.
* :mod:`repro.service.chaosproxy` — a wire-level fault injector: a TCP
  proxy driven by a seeded replayable :class:`FaultPlan` (latency,
  bandwidth caps, mid-frame resets, corruption, partitions, trickle)
  that the hardened client/server/supervisor stack is tested against.

Quickstart (see also ``examples/serve_queries.py``)::

    import asyncio
    from repro.service import RouteQueryEngine, RouteQueryServer, RouteServiceClient

    async def main():
        server = RouteQueryServer(RouteQueryEngine(d=2, k=6))
        port = await server.start()
        async with RouteServiceClient("127.0.0.1", port) as client:
            reply = await client.query((0, 1, 1, 0, 1, 0), (1, 1, 0, 1, 1, 0))
            print(reply.distance, reply.path)
        await server.stop()

    asyncio.run(main())
"""

from repro.service.chaosproxy import ChaosProxy, ChaosProxyThread, FaultPlan
from repro.service.client import (
    CLIENT_DEADLINE_MESSAGE,
    BreakerConfig,
    CircuitBreaker,
    QueryOutcome,
    RetryPolicy,
    RobustRouteClient,
    RouteReply,
    RouteServiceClient,
    query_once,
    run_robust_burst,
)
from repro.service.engine import EngineSpec, RouteQueryEngine, build_engine
from repro.service.loadgen import (
    LoadScenario,
    SoakResult,
    StepResult,
    SweepResult,
    measure_soak,
    measure_step,
    measure_sweep,
)
from repro.service.metrics import Counter, Histogram, MetricsRegistry
from repro.service.protocol import (
    ErrorCode,
    FrameDecoder,
    FrameType,
    RouteQuery,
    encode_frame,
)
from repro.service.server import RouteQueryServer, ServerConfig
from repro.service.supervisor import (
    ServiceSupervisor,
    SupervisorConfig,
    SupervisorThread,
    reuseport_supported,
)

__all__ = [
    "BreakerConfig",
    "ChaosProxy",
    "ChaosProxyThread",
    "CircuitBreaker",
    "CLIENT_DEADLINE_MESSAGE",
    "Counter",
    "EngineSpec",
    "FaultPlan",
    "RetryPolicy",
    "RobustRouteClient",
    "run_robust_burst",
    "ErrorCode",
    "FrameDecoder",
    "FrameType",
    "Histogram",
    "LoadScenario",
    "MetricsRegistry",
    "QueryOutcome",
    "RouteQuery",
    "RouteQueryEngine",
    "RouteQueryServer",
    "RouteReply",
    "RouteServiceClient",
    "ServerConfig",
    "ServiceSupervisor",
    "SoakResult",
    "StepResult",
    "SupervisorConfig",
    "SupervisorThread",
    "SweepResult",
    "build_engine",
    "encode_frame",
    "measure_soak",
    "measure_step",
    "measure_sweep",
    "query_once",
    "reuseport_supported",
]
