"""Closed-loop load generation: capacity sweeps and soak scenarios.

Burst benchmarks (E21) measure *offered* throughput: fire a pipelined
burst, divide by wall clock.  That number lies near saturation — a
server answering 20k qps with a 2-second queue is not a 20k qps server
anyone should deploy.  This module measures *sustained* capacity the way
an operator would:

* :func:`run_step` drives ``connections`` closed-loop virtual users
  (send → await → record → repeat) for a fixed duration and reports
  exact latency percentiles from the raw per-query samples — no bucket
  interpolation, so SLO comparisons at millisecond scale are stable.
* :func:`run_sweep` walks an offered-rate ladder, rating each step
  against a p99 SLO, and reports the **knee**: the highest step the
  service sustains with p99 within SLO and ~every query answered.
  That "sustained-at-SLO qps" is the capacity number BENCH_service.json
  records per worker count.
* :func:`run_soak` holds steady load for minutes with client churn
  (vusers periodically reconnect) and window-0 slams (un-windowed
  bursts that exercise the overload path), sampling worker RSS from
  ``/proc``; drift in RSS or between first/last-quartile p99 is how a
  leak or a degrading event loop shows up.

Everything is stdlib + the existing pipelining client; async at the
core with blocking wrappers for benches and the CLI.
"""

from __future__ import annotations

import asyncio
import math
import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.word import WordTuple
from repro.exceptions import ServiceError
from repro.service.client import (
    CLIENT_DEADLINE_MESSAGE,
    BreakerConfig,
    RetryPolicy,
    RobustRouteClient,
    RouteServiceClient,
)
from repro.service.metrics import MetricsRegistry

#: Outcomes a vuser records per query.
_OK, _ERROR, _FAILED = 0, 1, 2


def _percentile(sorted_samples: Sequence[float], q: float) -> float:
    """Exact q-quantile (nearest-rank with interpolation) of sorted data."""
    if not sorted_samples:
        return 0.0
    if len(sorted_samples) == 1:
        return sorted_samples[0]
    rank = q * (len(sorted_samples) - 1)
    low = int(math.floor(rank))
    high = min(low + 1, len(sorted_samples) - 1)
    fraction = rank - low
    return sorted_samples[low] * (1.0 - fraction) + sorted_samples[high] * fraction


def read_rss_bytes(pid: int) -> Optional[int]:
    """Resident set size of ``pid`` from ``/proc`` (None off-Linux/dead)."""
    try:
        with open(f"/proc/{pid}/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        return None
    return None


def fleet_rss_bytes(pids: Sequence[int]) -> Optional[int]:
    """Summed RSS across ``pids`` (None when none are readable)."""
    values = [rss for rss in (read_rss_bytes(pid) for pid in pids)
              if rss is not None]
    return sum(values) if values else None


@dataclass
class StepResult:
    """One load step's measurements."""

    offered_qps: Optional[float]  #: None means unpaced (as fast as possible)
    duration: float
    queries: int  #: replies + errors actually answered
    ok: int
    errors: int
    failures: int  #: queries lost to dead connections (after retries)
    achieved_qps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float
    slo_ms: Optional[float] = None

    @property
    def ok_fraction(self) -> float:
        total = self.queries + self.failures
        return self.ok / total if total else 0.0

    @property
    def within_slo(self) -> bool:
        """True when the step sustained its SLO (p99 and completeness)."""
        if self.slo_ms is None:
            return True
        return self.p99_ms <= self.slo_ms and self.ok_fraction >= 0.999

    def to_row(self) -> Dict[str, object]:
        """JSON-ready summary of this step for BENCH records."""
        return {
            "offered_qps": self.offered_qps,
            "duration_s": round(self.duration, 3),
            "queries": self.queries,
            "ok": self.ok,
            "errors": self.errors,
            "failures": self.failures,
            "achieved_qps": round(self.achieved_qps, 1),
            "p50_ms": round(self.p50_ms, 3),
            "p95_ms": round(self.p95_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "max_ms": round(self.max_ms, 3),
            "slo_ms": self.slo_ms,
            "within_slo": self.within_slo,
        }


@dataclass
class SweepResult:
    """A full offered-load ladder plus its knee."""

    steps: List[StepResult]
    slo_ms: float
    #: Highest step that sustained the SLO (None when even the first failed).
    knee: Optional[StepResult] = None

    @property
    def sustained_qps(self) -> float:
        """Achieved qps at the knee — the headline capacity number."""
        return self.knee.achieved_qps if self.knee is not None else 0.0

    def to_row(self) -> Dict[str, object]:
        """JSON-ready summary of the sweep and its knee."""
        return {
            "slo_ms": self.slo_ms,
            "sustained_qps": round(self.sustained_qps, 1),
            "knee_offered_qps": (
                self.knee.offered_qps if self.knee is not None else None
            ),
            "steps": [step.to_row() for step in self.steps],
        }


@dataclass
class SoakResult:
    """A soak run: per-quartile latency plus RSS drift."""

    duration: float
    queries: int
    ok: int
    errors: int
    failures: int
    quartile_p99_ms: List[float]  #: exact p99 per elapsed-time quartile
    rss_first_bytes: Optional[int]
    rss_last_bytes: Optional[int]
    reconnects: int
    slams: int

    @property
    def rss_drift(self) -> Optional[float]:
        """Fractional RSS growth over the soak (None when unreadable)."""
        if not self.rss_first_bytes or self.rss_last_bytes is None:
            return None
        return (self.rss_last_bytes - self.rss_first_bytes) / self.rss_first_bytes

    @property
    def p99_degradation(self) -> Optional[float]:
        """last-quartile p99 / first-quartile p99 (None without samples)."""
        if len(self.quartile_p99_ms) < 4:
            return None
        first, last = self.quartile_p99_ms[0], self.quartile_p99_ms[3]
        if first <= 0.0:
            return None
        return last / first

    def to_row(self) -> Dict[str, object]:
        """JSON-ready summary of the soak for BENCH records."""
        return {
            "duration_s": round(self.duration, 1),
            "queries": self.queries,
            "ok": self.ok,
            "errors": self.errors,
            "failures": self.failures,
            "quartile_p99_ms": [round(v, 3) for v in self.quartile_p99_ms],
            "rss_first_bytes": self.rss_first_bytes,
            "rss_last_bytes": self.rss_last_bytes,
            "rss_drift": (
                round(self.rss_drift, 4) if self.rss_drift is not None else None
            ),
            "p99_degradation": (
                round(self.p99_degradation, 3)
                if self.p99_degradation is not None
                else None
            ),
            "reconnects": self.reconnects,
            "slams": self.slams,
        }


@dataclass
class LoadScenario:
    """What every vuser sends: the query mix for one DG(d, k) service."""

    d: int
    k: int
    directed: bool = False
    want_path: bool = False
    seed: int = 1105  #: per-vuser streams derive from this

    def pairs(self, rng: random.Random, count: int) -> List[
        Tuple[WordTuple, WordTuple]
    ]:
        """``count`` random (source, destination) word pairs."""
        d, k = self.d, self.k
        return [
            (
                tuple(rng.randrange(d) for _ in range(k)),
                tuple(rng.randrange(d) for _ in range(k)),
            )
            for _ in range(count)
        ]


class _Recorder:
    """Shared latency/outcome sink for every vuser in one step."""

    def __init__(self, started: float) -> None:
        self.started = started
        self.latencies: List[float] = []  #: seconds, ok replies only
        self.stamps: List[float] = []  #: elapsed-at-completion per ok reply
        self.ok = 0
        self.errors = 0
        self.failures = 0

    def record(self, outcome: int, latency: float, now: float) -> None:
        if outcome == _OK:
            self.ok += 1
            self.latencies.append(latency)
            self.stamps.append(now - self.started)
        elif outcome == _ERROR:
            self.errors += 1
        else:
            self.failures += 1


async def _vuser(
    host: str,
    port: int,
    scenario: LoadScenario,
    recorder: _Recorder,
    stop_at: float,
    interval: Optional[float],
    rng: random.Random,
    batch: int = 1,
    reconnect: int = 8,
    policy: Optional[RetryPolicy] = None,
    breaker: Optional[BreakerConfig] = None,
    client_registry: Optional[MetricsRegistry] = None,
) -> None:
    """One closed-loop virtual user: send, await, record, repeat.

    ``interval`` paces by absolute schedule (each batch is due at
    ``start + n*interval``; lateness is not forgiven, so a slow server
    sees the backlog as latency — the open-loop property that makes the
    knee visible).  ``interval=None`` runs flat out.

    With a ``policy`` the vuser drives a :class:`RobustRouteClient`
    (retries, deadline budget, breaker) instead of the plain client;
    synthetic client-deadline replies are recorded as *failures*, not
    answers, so ``--assert-complete`` stays honest under chaos.
    """
    client = (
        RobustRouteClient(host, port, d=scenario.d, policy=policy,
                          breaker=breaker, registry=client_registry)
        if policy is not None
        else RouteServiceClient(host, port, d=scenario.d)
    )
    next_due = time.perf_counter()
    try:
        while True:
            now = time.perf_counter()
            if now >= stop_at:
                break
            if interval is not None:
                if next_due > now:
                    await asyncio.sleep(min(next_due - now, stop_at - now))
                    if time.perf_counter() >= stop_at:
                        break
                next_due += interval
            pairs = scenario.pairs(rng, batch)
            sent_at = time.perf_counter()
            try:
                outcome = await client.query_many(
                    pairs,
                    directed=scenario.directed,
                    want_path=scenario.want_path,
                    reconnect=reconnect,
                )
            except (ServiceError, OSError):
                done_at = time.perf_counter()
                for _ in pairs:
                    recorder.record(_FAILED, 0.0, done_at)
                await asyncio.sleep(0.05)
                continue
            done_at = time.perf_counter()
            latency = (done_at - sent_at) / max(1, len(pairs))
            for reply in outcome.replies:
                if reply.error_message == CLIENT_DEADLINE_MESSAGE:
                    recorder.record(_FAILED, 0.0, done_at)
                else:
                    recorder.record(
                        _OK if reply.ok else _ERROR, latency, done_at
                    )
    finally:
        await client.close()


def _step_from_recorder(
    recorder: _Recorder,
    offered_qps: Optional[float],
    duration: float,
    slo_ms: Optional[float],
) -> StepResult:
    samples = sorted(recorder.latencies)
    queries = recorder.ok + recorder.errors
    return StepResult(
        offered_qps=offered_qps,
        duration=duration,
        queries=queries,
        ok=recorder.ok,
        errors=recorder.errors,
        failures=recorder.failures,
        achieved_qps=queries / duration if duration > 0 else 0.0,
        p50_ms=_percentile(samples, 0.50) * 1e3,
        p95_ms=_percentile(samples, 0.95) * 1e3,
        p99_ms=_percentile(samples, 0.99) * 1e3,
        max_ms=(samples[-1] * 1e3) if samples else 0.0,
        slo_ms=slo_ms,
    )


async def run_step(
    host: str,
    port: int,
    scenario: LoadScenario,
    duration: float = 2.0,
    connections: int = 4,
    offered_qps: Optional[float] = None,
    slo_ms: Optional[float] = None,
    batch: int = 1,
    policy: Optional[RetryPolicy] = None,
    breaker: Optional[BreakerConfig] = None,
    client_registry: Optional[MetricsRegistry] = None,
) -> StepResult:
    """Drive one load step and measure it.

    ``offered_qps`` paces the fleet of vusers to that aggregate rate
    (each vuser gets ``offered_qps / connections``); ``None`` is
    closed-loop flat out — the saturation probe.
    """
    if connections < 1:
        raise ServiceError(f"connections must be >= 1, got {connections}")
    started = time.perf_counter()
    stop_at = started + duration
    recorder = _Recorder(started)
    interval = None
    if offered_qps is not None:
        if offered_qps <= 0:
            raise ServiceError(f"offered_qps must be > 0, got {offered_qps}")
        interval = connections * batch / offered_qps
    await asyncio.gather(*[
        _vuser(
            host, port, scenario, recorder, stop_at, interval,
            random.Random(scenario.seed + 7919 * index), batch,
            policy=policy, breaker=breaker,
            client_registry=client_registry,
        )
        for index in range(connections)
    ])
    elapsed = time.perf_counter() - started
    return _step_from_recorder(recorder, offered_qps, elapsed, slo_ms)


async def run_sweep(
    host: str,
    port: int,
    scenario: LoadScenario,
    rates: Sequence[float],
    slo_ms: float = 50.0,
    step_duration: float = 2.0,
    connections: int = 4,
    batch: int = 1,
    warmup: float = 0.5,
    stop_after_breach: int = 2,
    policy: Optional[RetryPolicy] = None,
    breaker: Optional[BreakerConfig] = None,
    client_registry: Optional[MetricsRegistry] = None,
) -> SweepResult:
    """Walk the offered-rate ladder and find the knee.

    The knee is the **highest** rate step whose p99 stays within
    ``slo_ms`` with ≥99.9 % of queries answered OK.  The walk stops
    early after ``stop_after_breach`` consecutive over-SLO steps —
    beyond the knee every step just queues harder.
    """
    if warmup > 0:
        await run_step(host, port, scenario, duration=warmup,
                       connections=connections, batch=batch)
    steps: List[StepResult] = []
    knee: Optional[StepResult] = None
    breaches = 0
    for rate in rates:
        step = await run_step(
            host, port, scenario,
            duration=step_duration,
            connections=connections,
            offered_qps=float(rate),
            slo_ms=slo_ms,
            batch=batch,
            policy=policy,
            breaker=breaker,
            client_registry=client_registry,
        )
        steps.append(step)
        if step.within_slo:
            breaches = 0
            if knee is None or step.achieved_qps > knee.achieved_qps:
                knee = step
        else:
            breaches += 1
            if breaches >= stop_after_breach:
                break
    return SweepResult(steps=steps, slo_ms=slo_ms, knee=knee)


async def run_soak(
    host: str,
    port: int,
    scenario: LoadScenario,
    duration: float = 60.0,
    connections: int = 4,
    offered_qps: Optional[float] = None,
    rss_pids: Sequence[int] = (),
    churn_every: float = 5.0,
    slam_size: int = 512,
    batch: int = 1,
) -> SoakResult:
    """Hold load for ``duration`` seconds with churn and window-0 slams.

    Churn: every ``churn_every`` seconds one extra short-lived vuser
    connects, works briefly, and disconnects — the connection-lifecycle
    path stays hot.  Slams: once per quartile a client fires a
    ``slam_size`` burst with ``window=0`` (everything in flight at
    once), exercising the admission queue / OVERLOADED path mid-soak.
    RSS is sampled from ``rss_pids`` after warmup and again at the end.
    """
    started = time.perf_counter()
    stop_at = started + duration
    recorder = _Recorder(started)
    reconnects = 0
    slams = 0

    async def _churner() -> None:
        nonlocal reconnects
        rng = random.Random(scenario.seed ^ 0xC0FFEE)
        while time.perf_counter() + churn_every / 2 < stop_at:
            await asyncio.sleep(churn_every)
            if time.perf_counter() >= stop_at:
                break
            lifetime = min(1.0, churn_every / 2)
            try:
                await _vuser(
                    host, port, scenario, recorder,
                    time.perf_counter() + lifetime, None, rng, batch,
                )
                reconnects += 1
            except (ServiceError, OSError):  # pragma: no cover - best effort
                pass

    async def _slammer() -> None:
        nonlocal slams
        rng = random.Random(scenario.seed ^ 0x51A117)
        quarter = duration / 4.0
        client = RouteServiceClient(host, port, d=scenario.d)
        try:
            for quartile in range(4):
                due = started + quartile * quarter + quarter / 2
                delay = due - time.perf_counter()
                if delay > 0:
                    await asyncio.sleep(delay)
                if time.perf_counter() >= stop_at:
                    break
                pairs = scenario.pairs(rng, slam_size)
                try:
                    await client.query_many(
                        pairs,
                        directed=scenario.directed,
                        want_path=scenario.want_path,
                        window=0,
                        reconnect=4,
                    )
                    slams += 1
                except (ServiceError, OSError):  # pragma: no cover
                    pass
        finally:
            await client.close()

    interval = None
    if offered_qps is not None and offered_qps > 0:
        interval = connections * batch / offered_qps
    vusers = [
        _vuser(
            host, port, scenario, recorder, stop_at, interval,
            random.Random(scenario.seed + 104729 * index), batch,
        )
        for index in range(connections)
    ]
    # Sample RSS once load is flowing, not at cold start: page-cache
    # warmup in the first seconds would otherwise read as "drift".
    rss_first: Optional[int] = None

    async def _rss_probe() -> None:
        nonlocal rss_first
        await asyncio.sleep(min(2.0, duration / 10.0))
        rss_first = fleet_rss_bytes(rss_pids)

    await asyncio.gather(*vusers, _churner(), _slammer(), _rss_probe())
    elapsed = time.perf_counter() - started
    rss_last = fleet_rss_bytes(rss_pids)

    # Quartile latencies from completion stamps: elapsed time, not
    # sample count, defines the quartiles, so a slowdown late in the
    # soak cannot hide by answering fewer queries.
    buckets: List[List[float]] = [[], [], [], []]
    for latency, stamp in zip(recorder.latencies, recorder.stamps):
        quartile = min(3, int(4.0 * stamp / max(elapsed, 1e-9)))
        buckets[quartile].append(latency)
    quartile_p99 = [
        _percentile(sorted(bucket), 0.99) * 1e3 for bucket in buckets
    ]
    return SoakResult(
        duration=elapsed,
        queries=recorder.ok + recorder.errors,
        ok=recorder.ok,
        errors=recorder.errors,
        failures=recorder.failures,
        quartile_p99_ms=quartile_p99,
        rss_first_bytes=rss_first,
        rss_last_bytes=rss_last,
        reconnects=reconnects,
        slams=slams,
    )


# ----------------------------------------------------------------------
# Blocking wrappers (benches, CLI)
# ----------------------------------------------------------------------


def measure_step(host: str, port: int, scenario: LoadScenario,
                 **kwargs) -> StepResult:
    """Blocking :func:`run_step`."""
    return asyncio.run(run_step(host, port, scenario, **kwargs))


def measure_sweep(host: str, port: int, scenario: LoadScenario,
                  rates: Sequence[float], **kwargs) -> SweepResult:
    """Blocking :func:`run_sweep`."""
    return asyncio.run(run_sweep(host, port, scenario, rates, **kwargs))


def measure_soak(host: str, port: int, scenario: LoadScenario,
                 **kwargs) -> SoakResult:
    """Blocking :func:`run_soak`."""
    return asyncio.run(run_soak(host, port, scenario, **kwargs))
