"""Tiered route-query resolution: table → cache/planner → batch.

One :class:`RouteQueryEngine` serves a single DG(d, k) in both
orientations and picks the cheapest tier that can answer:

1. **Compiled table** — when a :class:`~repro.core.tables.
   CompiledRouteTable` of matching orientation is attached (compiled
   in-process or mmap-loaded from a ``compile-tables`` artifact), a
   distance is one byte read and a path is one byte read per hop.
2. **Lazy shards** — when a :class:`~repro.core.shards.
   ShardedRouteTable` is attached instead (big k, where the full O(N²)
   table cannot exist), destinations whose prefix group is resident get
   the same O(1) byte reads; cold destinations fall through to the
   planner while the shard compiles in the background under the byte
   budget.
3. **Cache-backed planner** — otherwise :func:`repro.core.routing.route`
   plans Algorithm 1/2 paths through the PR-1
   :class:`~repro.core.routing.RouteCache`, so steady-state repeats are
   amortised.
4. **One-to-many batch** — distance-only queries that the server's
   micro-batcher coalesced by destination are answered in one sweep:
   undirected groups build the destination's suffix automaton once
   (:func:`repro.core.batch.undirected_distances_many`, valid because
   the undirected distance is symmetric), directed groups hoist the
   :class:`~repro.core.packed.PackedSpace` affix machinery.

Per-tier counters land in the shared metrics registry so the ``STATS``
frame shows where traffic is actually being served.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.batch import undirected_distances_many
from repro.core.packed import PackedSpace
from repro.core.routing import Path, RouteCache, route
from repro.core.shards import ShardedRouteTable
from repro.core.tables import CompiledRouteTable
from repro.core.word import WordTuple, validate_parameters
from repro.exceptions import ServiceError
from repro.service.metrics import MetricsRegistry


class RouteQueryEngine:
    """Resolve (source, destination) queries for one DG(d, k).

    ``table`` may be attached at construction or later via
    :meth:`attach_table`; ``cache_size=0`` disables the planner cache
    (every query re-plans — the bench's "uncached ``route()``" leg).

    >>> engine = RouteQueryEngine(2, 3)
    >>> distance, path = engine.resolve(
    ...     (0, 0, 1), (1, 1, 1), directed=False, want_path=True)
    >>> distance, [str(step) for step in path]
    (2, ['L1', 'L1'])
    """

    def __init__(
        self,
        d: int,
        k: int,
        table: Optional[CompiledRouteTable] = None,
        cache_size: int = 4096,
        use_wildcards: bool = False,
        registry: Optional[MetricsRegistry] = None,
        shards: Optional[ShardedRouteTable] = None,
    ) -> None:
        validate_parameters(d, k)
        self.d = d
        self.k = k
        self.use_wildcards = use_wildcards
        self.cache = RouteCache(maxsize=cache_size) if cache_size > 0 else None
        self.registry = registry if registry is not None else MetricsRegistry()
        self.table: Optional[CompiledRouteTable] = None
        self.shards: Optional[ShardedRouteTable] = None
        self.space = PackedSpace(d, k)
        if table is not None:
            self.attach_table(table)
        if shards is not None:
            self.attach_shards(shards)

    def attach_table(self, table: CompiledRouteTable) -> None:
        """Serve matching-orientation queries from ``table`` from now on."""
        if (table.d, table.k) != (self.d, self.k):
            raise ServiceError(
                f"table is for DG({table.d},{table.k}), engine serves "
                f"DG({self.d},{self.k})"
            )
        self.table = table

    def attach_shards(self, shards: ShardedRouteTable) -> None:
        """Serve matching-orientation queries from the lazy shard tier.

        Consulted after the full table (if any) and before the planner;
        cold shard groups fall through to the planner, so attaching
        shards never blocks a query on a compile.
        """
        if (shards.d, shards.k) != (self.d, self.k):
            raise ServiceError(
                f"shards are for DG({shards.d},{shards.k}), engine serves "
                f"DG({self.d},{self.k})"
            )
        self.shards = shards

    def _table_for(self, directed: bool) -> Optional[CompiledRouteTable]:
        table = self.table
        if table is not None and table.directed == directed:
            return table
        return None

    def _shards_for(self, directed: bool) -> Optional[ShardedRouteTable]:
        shards = self.shards
        if shards is not None and shards.directed == directed:
            return shards
        return None

    def has_table(self, directed: bool) -> bool:
        """True when the O(1) tier can answer ``directed`` queries."""
        return self._table_for(directed) is not None

    # -- single-query tiers ---------------------------------------------

    def resolve(
        self,
        source: WordTuple,
        destination: WordTuple,
        directed: bool,
        want_path: bool,
    ) -> Tuple[int, Optional[Path]]:
        """Answer one query: ``(distance, path-or-None)``.

        Raises :class:`~repro.exceptions.DeBruijnError` subclasses on
        invalid words; the server maps those to ``ERROR`` frames.
        """
        table = self._table_for(directed)
        if table is not None:
            self.registry.inc("engine.table_lookups")
            space = table.space
            px = space.pack_checked(source)
            py = space.pack_checked(destination)
            distance = table.distance_packed(px, py)
            if not want_path:
                return distance, None
            path = [
                _STEP_OF_ACTION[table.d][action]
                for action in table.path_actions(px, py)
            ]
            return distance, path
        shards = self._shards_for(directed)
        if shards is not None:
            space = shards.space
            px = space.pack_checked(source)
            py = space.pack_checked(destination)
            answer = shards.resolve_packed(px, py, want_path)
            if answer is not None:
                self.registry.inc("engine.shard_hits")
                distance, actions = answer
                if not want_path:
                    return distance, None
                return distance, [
                    _STEP_OF_ACTION[shards.d][action] for action in actions
                ]
            self.registry.inc("engine.shard_fallbacks")
        self.registry.inc("engine.planned")
        path = route(
            source,
            destination,
            self.d,
            directed=directed,
            use_wildcards=self.use_wildcards,
            cache=self.cache,
        )
        return len(path), (path if want_path else None)

    # -- batch tier ------------------------------------------------------

    def resolve_distances(
        self,
        destination: WordTuple,
        sources: Sequence[WordTuple],
        directed: bool,
    ) -> List[int]:
        """Distances from each source to one shared ``destination``.

        The micro-batcher's flush path.  With a matching table it is a
        row of byte reads; otherwise one shared structure per flush
        (suffix automaton / packed space) replaces per-query planning.
        """
        table = self._table_for(directed)
        if table is not None:
            self.registry.inc("engine.table_lookups", len(sources))
            space = table.space
            py = space.pack_checked(destination)
            return [
                table.distance_packed(space.pack_checked(s), py) for s in sources
            ]
        shards = self._shards_for(directed)
        if shards is not None:
            space = shards.space
            py = space.pack_checked(destination)
            # One reference covers the whole flush: eviction mid-batch
            # cannot split the answers across two shard generations.
            shard = shards.shard_for(py)
            if shard is not None:
                self.registry.inc("engine.shard_hits", len(sources))
                return [
                    shard.distance_packed(space.pack_checked(s), py)
                    for s in sources
                ]
            self.registry.inc("engine.shard_fallbacks", len(sources))
        self.registry.inc("engine.batched", len(sources))
        self.registry.inc("engine.batch_flushes")
        if directed:
            space = self.space
            py = space.pack_checked(destination)
            return [
                space.directed_distance(space.pack_checked(s), py)
                for s in sources
            ]
        # Undirected distance is symmetric (Theorem 2), so one automaton
        # of the shared destination answers the whole group.
        return undirected_distances_many(destination, sources)

    # -- accounting ------------------------------------------------------

    def stats(self) -> dict:
        """Engine-tier counters plus the planner cache's live counters."""
        if self.cache is not None:
            cache_stats = self.cache.stats()
            self.registry.set_counter("engine.cache_hits", int(cache_stats["hits"]))
            self.registry.set_counter(
                "engine.cache_misses", int(cache_stats["misses"])
            )
            self.registry.set_counter(
                "engine.cache_entries", int(cache_stats["entries"])
            )
        self.registry.set_counter(
            "engine.table_attached", 0 if self.table is None else 1
        )
        self.registry.set_counter(
            "engine.shards_attached", 0 if self.shards is None else 1
        )
        if self.shards is not None:
            for name, value in self.shards.stats().items():
                self.registry.set_counter(f"shards.{name}", int(value))
        return self.registry.snapshot()


@dataclass(frozen=True)
class EngineSpec:
    """A plain-data recipe for building one :class:`RouteQueryEngine`.

    The multi-worker supervisor forks one process per core and each
    worker must build its *own* engine — live objects cannot cross an
    exec boundary, and even under ``fork`` every worker should mmap the
    compiled table file itself so the only shared state is the kernel
    page cache.  A spec captures everything ``serve`` knows how to
    assemble (table path / in-process compile / lazy shards / bare
    planner) as picklable values; :meth:`build` turns it into an engine
    wherever it lands.
    """

    d: int
    k: int
    table_path: Optional[str] = None  #: mmap-load this compiled table
    compile_table: bool = False  #: compile the undirected table in-process
    shards: bool = False  #: attach the lazy sharded tier instead
    shard_byte_budget: int = 512 << 20
    shard_rows: Optional[int] = None
    shard_dir: Optional[str] = None
    shard_threshold: int = 1
    kernel: str = "auto"  #: BFS engine for compiles ("auto"/"array"/"python")
    cache_size: int = 4096
    use_wildcards: bool = False

    def build(
        self, registry: Optional[MetricsRegistry] = None
    ) -> "RouteQueryEngine":
        """Construct the engine this spec describes (see class docs)."""
        table = None
        shard_table = None
        if self.table_path is not None:
            table = CompiledRouteTable.load(self.table_path)
            if (table.d, table.k) != (self.d, self.k):
                raise ServiceError(
                    f"{self.table_path} holds DG({table.d},{table.k}), "
                    f"spec wants DG({self.d},{self.k})"
                )
        elif self.compile_table:
            table = CompiledRouteTable.compile(
                self.d, self.k, kernel=self.kernel
            )
        elif self.shards:
            shard_table = ShardedRouteTable(
                self.d,
                self.k,
                byte_budget=self.shard_byte_budget,
                rows_per_shard=self.shard_rows,
                cache_dir=self.shard_dir,
                kernel=self.kernel,
                compile_threshold=self.shard_threshold,
            )
        return RouteQueryEngine(
            self.d,
            self.k,
            table=table,
            cache_size=self.cache_size,
            use_wildcards=self.use_wildcards,
            registry=registry,
            shards=shard_table,
        )


def build_engine(spec: EngineSpec) -> RouteQueryEngine:
    """Module-level :meth:`EngineSpec.build` (a picklable fork target)."""
    return spec.build()


def _steps_by_action(d: int):
    from repro.core.routing import step_from_action

    return [step_from_action(action, d) for action in range(2 * d)]


class _ActionSteps(dict):
    """Lazy per-``d`` memo of action byte → RoutingStep (tiny, immortal)."""

    def __missing__(self, d: int):
        steps = _steps_by_action(d)
        self[d] = steps
        return steps


_STEP_OF_ACTION = _ActionSteps()
