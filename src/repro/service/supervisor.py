"""Multi-core front end: a worker pool over one shared compiled table.

The asyncio :class:`~repro.service.server.RouteQueryServer` saturates a
single CPU long before the O(1) table tier does — event-loop and
frame-codec work, not routing, is the bottleneck (E21).  This module
scales the service across cores with the classic shared-nothing recipe:

* **Fork-per-core workers.**  :class:`ServiceSupervisor` forks ``N``
  worker processes; each builds its *own*
  :class:`~repro.service.engine.RouteQueryEngine` from an
  :class:`~repro.service.engine.EngineSpec` — mmap-loading the same
  compiled table file (and sharing a shard cache dir), so the only
  cross-worker state is the kernel page cache.  No locks, no shared
  interpreter, no GIL contention.
* **``SO_REUSEPORT`` listeners.**  Every worker binds the same
  ``host:port`` with ``SO_REUSEPORT`` and the kernel spreads incoming
  connections across them.  Where the option is unavailable the
  supervisor falls back to binding one listening socket itself and
  letting every forked worker accept from it (``listener="shared"``).
* **Shared-nothing metrics, merged on demand.**  Each worker keeps its
  own :class:`~repro.service.metrics.MetricsRegistry` (no cross-process
  locks on the hot path).  A ``STATS`` frame landing on any worker is
  answered fleet-wide: the worker asks the supervisor over its control
  channel (a unix socket), the supervisor collects every worker's
  snapshot and merges counters and latency histograms bucket-wise
  (:meth:`~repro.service.metrics.MetricsRegistry.merge`), so one frame
  reports true fleet p50/p95/p99.
* **Lifecycle.**  ``SIGTERM`` → graceful drain (every worker stops
  accepting, answers its queue, then exits); a crashed worker
  (``kill -9``, OOM, bug) is respawned with the same index under a
  restart budget.

:class:`SupervisorThread` wraps the asyncio supervisor for synchronous
callers (benches, tests) the same way ``_LiveServer`` wraps the single-
process server.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import signal
import socket
import tempfile
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

from repro.exceptions import ServiceError
from repro.service.engine import EngineSpec, RouteQueryEngine
from repro.service.metrics import MetricsRegistry
from repro.service.server import RouteQueryServer, ServerConfig

#: Listener strategies (see :func:`resolve_listener`).
LISTENER_MODES = ("auto", "reuseport", "shared")


def reuseport_supported(host: str = "127.0.0.1") -> bool:
    """True when two sockets can actually share ``host:0`` via SO_REUSEPORT."""
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    first = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    second = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        first.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        first.bind((host, 0))
        second.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        second.bind((host, first.getsockname()[1]))
        return True
    except OSError:
        return False
    finally:
        first.close()
        second.close()


def resolve_listener(mode: str, host: str) -> str:
    """Resolve ``"auto"`` to the strategy this platform supports."""
    if mode not in LISTENER_MODES:
        raise ServiceError(
            f"unknown listener mode {mode!r}; pick one of {LISTENER_MODES}"
        )
    if mode != "auto":
        return mode
    return "reuseport" if reuseport_supported(host) else "shared"


@dataclass
class SupervisorConfig:
    """Tunables for one :class:`ServiceSupervisor`."""

    workers: int = 2  #: worker processes to keep alive
    host: str = "127.0.0.1"
    port: int = 0  #: 0 claims an ephemeral port shared by every worker
    listener: str = "auto"  #: "reuseport", "shared", or auto-detect
    max_restarts: int = 3  #: crashed-worker respawns before giving up
    startup_timeout: float = 30.0  #: seconds to wait for worker hellos
    drain_timeout: float = 10.0  #: seconds workers get to drain on stop
    stats_timeout: float = 2.0  #: per-aggregation snapshot collection cap
    #: Seconds between liveness pings over the control channel; 0
    #: disables the probe.  A crashed worker is caught by its process
    #: sentinel, but a *hung* worker (stuck event loop, SIGSTOP,
    #: runaway C call) keeps its pid alive and its socket open — only
    #: the missing pongs give it away.
    heartbeat_interval: float = 2.0
    #: Seconds without a pong before a live worker is declared hung,
    #: SIGKILLed, and respawned under the same ``max_restarts`` budget
    #: as crash respawns (``supervisor.hung_recycles``).
    heartbeat_timeout: float = 10.0
    server: ServerConfig = field(default_factory=ServerConfig)


class _WorkerLink:
    """Supervisor-side state for one worker's control connection."""

    __slots__ = ("reader", "writer", "index", "pid", "generation",
                 "pending", "next_seq", "last_pong", "recycling")

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer
        self.index = -1
        self.pid = 0
        self.generation = 0
        self.pending: Dict[int, "asyncio.Future[dict]"] = {}
        self.next_seq = 0
        self.last_pong = 0.0  #: loop time of the last heartbeat pong
        self.recycling = False  #: already SIGKILLed as hung, await reap

    def send(self, message: dict) -> None:
        self.writer.write(json.dumps(message).encode("utf-8") + b"\n")


class ServiceSupervisor:
    """Fork, monitor, aggregate, and drain a route-query worker pool.

    ``engine_spec`` describes the engine every worker builds after the
    fork; ``engine_factory`` (tests, exotic setups) overrides it with an
    arbitrary zero-argument callable — under the ``fork`` start method a
    closure over live objects works and copy-on-write shares them.

    Lifecycle mirrors :class:`RouteQueryServer`: ``await start()``
    returns the shared port, ``await stop()`` drains the fleet.
    """

    def __init__(
        self,
        engine_spec: Optional[EngineSpec] = None,
        config: Optional[SupervisorConfig] = None,
        engine_factory: Optional[Callable[[], RouteQueryEngine]] = None,
    ) -> None:
        if (engine_spec is None) == (engine_factory is None):
            raise ServiceError(
                "give exactly one of engine_spec or engine_factory"
            )
        self.spec = engine_spec
        self.factory = engine_factory
        self.config = config if config is not None else SupervisorConfig()
        if self.config.workers < 1:
            raise ServiceError(
                f"worker count must be >= 1, got {self.config.workers}"
            )
        self.port: Optional[int] = None
        self.listener_mode: Optional[str] = None
        self.restarts_used = 0
        self.workers_lost = 0  #: crashes past the restart budget
        self.hung_recycles = 0  #: heartbeat-detected hangs -> SIGKILL
        self.escalations = 0  #: second-SIGTERM hard kills of stragglers
        self.final_snapshot: Optional[dict] = None
        self._procs: Dict[int, multiprocessing.process.BaseProcess] = {}
        self._generations: Dict[int, int] = {}
        self._links: Dict[int, _WorkerLink] = {}
        self._hello_waiters: Dict[int, "asyncio.Future[None]"] = {}
        self._placeholder: Optional[socket.socket] = None
        self._shared_sock: Optional[socket.socket] = None
        self._control_server: Optional[asyncio.base_events.Server] = None
        self._control_dir: Optional[str] = None
        self._control_path: Optional[str] = None
        self._draining = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._heartbeat_task: Optional[asyncio.Task] = None

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> int:
        """Claim the port, start the control channel, fork the fleet."""
        self._loop = asyncio.get_running_loop()
        config = self.config
        self.listener_mode = resolve_listener(config.listener, config.host)
        if self.listener_mode == "reuseport":
            # A bound, never-listening placeholder claims the port number
            # for the supervisor's lifetime.  It is invisible to incoming
            # SYNs (only listening sockets join the SO_REUSEPORT group),
            # so it cannot swallow connections — it just stops another
            # process from stealing the port between worker restarts.
            self._placeholder = socket.socket(
                socket.AF_INET, socket.SOCK_STREAM
            )
            self._placeholder.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
            )
            self._placeholder.bind((config.host, config.port))
            self.port = self._placeholder.getsockname()[1]
        else:
            # Fallback: one listening socket, accepted from by every
            # forked worker (thundering herd, but correct everywhere).
            self._shared_sock = socket.socket(
                socket.AF_INET, socket.SOCK_STREAM
            )
            self._shared_sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
            )
            self._shared_sock.bind((config.host, config.port))
            self._shared_sock.listen(1024)
            self._shared_sock.setblocking(False)
            self.port = self._shared_sock.getsockname()[1]
        self._control_dir = tempfile.mkdtemp(prefix="repro-fleet-")
        self._control_path = os.path.join(self._control_dir, "control.sock")
        self._control_server = await asyncio.start_unix_server(
            self._handle_control, path=self._control_path
        )
        try:
            await asyncio.gather(*[
                self._spawn_worker(index) for index in range(config.workers)
            ])
        except Exception:
            await self.stop()
            raise
        if config.heartbeat_interval > 0:
            self._heartbeat_task = asyncio.create_task(self._heartbeat_loop())
        return self.port

    async def stop(self) -> None:
        """Drain the fleet: final aggregate, SIGTERM, bounded wait."""
        self._draining = True
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except asyncio.CancelledError:
                pass
            self._heartbeat_task = None
        if self._links:
            try:
                self.final_snapshot = await self.aggregate()
            except Exception:
                pass
        for proc in list(self._procs.values()):
            if proc.pid is not None and proc.is_alive():
                try:
                    os.kill(proc.pid, signal.SIGTERM)
                except (ProcessLookupError, OSError):
                    pass
        deadline = (asyncio.get_running_loop().time()
                    + self.config.drain_timeout + 5.0)
        for proc in list(self._procs.values()):
            remaining = deadline - asyncio.get_running_loop().time()
            await self._join_process(proc, max(0.1, remaining))
            if proc.is_alive():  # pragma: no cover - drain-timeout safety
                proc.kill()
                await self._join_process(proc, 5.0)
        self._procs.clear()
        if self._control_server is not None:
            self._control_server.close()
            await self._control_server.wait_closed()
            self._control_server = None
        for link in list(self._links.values()):
            link.writer.close()
        self._links.clear()
        if self._placeholder is not None:
            self._placeholder.close()
            self._placeholder = None
        if self._shared_sock is not None:
            self._shared_sock.close()
            self._shared_sock = None
        if self._control_path and os.path.exists(self._control_path):
            try:
                os.unlink(self._control_path)
            except OSError:  # pragma: no cover
                pass
        if self._control_dir and os.path.isdir(self._control_dir):
            try:
                os.rmdir(self._control_dir)
            except OSError:  # pragma: no cover
                pass

    def escalate(self) -> None:
        """Immediately SIGKILL every still-live worker.

        The second-SIGTERM path: :meth:`stop` drains gracefully and
        waits out ``drain_timeout`` for slow workers, but an operator
        (or init system) sending a *second* SIGTERM means "now" — a
        worker wedged in a handler must not hold the shutdown hostage.
        Safe to call while :meth:`stop` is mid-wait: the kills make the
        pending joins return immediately, and draining mode keeps the
        exit sentinels from respawning anything.
        """
        self._draining = True  # never respawn what we are about to kill
        killed = 0
        for proc in list(self._procs.values()):
            if proc.pid is not None and proc.is_alive():
                try:
                    os.kill(proc.pid, signal.SIGKILL)
                    killed += 1
                except (ProcessLookupError, OSError):  # pragma: no cover
                    pass
        if killed:
            self.escalations += killed

    async def __aenter__(self) -> "ServiceSupervisor":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    async def _join_process(self, proc, timeout: float) -> None:
        """``proc.join`` without blocking the event loop."""
        await asyncio.get_running_loop().run_in_executor(
            None, proc.join, timeout
        )

    # -- workers ---------------------------------------------------------

    def worker_pids(self) -> List[int]:
        """Live worker pids, ordered by worker index."""
        return [proc.pid for _, proc in sorted(self._procs.items())
                if proc.pid is not None and proc.is_alive()]

    async def _spawn_worker(self, index: int) -> None:
        generation = self._generations.get(index, -1) + 1
        self._generations[index] = generation
        worker_config = replace(
            self.config.server,
            host=self.config.host,
            port=self.port,
            reuse_port=(self.listener_mode == "reuseport"),
        )
        hello: "asyncio.Future[None]" = (
            asyncio.get_running_loop().create_future()
        )
        self._hello_waiters[index] = hello
        context = multiprocessing.get_context("fork")
        proc = context.Process(
            target=_worker_main,
            args=(index, generation, self.spec, self.factory, worker_config,
                  self._shared_sock, self._control_path),
            name=f"route-worker-{index}",
        )
        proc.start()
        self._procs[index] = proc
        asyncio.get_running_loop().add_reader(
            proc.sentinel, self._on_worker_exit, index, proc
        )
        try:
            await asyncio.wait_for(hello, timeout=self.config.startup_timeout)
        except asyncio.TimeoutError:
            raise ServiceError(
                f"worker {index} (pid {proc.pid}) never reported ready"
            )
        finally:
            self._hello_waiters.pop(index, None)

    def _on_worker_exit(self, index: int, proc) -> None:
        """Sentinel callback: reap, then respawn under the budget."""
        try:
            asyncio.get_running_loop().remove_reader(proc.sentinel)
        except (ValueError, OSError):  # pragma: no cover
            pass
        if self._procs.get(index) is not proc:  # already replaced
            return
        del self._procs[index]
        self._links.pop(index, None)
        waiter = self._hello_waiters.get(index)
        if waiter is not None and not waiter.done():
            waiter.set_exception(
                ServiceError(f"worker {index} exited during startup")
            )
        if self._draining:
            return
        if self.restarts_used >= self.config.max_restarts:
            self.workers_lost += 1
            return
        self.restarts_used += 1
        asyncio.ensure_future(self._respawn(index))

    async def _respawn(self, index: int) -> None:
        try:
            await self._spawn_worker(index)
        except ServiceError:
            self.workers_lost += 1

    # -- liveness --------------------------------------------------------

    async def _heartbeat_loop(self) -> None:
        """Ping every worker; SIGKILL the ones that stop ponging.

        The kill is all this loop does — the process sentinel then fires
        exactly as it would for a crash, so hung-worker recycling shares
        the ordinary respawn path and its ``max_restarts`` budget.
        """
        config = self.config
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(config.heartbeat_interval)
            if self._draining:
                return
            now = loop.time()
            for index, link in list(self._links.items()):
                if link.recycling:
                    continue
                if link.last_pong == 0.0:
                    link.last_pong = now  # grace: first ping not yet sent
                if now - link.last_pong > config.heartbeat_timeout:
                    proc = self._procs.get(index)
                    if proc is None or proc.pid is None or not proc.is_alive():
                        continue  # crash path owns this worker
                    link.recycling = True
                    self.hung_recycles += 1
                    try:
                        os.kill(proc.pid, signal.SIGKILL)
                    except (ProcessLookupError, OSError):  # pragma: no cover
                        pass
                    continue
                try:
                    link.send({"op": "ping"})
                    await link.writer.drain()
                except (ConnectionError, OSError):  # pragma: no cover
                    pass

    # -- control channel -------------------------------------------------

    async def _handle_control(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        link = _WorkerLink(reader, writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    message = json.loads(line)
                except ValueError:  # pragma: no cover - defensive
                    continue
                op = message.get("op")
                if op == "hello":
                    link.index = int(message["worker"])
                    link.pid = int(message["pid"])
                    link.generation = int(message.get("generation", 0))
                    self._links[link.index] = link
                    waiter = self._hello_waiters.get(link.index)
                    if waiter is not None and not waiter.done():
                        waiter.set_result(None)
                elif op == "snapshot_reply":
                    future = link.pending.pop(int(message["seq"]), None)
                    if future is not None and not future.done():
                        future.set_result({
                            "data": message.get("data", {}),
                            "worker": message.get("worker", {}),
                        })
                elif op == "aggregate_request":
                    asyncio.ensure_future(
                        self._answer_aggregate(link, int(message["seq"]))
                    )
                elif op == "pong":
                    link.last_pong = asyncio.get_running_loop().time()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            if self._links.get(link.index) is link:
                del self._links[link.index]
            for future in link.pending.values():
                if not future.done():
                    future.cancel()
            writer.close()

    async def _answer_aggregate(self, link: _WorkerLink, seq: int) -> None:
        try:
            snapshot = await self.aggregate()
        except Exception as exc:  # pragma: no cover - defensive
            snapshot = {"error": repr(exc)}
        try:
            link.send({"op": "aggregate_reply", "seq": seq, "data": snapshot})
            await link.writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass

    async def _collect_snapshots(self) -> List[dict]:
        """One snapshot per live worker (bounded wait, crash-tolerant)."""
        links = list(self._links.values())
        futures = []
        for link in links:
            link.next_seq += 1
            seq = link.next_seq
            future = asyncio.get_running_loop().create_future()
            link.pending[seq] = future
            link.send({"op": "snapshot_request", "seq": seq})
            futures.append((link, seq, future))
        for link in links:
            try:
                await link.writer.drain()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
        gathered: List[dict] = []
        done, pending = await asyncio.wait(
            [future for _, _, future in futures],
            timeout=self.config.stats_timeout,
        ) if futures else (set(), set())
        for link, seq, future in futures:
            if future in done and not future.cancelled() \
                    and future.exception() is None:
                gathered.append(future.result())
            else:
                future.cancel()
                link.pending.pop(seq, None)
        return gathered

    async def aggregate(self) -> dict:
        """The fleet-wide metrics snapshot served over ``STATS``.

        Counters sum; histograms merge bucket-wise, so the reported
        p50/p95/p99 are quantiles of the union of every worker's
        latency observations.  A ``fleet`` section carries per-worker
        summary rows (pid, generation, queries, replies, p99) plus
        supervision counters.
        """
        wrapped = await self._collect_snapshots()
        merged = MetricsRegistry()
        per_worker = []
        for item in sorted(wrapped, key=lambda w: w.get("worker", {})
                           .get("index", 0)):
            data = item.get("data", {})
            merged.merge(data)
            info = dict(item.get("worker", {}))
            counters = data.get("counters", {})
            latency = data.get("histograms", {}).get(
                "server.latency_seconds", {})
            info["queries"] = int(counters.get("server.queries", 0))
            info["replies"] = int(counters.get("server.replies", 0))
            info["p99_ms"] = float(latency.get("p99", 0.0)) * 1e3
            per_worker.append(info)
        snapshot = merged.snapshot()
        snapshot["counters"]["fleet.workers"] = len(wrapped)
        snapshot["counters"]["fleet.restarts"] = self.restarts_used
        snapshot["counters"]["fleet.workers_lost"] = self.workers_lost
        snapshot["counters"]["supervisor.hung_recycles"] = self.hung_recycles
        snapshot["counters"]["supervisor.escalations"] = self.escalations
        snapshot["fleet"] = {
            "workers": len(wrapped),
            "expected_workers": self.config.workers,
            "listener": self.listener_mode,
            "restarts": self.restarts_used,
            "workers_lost": self.workers_lost,
            "hung_recycles": self.hung_recycles,
            "escalations": self.escalations,
            "per_worker": per_worker,
        }
        return snapshot


# ----------------------------------------------------------------------
# Worker process body
# ----------------------------------------------------------------------


def _worker_main(
    index: int,
    generation: int,
    spec: Optional[EngineSpec],
    factory: Optional[Callable[[], RouteQueryEngine]],
    server_config: ServerConfig,
    shared_sock: Optional[socket.socket],
    control_path: Optional[str],
) -> None:
    """Entry point of one forked worker (runs in the child process)."""
    try:
        asyncio.run(_worker_async(index, generation, spec, factory,
                                  server_config, shared_sock, control_path))
    except KeyboardInterrupt:  # pragma: no cover - CLI ctrl-C race
        pass


async def _worker_async(
    index: int,
    generation: int,
    spec: Optional[EngineSpec],
    factory: Optional[Callable[[], RouteQueryEngine]],
    server_config: ServerConfig,
    shared_sock: Optional[socket.socket],
    control_path: Optional[str],
) -> None:
    loop = asyncio.get_running_loop()
    stop_event = asyncio.Event()
    loop.add_signal_handler(signal.SIGTERM, stop_event.set)
    loop.add_signal_handler(signal.SIGINT, lambda: None)

    engine = factory() if factory is not None else spec.build()
    engine.registry.set_counter("worker.index", index)
    engine.registry.set_counter("worker.generation", generation)
    server = RouteQueryServer(engine, server_config)
    await server.start(listen_socket=shared_sock)

    control: Optional[_WorkerControl] = None
    if control_path is not None:
        control = _WorkerControl(index, generation, server, stop_event)
        await control.connect(control_path)
        server.stats_provider = control.aggregate
    try:
        await stop_event.wait()
    finally:
        await server.stop()
        if control is not None:
            await control.close()
        shards = engine.shards
        if shards is not None:
            shards.close()


class _WorkerControl:
    """Worker-side control channel: snapshots out, aggregates in."""

    def __init__(self, index: int, generation: int,
                 server: RouteQueryServer,
                 stop_event: asyncio.Event) -> None:
        self.index = index
        self.generation = generation
        self.server = server
        self.stop_event = stop_event
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self._pending: Dict[int, "asyncio.Future[dict]"] = {}
        self._next_seq = 0
        self._reader_task: Optional[asyncio.Task] = None

    async def connect(self, path: str) -> None:
        self.reader, self.writer = await asyncio.open_unix_connection(path)
        self._send({"op": "hello", "worker": self.index,
                    "pid": os.getpid(), "generation": self.generation})
        await self.writer.drain()
        self._reader_task = asyncio.ensure_future(self._read_loop())

    def _send(self, message: dict) -> None:
        self.writer.write(json.dumps(message).encode("utf-8") + b"\n")

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self.reader.readline()
                if not line:
                    break
                message = json.loads(line)
                op = message.get("op")
                if op == "snapshot_request":
                    self._send({
                        "op": "snapshot_reply",
                        "seq": message["seq"],
                        "data": self.server.snapshot(),
                        "worker": {"index": self.index,
                                   "pid": os.getpid(),
                                   "generation": self.generation},
                    })
                    await self.writer.drain()
                elif op == "aggregate_reply":
                    future = self._pending.pop(int(message["seq"]), None)
                    if future is not None and not future.done():
                        future.set_result(message.get("data", {}))
                elif op == "ping":
                    # Liveness probe: answering requires a scheduling
                    # turn of this event loop, which is exactly the
                    # property the supervisor wants to verify.
                    self._send({"op": "pong", "worker": self.index})
                    await self.writer.drain()
        except (ConnectionResetError, BrokenPipeError, ValueError):
            pass
        finally:
            # Control channel gone means the supervisor died: drain and
            # exit instead of lingering as an orphan listener.
            self.stop_event.set()
            for future in self._pending.values():
                if not future.done():
                    future.cancel()

    async def aggregate(self) -> dict:
        """Ask the supervisor for the merged fleet snapshot."""
        if self.writer is None or self.writer.is_closing():
            raise ServiceError("control channel is down")
        self._next_seq += 1
        seq = self._next_seq
        future: "asyncio.Future[dict]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending[seq] = future
        self._send({"op": "aggregate_request", "seq": seq})
        await self.writer.drain()
        try:
            return await asyncio.wait_for(future, timeout=5.0)
        finally:
            self._pending.pop(seq, None)

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
        if self.writer is not None:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass


# ----------------------------------------------------------------------
# Synchronous wrapper (benches, tests, scripts)
# ----------------------------------------------------------------------


class SupervisorThread:
    """A live worker fleet on a private event-loop thread.

    The synchronous twin of :class:`ServiceSupervisor` for benchmark and
    test code: construct it, talk to ``port`` over TCP with the blocking
    client helpers, then :meth:`close`.  ``aggregate()`` and
    :meth:`kill_worker` bridge into the loop thread-safely.
    """

    def __init__(
        self,
        engine_spec: Optional[EngineSpec] = None,
        config: Optional[SupervisorConfig] = None,
        engine_factory: Optional[Callable[[], RouteQueryEngine]] = None,
    ) -> None:
        self.supervisor = ServiceSupervisor(
            engine_spec, config, engine_factory=engine_factory
        )
        self.port: int = 0
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        timeout = (self.supervisor.config.startup_timeout
                   * max(1, self.supervisor.config.workers) + 30)
        if not self._ready.wait(timeout=timeout):  # pragma: no cover
            raise ServiceError("supervisor failed to start in time")
        if self._startup_error is not None:
            raise self._startup_error

    def _run(self) -> None:
        async def _main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            try:
                self.port = await self.supervisor.start()
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                return
            self._ready.set()
            await self._stop.wait()
            await self.supervisor.stop()

        asyncio.run(_main())

    def aggregate(self, timeout: float = 15.0) -> dict:
        """Fleet-wide snapshot, fetched through the supervisor directly."""
        future = asyncio.run_coroutine_threadsafe(
            self.supervisor.aggregate(), self._loop
        )
        return future.result(timeout=timeout)

    def worker_pids(self) -> List[int]:
        """Live worker pids, ordered by worker index."""
        return self.supervisor.worker_pids()

    def kill_worker(self, pid: int, sig: int = signal.SIGKILL) -> None:
        """Hard-kill one worker (crash-respawn scenarios)."""
        os.kill(pid, sig)

    def escalate(self) -> None:
        """Thread-safe :meth:`ServiceSupervisor.escalate` (second SIGTERM)."""
        self._loop.call_soon_threadsafe(self.supervisor.escalate)

    def wait_for_workers(self, count: int, timeout: float = 30.0) -> bool:
        """Block until ``count`` workers are alive (respawn settling)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if len(self.worker_pids()) >= count:
                return True
            time.sleep(0.05)
        return False

    def close(self) -> None:
        """Drain the fleet and join the loop thread."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop.set)
            self._thread.join(timeout=60)

    def __enter__(self) -> "SupervisorThread":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
