"""Wire-level fault injection: a chaos TCP proxy for the route service.

E19/E20 proved the *simulated* network degrades gracefully under faults;
this module brings the same discipline to the real serving path.  A
:class:`ChaosProxy` sits between a client (or loadgen) and a server (or
supervisor fleet) as an ordinary TCP forwarder, and injects faults
drawn from a seeded, replayable :class:`FaultPlan`:

* **latency / jitter** — every forwarded chunk is delayed by
  ``latency_ms`` plus a uniform jitter draw;
* **bandwidth cap** — chunks are re-sliced and paced so a direction
  never exceeds ``bandwidth_kbps``;
* **mid-frame resets** — a fated connection is aborted (RST via
  ``SO_LINGER 0`` where possible) after a seeded byte offset, which by
  construction usually lands *inside* a length-prefixed frame;
* **corruption / truncation** — per-chunk Bernoulli draws flip a byte
  or drop the chunk's tail, exercising the decoder's quarantine path on
  both ends of the wire;
* **black-hole partition** — between :meth:`ChaosProxy.partition` and
  :meth:`ChaosProxy.heal` (or a timed window from the plan) all bytes
  are silently discarded and new connections hang, exactly like a
  dropped route: no RST, no FIN, just darkness.  Healing resets the
  desynchronised survivors so clients reconnect onto clean streams;
* **slow-loris trickle** — a fated connection forwards one byte at a
  time with a pause between writes, starving the peer's frame decoder
  without ever going idle.

Faults compose per-direction (``c2s``, ``s2c`` or both) and
per-connection: which connections are fated for reset/trickle, at what
byte offset, and every per-chunk draw all come from
``random.Random(f"{seed}:{conn}:{direction}")`` streams, so a plan
replays the same *decisions* for the same seed.  (Chunk boundaries are
the kernel's to choose, so replay is decision-level, not byte-level.)
Every injected event increments a ``proxy.*`` counter in a
:class:`~repro.service.metrics.MetricsRegistry`.

:class:`ChaosProxyThread` runs the proxy on a daemon thread for tests,
benchmarks and the ``debruijn-routing chaosproxy`` CLI.
"""

from __future__ import annotations

import asyncio
import random
import socket
import struct
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ServiceError
from repro.service.metrics import MetricsRegistry

__all__ = [
    "FaultPlan",
    "ChaosProxy",
    "ChaosProxyThread",
    "DatagramFaultPlan",
    "UdpChaosProxy",
    "DIRECTIONS",
]

#: Valid values for :attr:`FaultPlan.directions`.
DIRECTIONS = ("both", "c2s", "s2c")

_READ_CHUNK = 1 << 16


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, replayable description of what the proxy should break.

    All rates are probabilities in ``[0, 1]``.  ``reset_rate`` and
    ``trickle_rate`` are drawn once per connection (a connection is
    *fated* or not); ``corrupt_rate`` and ``truncate_rate`` are drawn
    per forwarded chunk.  A zero/None field disables that fault, so
    ``FaultPlan(seed="s")`` is a transparent proxy.
    """

    seed: str = "chaos"
    #: Added latency per forwarded chunk, milliseconds.
    latency_ms: float = 0.0
    #: Uniform extra jitter on top of ``latency_ms``, milliseconds.
    jitter_ms: float = 0.0
    #: Per-direction bandwidth cap; ``0`` disables the cap.
    bandwidth_kbps: float = 0.0
    #: Probability a connection is fated for a mid-stream abort.
    reset_rate: float = 0.0
    #: Fated resets fire after a byte offset drawn from this range.
    reset_after_bytes: Tuple[int, int] = (64, 4096)
    #: Per-chunk probability of flipping one byte.
    corrupt_rate: float = 0.0
    #: Per-chunk probability of dropping the tail of the chunk.
    truncate_rate: float = 0.0
    #: Probability a connection is fated for slow-loris forwarding.
    trickle_rate: float = 0.0
    #: Pause between single-byte writes on a trickled connection.
    trickle_interval: float = 0.05
    #: Seconds after proxy start at which a timed partition begins.
    partition_at: Optional[float] = None
    #: Seconds the timed partition lasts before the proxy heals.
    partition_duration: float = 1.0
    #: Which direction(s) faults apply to: ``both``, ``c2s`` or ``s2c``.
    directions: str = "both"

    def __post_init__(self) -> None:
        if self.directions not in DIRECTIONS:
            raise ValueError(
                f"directions must be one of {DIRECTIONS}, got {self.directions!r}"
            )
        for field in ("reset_rate", "corrupt_rate", "truncate_rate", "trickle_rate"):
            rate = getattr(self, field)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{field} must be in [0, 1], got {rate}")
        for field in ("latency_ms", "jitter_ms", "bandwidth_kbps", "trickle_interval"):
            value = getattr(self, field)
            if value < 0:
                raise ValueError(f"{field} must be non-negative, got {value}")
        lo, hi = self.reset_after_bytes
        if lo < 1 or hi < lo:
            raise ValueError(f"bad reset_after_bytes range: {self.reset_after_bytes}")

    def rng_for(self, conn_index: int, direction: str) -> random.Random:
        """Deterministic stream for one (connection, direction) pair."""
        return random.Random(f"{self.seed}:{conn_index}:{direction}")

    def applies_to(self, direction: str) -> bool:
        """Does this plan inject faults in ``direction``?"""
        return self.directions == "both" or self.directions == direction

    def fate(self, conn_index: int, direction: str) -> "_ConnFate":
        """Draw the per-connection fault decisions.  Pure: same seed,
        same connection index, same fate — this is what makes a
        campaign replayable."""
        rng = self.rng_for(conn_index, direction)
        fated_reset = self.applies_to(direction) and rng.random() < self.reset_rate
        reset_after = rng.randint(*self.reset_after_bytes) if fated_reset else None
        fated_trickle = self.applies_to(direction) and rng.random() < self.trickle_rate
        return _ConnFate(
            rng=rng,
            direction=direction,
            reset_after=reset_after,
            trickle=fated_trickle,
        )


@dataclass
class _ConnFate:
    """Resolved per-(connection, direction) fault state."""

    rng: random.Random
    direction: str
    reset_after: Optional[int]
    trickle: bool
    forwarded: int = 0


class ChaosProxy:
    """Asyncio TCP proxy applying a :class:`FaultPlan` to both pumps.

    ``await start()`` binds the listen socket (ephemeral port by
    default) and returns; :attr:`port` is then routable.  Each accepted
    client connection dials ``upstream_host:upstream_port`` and runs
    two pump tasks (client→server and server→client), each owning the
    fate drawn for its direction.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        plan: Optional[FaultPlan] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.plan = plan or FaultPlan()
        self.host = host
        self.port = port
        self.registry = registry or MetricsRegistry()
        self._server: Optional[asyncio.base_events.Server] = None
        self._conn_index = 0
        self._partitioned = False
        self._partition_event: Optional[asyncio.Event] = None
        self._writers: List[asyncio.StreamWriter] = []
        self._tasks: "List[asyncio.Task]" = []
        self._partition_task: Optional[asyncio.Task] = None
        self._started_at = 0.0

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> int:
        """Bind the listen socket and return the routable port."""
        self._partition_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_client, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = asyncio.get_running_loop().time()
        if self.plan.partition_at is not None:
            self._partition_task = asyncio.create_task(self._timed_partition())
        return self.port

    async def stop(self) -> None:
        """Close the listener and abort every live pump."""
        if self._partition_task is not None:
            self._partition_task.cancel()
            self._partition_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()
        for writer in list(self._writers):
            self._abort(writer)
        self._writers.clear()

    async def __aenter__(self) -> "ChaosProxy":
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # partition control

    @property
    def partitioned(self) -> bool:
        return self._partitioned

    def partition(self) -> None:
        """Begin black-holing every byte in both directions."""
        if not self._partitioned:
            self._partitioned = True
            self.registry.inc("proxy.partitions")
            if self._partition_event is not None:
                self._partition_event.clear()

    def heal(self) -> None:
        """End the partition.  Connections that lost bytes into the
        black hole are desynchronised mid-frame, so they are reset
        rather than resumed — clients reconnect onto clean streams,
        which is also what a real routing flap looks like."""
        if self._partitioned:
            self._partitioned = False
            self.registry.inc("proxy.heals")
            if self._partition_event is not None:
                self._partition_event.set()
            for writer in list(self._writers):
                self._abort(writer)
                self.registry.inc("proxy.partition_resets")
            self._writers.clear()

    async def _timed_partition(self) -> None:
        loop = asyncio.get_running_loop()
        delay = self._started_at + (self.plan.partition_at or 0.0) - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        self.partition()
        await asyncio.sleep(self.plan.partition_duration)
        self.heal()

    # ------------------------------------------------------------------
    # data path

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        index = self._conn_index
        self._conn_index += 1
        self.registry.inc("proxy.connections")
        if self._partitioned:
            # New connections during a partition hang in the dark until
            # healed or the client gives up; do not dial upstream.
            self.registry.inc("proxy.blackholed_connects")
            try:
                assert self._partition_event is not None
                waiter = asyncio.ensure_future(self._partition_event.wait())
                eof = asyncio.ensure_future(reader.read(_READ_CHUNK))
                done, pending = await asyncio.wait(
                    {waiter, eof}, return_when=asyncio.FIRST_COMPLETED
                )
                for task in pending:
                    task.cancel()
            finally:
                self._abort(writer)
            return
        try:
            up_reader, up_writer = await asyncio.open_connection(
                self.upstream_host, self.upstream_port
            )
        except OSError:
            self.registry.inc("proxy.upstream_failures")
            self._abort(writer)
            return
        self._writers.append(writer)
        self._writers.append(up_writer)
        pumps = [
            asyncio.create_task(
                self._pump(reader, up_writer, self.plan.fate(index, "c2s"))
            ),
            asyncio.create_task(
                self._pump(up_reader, writer, self.plan.fate(index, "s2c"))
            ),
        ]
        self._tasks.extend(pumps)
        try:
            await asyncio.gather(*pumps, return_exceptions=True)
        finally:
            for task in pumps:
                if task in self._tasks:
                    self._tasks.remove(task)
            for w in (writer, up_writer):
                self._abort(w)
                if w in self._writers:
                    self._writers.remove(w)

    async def _pump(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        fate: _ConnFate,
    ) -> None:
        plan = self.plan
        apply = plan.applies_to(fate.direction)
        try:
            while True:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    break
                if self._partitioned:
                    # Black hole: the bytes simply vanish.
                    self.registry.inc("proxy.blackholed_bytes", len(data))
                    continue
                reset = False
                if apply:
                    data, reset = self._mutate(data, fate)
                    if data:
                        await self._delay(fate)
                if data:
                    await self._write_paced(writer, data, fate)
                    self.registry.inc(f"proxy.bytes_{fate.direction}", len(data))
                if reset:
                    # Abort mid-frame: the peer got the prefix above and
                    # now sees a hard reset instead of the rest.
                    return
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            self._abort(writer)

    def _mutate(self, data: bytes, fate: _ConnFate) -> Tuple[bytes, bool]:
        """Apply per-chunk fault draws.  Returns the (possibly shorter
        or corrupted) bytes to forward plus a reset flag; a set flag
        means the fated byte offset was crossed and the connection must
        be aborted right after the prefix is written."""
        plan, rng = self.plan, fate.rng
        if fate.reset_after is not None and fate.forwarded + len(data) >= fate.reset_after:
            keep = max(0, fate.reset_after - fate.forwarded)
            self.registry.inc("proxy.resets_injected")
            fate.forwarded += keep
            return data[:keep], True
        if plan.truncate_rate and rng.random() < plan.truncate_rate and len(data) > 1:
            cut = rng.randint(1, len(data) - 1)
            self.registry.inc("proxy.truncations")
            self.registry.inc("proxy.bytes_dropped", len(data) - cut)
            data = data[:cut]
        if plan.corrupt_rate and rng.random() < plan.corrupt_rate:
            pos = rng.randrange(len(data))
            flip = rng.randint(1, 255)
            data = data[:pos] + bytes([data[pos] ^ flip]) + data[pos + 1 :]
            self.registry.inc("proxy.bytes_corrupted")
        fate.forwarded += len(data)
        return data, False

    async def _delay(self, fate: _ConnFate) -> None:
        plan = self.plan
        if plan.latency_ms <= 0 and plan.jitter_ms <= 0:
            return
        pause = plan.latency_ms + fate.rng.uniform(0.0, plan.jitter_ms)
        self.registry.inc("proxy.delays_injected")
        await asyncio.sleep(pause / 1000.0)

    async def _write_paced(
        self, writer: asyncio.StreamWriter, data: bytes, fate: _ConnFate
    ) -> None:
        plan = self.plan
        if writer.is_closing():
            raise ConnectionResetError("proxy peer gone")
        if fate.trickle and plan.applies_to(fate.direction):
            self.registry.inc("proxy.trickled_chunks")
            for i in range(len(data)):
                if writer.is_closing():
                    raise ConnectionResetError("proxy peer gone")
                writer.write(data[i : i + 1])
                await writer.drain()
                await asyncio.sleep(plan.trickle_interval)
            return
        if plan.bandwidth_kbps > 0 and plan.applies_to(fate.direction):
            budget = int(plan.bandwidth_kbps * 1024 / 20) or 1  # bytes per 50ms slice
            offset = 0
            while offset < len(data):
                if writer.is_closing():
                    raise ConnectionResetError("proxy peer gone")
                writer.write(data[offset : offset + budget])
                await writer.drain()
                offset += budget
                if offset < len(data):
                    self.registry.inc("proxy.bandwidth_stalls")
                    await asyncio.sleep(0.05)
            return
        writer.write(data)
        await writer.drain()

    @staticmethod
    def _abort(writer: asyncio.StreamWriter) -> None:
        """Hard-close a stream, preferring RST over FIN so resets look
        like real mid-frame network failures, not graceful EOFs."""
        try:
            sock = writer.get_extra_info("socket")
            if sock is not None:
                sock.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
        except OSError:
            pass
        try:
            writer.transport.abort()  # type: ignore[attr-defined]
        except Exception:
            try:
                writer.close()
            except Exception:
                pass

    def snapshot(self) -> Dict[str, object]:
        """The ``proxy.*`` counters as a metrics snapshot."""
        return self.registry.snapshot()


class ChaosProxyThread:
    """Run a :class:`ChaosProxy` on a private event loop thread.

    Mirrors :class:`~repro.service.supervisor.SupervisorThread`: tests
    and benchmarks get a routable ``port`` synchronously and drive
    partitions from plain code.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        plan: Optional[FaultPlan] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        start_timeout: float = 10.0,
    ) -> None:
        self.proxy = ChaosProxy(
            upstream_host, upstream_port, plan=plan, host=host, port=port
        )
        self._loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="chaos-proxy", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(start_timeout):
            self.close()
            raise ServiceError("chaos proxy did not start in time")
        if self._failure is not None:
            raise ServiceError(f"chaos proxy failed to start: {self._failure!r}")

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)

        async def boot() -> None:
            try:
                await self.proxy.start()
            except BaseException as exc:  # noqa: BLE001 - surfaced to caller
                self._failure = exc
            finally:
                self._ready.set()

        self._loop.create_task(boot())
        self._loop.run_forever()

    @property
    def port(self) -> int:
        return self.proxy.port

    @property
    def registry(self) -> MetricsRegistry:
        return self.proxy.registry

    def _call(self, fn, timeout: float = 10.0):
        fut = asyncio.run_coroutine_threadsafe(fn(), self._loop)
        return fut.result(timeout)

    def partition(self) -> None:
        """Thread-safe :meth:`ChaosProxy.partition`."""
        self._loop.call_soon_threadsafe(self.proxy.partition)

    def heal(self) -> None:
        """Thread-safe :meth:`ChaosProxy.heal`."""
        self._loop.call_soon_threadsafe(self.proxy.heal)

    def snapshot(self) -> Dict[str, object]:
        """Thread-safe :meth:`ChaosProxy.snapshot`."""
        return self.proxy.snapshot()

    def close(self) -> None:
        """Stop the proxy and join its event-loop thread."""
        if self._loop.is_closed():
            return
        try:
            if self._ready.is_set() and self._failure is None:
                fut = asyncio.run_coroutine_threadsafe(self.proxy.stop(), self._loop)
                fut.result(10.0)
        except Exception:
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(10.0)
        self._loop.close()

    def __enter__(self) -> "ChaosProxyThread":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# Datagram (membership-port) chaos
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DatagramFaultPlan:
    """Seeded wire faults for a UDP relay (the SWIM membership port).

    Datagram semantics make most TCP faults meaningless (no streams to
    reset or trickle); what remains is exactly what SWIM is built to
    survive: loss, delay, and darkness.  ``drop_rate`` is a per-datagram
    Bernoulli draw; latency/jitter delay the relay of each datagram
    independently (reordering included, as real networks do).
    """

    seed: str = "udp-chaos"
    #: Per-datagram probability of silent loss.
    drop_rate: float = 0.0
    #: Added relay latency per datagram, milliseconds.
    latency_ms: float = 0.0
    #: Uniform extra jitter on top of ``latency_ms``, milliseconds.
    jitter_ms: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_rate <= 1.0:
            raise ValueError(
                f"drop_rate must be in [0, 1], got {self.drop_rate}")
        if self.latency_ms < 0 or self.jitter_ms < 0:
            raise ValueError("latency_ms and jitter_ms must be non-negative")


class _UdpRelayProtocol(asyncio.DatagramProtocol):
    def __init__(self, proxy: "UdpChaosProxy") -> None:
        self._proxy = proxy

    def connection_made(self, transport) -> None:
        self._proxy._transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        self._proxy._relay(data)

    def error_received(self, exc: Exception) -> None:
        pass  # ICMP unreachable from a dead upstream: expected mid-fault


class UdpChaosProxy:
    """A datagram relay in front of one node's membership port.

    Every peer addresses the shadowed node *through* its proxy, so one
    proxy controls everything that node can hear: :meth:`partition`
    black-holes its ingress, and :meth:`block_sender` discards traffic
    from specific origin nodes (``sender_of`` peeks the node id out of
    the datagram) — together the two sides of a bidirectional isolation,
    since the victim's own egress is silenced by blocking it at every
    *other* node's ingress proxy.

    Replies never traverse the proxy: SWIM acks are standalone
    datagrams addressed via the peer map, so an ingress-only relay is a
    complete interposition — no NAT state to desynchronise.
    """

    def __init__(
        self,
        upstream: Tuple[str, int],
        plan: Optional[DatagramFaultPlan] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        sender_of=None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.upstream = upstream
        self.plan = plan if plan is not None else DatagramFaultPlan()
        self.host = host
        self.port = port
        self.registry = registry if registry is not None else MetricsRegistry()
        #: Callable peeking the sender node id from a datagram (None ->
        #: sender blocking disabled).  Must never raise on garbage.
        self.sender_of = sender_of
        self.blocked_senders: set = set()
        self._partitioned = False
        self._transport = None
        self._rng = random.Random(f"{self.plan.seed}:{upstream}")

    async def start(self) -> Tuple[str, int]:
        """Bind the relay socket; returns the address peers should dial."""
        loop = asyncio.get_running_loop()
        transport, _ = await loop.create_datagram_endpoint(
            lambda: _UdpRelayProtocol(self),
            local_addr=(self.host, self.port))
        self._transport = transport
        sockname = transport.get_extra_info("sockname")
        self.port = sockname[1]
        return (sockname[0], self.port)

    # -- fault controls (call from the proxy's loop) ---------------------

    def partition(self) -> None:
        """Black-hole every datagram toward the shadowed node."""
        self._partitioned = True
        self.registry.inc("proxy.partitions")

    def heal(self) -> None:
        """Lift :meth:`partition`; relaying resumes immediately."""
        self._partitioned = False
        self.registry.inc("proxy.heals")

    def block_sender(self, node_id: int) -> None:
        """Discard datagrams whose origin is ``node_id``."""
        self.blocked_senders.add(node_id)

    def unblock_sender(self, node_id: int) -> None:
        """Lift :meth:`block_sender` for ``node_id``."""
        self.blocked_senders.discard(node_id)

    # -- the relay -------------------------------------------------------

    def _relay(self, data: bytes) -> None:
        registry = self.registry
        if self._partitioned:
            registry.inc("proxy.datagrams_blackholed")
            return
        if self.blocked_senders and self.sender_of is not None:
            try:
                sender = self.sender_of(data)
            except Exception:
                sender = None
            if sender in self.blocked_senders:
                registry.inc("proxy.datagrams_blocked")
                return
        plan = self.plan
        rng = self._rng
        if plan.drop_rate > 0 and rng.random() < plan.drop_rate:
            registry.inc("proxy.datagrams_dropped")
            return
        delay = 0.0
        if plan.latency_ms > 0 or plan.jitter_ms > 0:
            delay = (plan.latency_ms
                     + rng.uniform(0.0, plan.jitter_ms)) / 1000.0
        if delay > 0:
            asyncio.get_running_loop().call_later(
                delay, self._forward, data)
        else:
            self._forward(data)

    def _forward(self, data: bytes) -> None:
        transport = self._transport
        if transport is None or transport.is_closing():
            return
        transport.sendto(data, self.upstream)
        self.registry.inc("proxy.datagrams_relayed")

    async def stop(self) -> None:
        """Close the relay socket."""
        if self._transport is not None:
            self._transport.close()
            self._transport = None
