"""Asyncio route-query server: micro-batching, backpressure, drain.

The server answers :mod:`repro.service.protocol` frames for exactly one
DG(d, k) through a :class:`~repro.service.engine.RouteQueryEngine`.
Three production behaviours are structural, not bolted on:

* **Bounded admission** — accepted queries enter a fixed-capacity queue.
  When it is full the connection handler answers *immediately* with an
  ``ERROR/OVERLOADED`` frame instead of buffering without limit: memory
  stays bounded under any burst and clients get an explicit
  backpressure signal they can retry on.  The high-water mark is
  exported as ``server.queue_peak``.
* **Micro-batching** — distance-only queries that the table tier cannot
  answer are coalesced by destination in a :class:`MicroBatcher` and
  flushed when a group reaches ``batch_size`` or its ``batch_deadline``
  expires, whichever comes first.  A flush answers the whole group from
  one shared suffix automaton (see
  :meth:`~repro.service.engine.RouteQueryEngine.resolve_distances`).
* **Graceful drain** — :meth:`RouteQueryServer.stop` stops accepting,
  answers still-queued work (or fails it with ``SHUTTING_DOWN`` after
  ``drain_timeout``), flushes the batcher, and only then closes
  connections.  Nothing accepted is silently dropped.

Latency from admission to reply-write is observed into the
``server.latency_seconds`` histogram; the whole registry snapshot is
served over ``STATS`` frames and by ``debruijn-routing serve
--stats-json``.
"""

from __future__ import annotations

import asyncio
import logging
import socket
from dataclasses import dataclass
from typing import Awaitable, Callable, Dict, List, Optional, Tuple

from repro.exceptions import DeBruijnError, ProtocolError
from repro.service.engine import RouteQueryEngine
from repro.service.metrics import MetricsRegistry
from repro.service.protocol import (
    ErrorCode,
    Frame,
    FrameDecoder,
    FrameType,
    RouteQuery,
    decode_query,
    encode_error,
    encode_reply,
    encode_stats_reply,
)

#: Linear bucket edges for the batch-group-size histogram.
_GROUP_SIZE_BUCKETS = tuple(float(n) for n in range(1, 65))

logger = logging.getLogger(__name__)


@dataclass
class ServerConfig:
    """Tunables for one :class:`RouteQueryServer`."""

    host: str = "127.0.0.1"
    port: int = 0  #: 0 binds an ephemeral port (returned by ``start``)
    max_pending: int = 1024  #: admission-queue capacity (backpressure bound)
    batch_size: int = 32  #: flush a destination group at this size
    batch_deadline: float = 0.002  #: seconds before a partial group flushes
    request_timeout: float = 5.0  #: queue age beyond which requests fail
    drain_timeout: float = 5.0  #: seconds ``stop`` waits for queued work
    reuse_port: bool = False  #: bind with SO_REUSEPORT (multi-worker pool)
    slo_ms: Optional[float] = None  #: count replies slower than this budget
    #: Seconds a connection may take to *finish a started frame*.  An
    #: idle connection (no partial frame buffered) never times out —
    #: healthy pooled clients park for free — but a slow-loris peer
    #: trickling bytes forever inside one frame is quarantined.  None
    #: disables the deadline.
    read_timeout: Optional[float] = None
    #: Hard cap on concurrently open connections; new arrivals beyond
    #: it are closed immediately (``server.conn_rejected``).  None
    #: disables admission control.
    max_connections: Optional[int] = None


@dataclass
class _Pending:
    """One admitted query waiting for the dispatcher."""

    query: RouteQuery
    connection: "_Connection"
    enqueued_at: float


class _Connection:
    """Per-connection state: writer, frame decoder, liveness."""

    __slots__ = ("reader", "writer", "decoder", "closed")

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.decoder = FrameDecoder()
        self.closed = False

    def send(self, payload: bytes) -> None:
        """Buffer ``payload`` on the transport (no-op once closed).

        A peer that vanished mid-reply must never propagate out of a
        reply path — the transport error marks the connection closed
        and the read loop reaps it.
        """
        if self.closed:
            return
        if self.writer.is_closing():
            # The transport learned about the peer's reset before our
            # read loop did; writing now would only generate asyncio
            # "socket.send() raised exception" noise.
            self.closed = True
            return
        try:
            self.writer.write(payload)
        except (ConnectionError, OSError, RuntimeError):
            self.closed = True


class MicroBatcher:
    """Coalesce distance-only queries by (destination, directed).

    Groups flush on size (``batch_size``) or age (``batch_deadline``),
    whichever happens first; the deadline timer is armed when a group is
    born and cancelled by a size flush.  Flushing is synchronous — one
    :meth:`~repro.service.engine.RouteQueryEngine.resolve_distances`
    call answers the whole group — so it is safe to run from a
    ``call_later`` callback.
    """

    def __init__(self, server: "RouteQueryServer") -> None:
        self._server = server
        self._groups: Dict[Tuple[Tuple[int, ...], bool], List[_Pending]] = {}
        self._timers: Dict[Tuple[Tuple[int, ...], bool], asyncio.TimerHandle] = {}

    def add(self, item: _Pending) -> None:
        """Admit one distance-only query into its destination group."""
        key = (item.query.destination, item.query.directed)
        group = self._groups.setdefault(key, [])
        group.append(item)
        config = self._server.config
        if len(group) >= config.batch_size:
            self._flush(key)
        elif len(group) == 1:
            loop = asyncio.get_running_loop()
            self._timers[key] = loop.call_later(
                config.batch_deadline, self._flush, key
            )

    def _flush(self, key: Tuple[Tuple[int, ...], bool]) -> None:
        group = self._groups.pop(key, None)
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        if not group:
            return
        destination, directed = key
        server = self._server
        server.registry.histogram(
            "server.batch_group_size", _GROUP_SIZE_BUCKETS
        ).observe(float(len(group)))
        try:
            distances = server.engine.resolve_distances(
                destination, [item.query.source for item in group], directed
            )
        except DeBruijnError as exc:
            for item in group:
                server._send_error(
                    item.connection,
                    item.query.request_id,
                    ErrorCode.INTERNAL,
                    repr(exc),
                )
            return
        for item, distance in zip(group, distances):
            server._send_reply(item, distance, None)

    def flush_all(self) -> None:
        """Drain every group immediately (shutdown path)."""
        for key in list(self._groups):
            self._flush(key)

    @property
    def pending(self) -> int:
        """Queries currently parked in unflushed groups."""
        return sum(len(group) for group in self._groups.values())


class RouteQueryServer:
    """The asyncio front end over one :class:`RouteQueryEngine`.

    Lifecycle: :meth:`start` binds and returns the port, queries flow
    until :meth:`stop` drains and closes.  ``async with`` does both.
    """

    def __init__(
        self,
        engine: RouteQueryEngine,
        config: Optional[ServerConfig] = None,
    ) -> None:
        self.engine = engine
        self.config = config if config is not None else ServerConfig()
        # Server and engine share one registry so a single STATS frame
        # shows both tiers' counters side by side.
        self.registry: MetricsRegistry = engine.registry
        self.port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._queue: Optional["asyncio.Queue[_Pending]"] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._connections: set = set()
        self._batcher = MicroBatcher(self)
        self._draining = False
        self._queue_peak = 0
        #: Optional coroutine returning the snapshot served over STATS.
        #: A multi-worker deployment points this at the supervisor's
        #: fleet-wide aggregation; ``None`` answers from the local
        #: registry synchronously.
        self.stats_provider: Optional[
            Callable[[], Awaitable[dict]]
        ] = None
        self._stats_tasks: set = set()

    # -- lifecycle -------------------------------------------------------

    async def start(
        self, listen_socket: Optional[socket.socket] = None
    ) -> int:
        """Bind, launch the dispatcher, and return the listening port.

        ``listen_socket`` serves accepts from a pre-bound listening
        socket instead of binding ``config.host:port`` — the shared-
        listener fallback where a supervisor binds once and every forked
        worker accepts from the same socket.  With ``config.reuse_port``
        the server binds its own socket with ``SO_REUSEPORT`` so many
        worker processes can listen on one address and let the kernel
        spread connections across them.
        """
        self._queue = asyncio.Queue(maxsize=self.config.max_pending)
        if listen_socket is not None:
            self._server = await asyncio.start_server(
                self._handle_connection, sock=listen_socket
            )
        elif self.config.reuse_port:
            self._server = await asyncio.start_server(
                self._handle_connection,
                self.config.host,
                self.config.port,
                reuse_port=True,
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, self.config.host, self.config.port
            )
        self.port = self._server.sockets[0].getsockname()[1]
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        return self.port

    async def stop(self) -> None:
        """Graceful drain: stop accepting, answer queued work, close."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._queue is not None:
            try:
                await asyncio.wait_for(
                    self._queue.join(), timeout=self.config.drain_timeout
                )
            except asyncio.TimeoutError:
                while True:
                    try:
                        item = self._queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    self._send_error(
                        item.connection,
                        item.query.request_id,
                        ErrorCode.SHUTTING_DOWN,
                        "server drain timeout",
                    )
                    self._queue.task_done()
        self._batcher.flush_all()
        for task in list(self._stats_tasks):
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        for connection in list(self._connections):
            await self._close_connection(connection)

    async def __aenter__(self) -> "RouteQueryServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- connection handling ---------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        max_conns = self.config.max_connections
        if max_conns is not None and len(self._connections) >= max_conns:
            # Admission control: shedding a whole connection is cheaper
            # and clearer than accepting frames we cannot answer.
            self.registry.inc("server.conn_rejected")
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            return
        connection = _Connection(reader, writer)
        self._connections.add(connection)
        self.registry.inc("server.connections")
        read_timeout = self.config.read_timeout
        loop = asyncio.get_running_loop()
        frame_deadline: Optional[float] = None
        try:
            while True:
                timeout = None
                if frame_deadline is not None:
                    timeout = frame_deadline - loop.time()
                    if timeout <= 0:
                        self.registry.inc("server.read_timeouts")
                        logger.info("read deadline: mid-frame stall, closing")
                        break
                try:
                    if timeout is None:
                        data = await reader.read(1 << 16)
                    else:
                        data = await asyncio.wait_for(
                            reader.read(1 << 16), timeout
                        )
                except asyncio.TimeoutError:
                    self.registry.inc("server.read_timeouts")
                    logger.info("read deadline: mid-frame stall, closing")
                    break
                if not data:
                    break
                try:
                    frames = connection.decoder.feed(data)
                except ProtocolError as exc:
                    # Quarantine: a corrupt frame costs this connection
                    # its stream, never the server.
                    self.registry.inc("server.malformed_frames")
                    logger.info("malformed frame, closing connection: %s", exc)
                    break
                if read_timeout is not None:
                    if connection.decoder.pending_bytes:
                        # Any completed frame is progress and re-arms
                        # the deadline; only a partial frame that stops
                        # completing for read_timeout seconds is a stall.
                        if frames or frame_deadline is None:
                            frame_deadline = loop.time() + read_timeout
                    else:
                        frame_deadline = None
                for frame in frames:
                    self._handle_frame(connection, frame)
                await self._flush_writer(connection)
        except (ConnectionError, OSError) as exc:
            # Peer vanished mid-frame or mid-reply: log and close, never
            # let the handler task die with an unretrieved exception.
            self.registry.inc("server.client_disconnects")
            logger.debug("client disconnect: %r", exc)
        finally:
            await self._close_connection(connection)

    def _handle_frame(self, connection: _Connection, frame: Frame) -> None:
        if frame.frame_type == FrameType.STATS:
            self.registry.inc("server.stats_requests")
            if self.stats_provider is not None:
                task = asyncio.create_task(
                    self._answer_stats(connection, frame.request_id)
                )
                self._stats_tasks.add(task)
                task.add_done_callback(self._stats_tasks.discard)
                return
            connection.send(
                encode_stats_reply(frame.request_id, self.snapshot())
            )
            return
        if frame.frame_type != FrameType.QUERY:
            self._send_error(
                connection,
                frame.request_id,
                ErrorCode.UNSUPPORTED,
                f"cannot serve frame type {frame.frame_type!r}",
            )
            return
        self.registry.inc("server.queries")
        try:
            query = decode_query(frame)
        except ProtocolError as exc:
            self.registry.inc("server.malformed_frames")
            self._send_error(
                connection, frame.request_id, ErrorCode.MALFORMED, str(exc)
            )
            return
        engine = self.engine
        if query.d != engine.d or query.k != engine.k:
            self._send_error(
                connection,
                frame.request_id,
                ErrorCode.UNSUPPORTED,
                f"this server routes DG({engine.d},{engine.k}), "
                f"not DG({query.d},{query.k})",
            )
            return
        if self._draining:
            self._send_error(
                connection,
                frame.request_id,
                ErrorCode.SHUTTING_DOWN,
                "server is draining",
            )
            return
        item = _Pending(query, connection, asyncio.get_running_loop().time())
        assert self._queue is not None
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            self.registry.inc("server.rejected_overload")
            self._send_error(
                connection,
                frame.request_id,
                ErrorCode.OVERLOADED,
                f"admission queue full ({self.config.max_pending})",
            )
            return
        depth = self._queue.qsize()
        if depth > self._queue_peak:
            self._queue_peak = depth

    async def _answer_stats(
        self, connection: _Connection, request_id: int
    ) -> None:
        """Answer one STATS frame through the external provider.

        Falls back to the local snapshot when the provider fails (e.g.
        the supervisor is mid-restart) — a STATS request never goes
        unanswered while the connection is alive.
        """
        try:
            snapshot = await self.stats_provider()
        except Exception:
            self.registry.inc("server.stats_provider_errors")
            snapshot = self.snapshot()
        connection.send(encode_stats_reply(request_id, snapshot))
        await self._flush_writer(connection)

    async def _flush_writer(self, connection: _Connection) -> None:
        if not connection.closed:
            try:
                await connection.writer.drain()
            except (ConnectionError, OSError, RuntimeError):
                # Peer reset mid-reply: mark closed, read loop reaps it.
                connection.closed = True
                self.registry.inc("server.client_disconnects")

    async def _close_connection(self, connection: _Connection) -> None:
        self._connections.discard(connection)
        if connection.closed:
            return
        connection.closed = True
        try:
            connection.writer.close()
            await connection.writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    # -- dispatching -----------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._queue is not None
        queue = self._queue
        loop = asyncio.get_running_loop()
        drain_every = 64
        since_drain = 0
        while True:
            item = await queue.get()
            try:
                self._dispatch_one(item, loop.time())
            except Exception as exc:  # noqa: BLE001 - dispatcher must survive
                # One bad query must never kill the dispatcher for
                # every other connection.
                self.registry.inc("server.dispatch_errors")
                logger.exception("dispatch failed: %r", exc)
            finally:
                queue.task_done()
            since_drain += 1
            if queue.empty() or since_drain >= drain_every:
                since_drain = 0
                await self._flush_writer(item.connection)

    def _dispatch_one(self, item: _Pending, now: float) -> None:
        query = item.query
        if now - item.enqueued_at > self.config.request_timeout:
            self.registry.inc("server.timed_out")
            self._send_error(
                item.connection,
                query.request_id,
                ErrorCode.TIMEOUT,
                f"queued {now - item.enqueued_at:.3f}s "
                f"> {self.config.request_timeout}s",
            )
            return
        engine = self.engine
        if not query.want_path and not engine.has_table(query.directed):
            # Distance-only and no O(1) table: park it for coalescing.
            self._batcher.add(item)
            return
        try:
            distance, path = engine.resolve(
                query.source, query.destination, query.directed, query.want_path
            )
        except DeBruijnError as exc:
            self._send_error(
                item.connection, query.request_id, ErrorCode.INTERNAL, repr(exc)
            )
            return
        self._send_reply(item, distance, path)

    # -- replies ---------------------------------------------------------

    def _send_reply(self, item: _Pending, distance: int, path) -> None:
        item.connection.send(
            encode_reply(item.query.request_id, distance, path)
        )
        self.registry.inc("server.replies")
        elapsed = asyncio.get_running_loop().time() - item.enqueued_at
        self.registry.histogram("server.latency_seconds").observe(elapsed)
        slo_ms = self.config.slo_ms
        if slo_ms is not None and elapsed * 1e3 > slo_ms:
            self.registry.inc("server.slo_violations")

    def _send_error(
        self,
        connection: _Connection,
        request_id: int,
        code: ErrorCode,
        message: str,
    ) -> None:
        connection.send(encode_error(request_id, code, message))
        self.registry.inc("server.errors")
        self.registry.inc(f"server.errors.{code.name.lower()}")

    # -- introspection ---------------------------------------------------

    def snapshot(self) -> dict:
        """The live metrics snapshot served over ``STATS`` frames."""
        self.registry.set_counter("server.queue_peak", self._queue_peak)
        self.registry.set_counter(
            "server.queue_depth",
            self._queue.qsize() if self._queue is not None else 0,
        )
        self.registry.set_counter("server.batch_pending", self._batcher.pending)
        self.registry.set_counter(
            "server.open_connections", len(self._connections)
        )
        if self.config.slo_ms is not None:
            self.registry.counter("server.slo_violations")  # ensure visible
        return self.engine.stats()
