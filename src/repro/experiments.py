"""Programmatic regeneration of the paper's quantitative artifacts.

The pytest benches under ``benchmarks/`` are the canonical harness (they
time things and assert the expected shapes); this module exposes the same
data products as plain functions so a user — or the
``debruijn-routing experiments`` subcommand — can regenerate any table
without pytest, and render the whole set as one Markdown report.

Each experiment function returns an :class:`ExperimentResult` with the
experiment id, a title, column headers and data rows.  Only the
deterministic, fast artifacts are included here (E1–E3, E8, E12); the
timing sweeps and stochastic simulations stay in the bench harness where
their runtime is accounted for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.analysis.distributions import eq5_comparison_rows, figure2_series
from repro.analysis.load import adversarial_patterns, congestion
from repro.analysis.moore import comparison_rows
from repro.analysis.tables import format_table
from repro.exceptions import InvalidParameterError
from repro.graphs.debruijn import DeBruijnGraph
from repro.graphs.properties import (
    degree_census,
    expected_directed_census,
    expected_undirected_census,
    structural_report,
)
from repro.network.router import BidirectionalOptimalRouter, TrivialRouter


@dataclass(frozen=True)
class ExperimentResult:
    """One regenerated artifact, ready to print or embed."""

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]]
    notes: str = ""

    def to_text(self, precision: int = 4) -> str:
        """The table as aligned text (what the CLI prints)."""
        body = format_table(self.headers, self.rows, precision=precision)
        parts = [f"{self.experiment_id} — {self.title}", body]
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)

    def to_markdown(self, precision: int = 4) -> str:
        """The table as GitHub-flavoured Markdown."""

        def cell(value: object) -> str:
            if isinstance(value, bool):
                return "yes" if value else "no"
            if isinstance(value, float):
                return f"{value:.{precision}f}"
            return str(value)

        lines = [f"## {self.experiment_id} — {self.title}", ""]
        lines.append("| " + " | ".join(str(h) for h in self.headers) + " |")
        lines.append("|" + "---|" * len(self.headers))
        for row in self.rows:
            lines.append("| " + " | ".join(cell(c) for c in row) + " |")
        if self.notes:
            lines.extend(["", self.notes])
        return "\n".join(lines)


def experiment_e1(grid=((2, 3), (2, 4), (3, 3), (4, 2))) -> ExperimentResult:
    """Figure 1: structure and degree census of DG(d, k)."""
    rows = []
    for d, k in grid:
        for directed in (True, False):
            graph = DeBruijnGraph(d, k, directed=directed)
            census = degree_census(graph)
            expected = (
                expected_directed_census(d, k) if directed else expected_undirected_census(d, k)
            )
            report = structural_report(graph)
            rows.append((
                d, k, "directed" if directed else "undirected",
                graph.order, report.get("diameter", "-"), graph.size(),
                str(dict(sorted(census.items(), reverse=True))),
                census == expected,
            ))
    return ExperimentResult(
        "E1", "Figure 1: structure of DG(d, k)",
        ["d", "k", "orientation", "N", "diameter", "edges", "census", "matches formula"],
        rows,
        "undirected census uses the corrected three-class formula "
        "(see repro.graphs.properties).",
    )


def experiment_e2(d_values=(2, 3, 4, 5), k_max=8) -> ExperimentResult:
    """Equation (5) vs exact directed average distance."""
    rows = eq5_comparison_rows(d_values, k_max)
    return ExperimentResult(
        "E2", "Equation (5): directed average distance",
        ["d", "k", "eq(5)", "exact mean", "gap"],
        [tuple(row) for row in rows],
        "finding: (5) is an upper-bound approximation; the gap is positive "
        "for every k >= 2 and bounded below one hop.",
    )


def experiment_e3(d_values=(2, 3, 4, 5), k_max=10) -> ExperimentResult:
    """Figure 2: undirected average distance series."""
    series = figure2_series(d_values, k_max)
    rows = []
    for d in d_values:
        for k, mean in series[d]:
            rows.append((d, k, mean, mean / k))
    return ExperimentResult(
        "E3", "Figure 2: undirected average distance",
        ["d", "k", "mean distance", "mean / k"],
        rows,
        "exact enumeration up to the memory guard; see "
        "benchmarks/bench_fig2_undirected_average.py for the sampled extension.",
    )


def experiment_e8(grid=((2, 4), (2, 8), (3, 4), (4, 4))) -> ExperimentResult:
    """Moore-bound efficiency of de Bruijn vs Kautz."""
    rows = []
    for d, k in grid:
        for row in comparison_rows(d, k):
            rows.append((row.family, d, k, row.order, row.moore_bound, row.efficiency))
    return ExperimentResult(
        "E8", "degree/diameter efficiency vs the Moore bound",
        ["family", "degree", "diameter", "vertices", "Moore bound", "fraction"],
        rows,
        "de Bruijn approaches (d-1)/d of the bound, Kautz (d^2-1)/d^2.",
    )


def experiment_e12(d=2, k=6) -> ExperimentResult:
    """Offline congestion of adversarial permutations."""
    rows = []
    for pattern, demands in adversarial_patterns(d, k).items():
        for label, router in [
            ("optimal", BidirectionalOptimalRouter(use_wildcards=False)),
            ("trivial", TrivialRouter()),
        ]:
            report = congestion(demands, router, d)
            rows.append((
                pattern, label, report.demands, report.mean_hops,
                report.max_load, report.fairness,
            ))
    return ExperimentResult(
        "E12", f"offline congestion of permutations on DN({d},{k})",
        ["pattern", "router", "demands", "mean hops", "max link load", "fairness"],
        rows,
    )


EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "E1": experiment_e1,
    "E2": experiment_e2,
    "E3": experiment_e3,
    "E8": experiment_e8,
    "E12": experiment_e12,
}


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Regenerate one artifact by id (case-insensitive)."""
    key = experiment_id.upper()
    runner = EXPERIMENTS.get(key)
    if runner is None:
        raise InvalidParameterError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        )
    return runner()


def run_all() -> List[ExperimentResult]:
    """Regenerate every static artifact, in id order."""
    return [EXPERIMENTS[key]() for key in sorted(EXPERIMENTS, key=lambda s: int(s[1:]))]


def markdown_report(results: Sequence[ExperimentResult] = None) -> str:
    """A single Markdown document covering the requested results."""
    chosen = list(results) if results is not None else run_all()
    header = (
        "# Regenerated experiment tables\n\n"
        "Produced by `repro.experiments` (static artifacts only; timing "
        "sweeps live in `benchmarks/`).\n"
    )
    return header + "\n\n".join(result.to_markdown() for result in chosen) + "\n"
