"""Interconnect shootout: de Bruijn vs the classical families.

The paper's design brief (§1): many vertices, small fixed degree, small
diameter.  This module puts numbers on the alternatives a 1990 (or 2026)
architect would weigh — ring, 2D torus, hypercube, de Bruijn, Kautz — at
comparable sizes, with closed-form degree/diameter/mean-distance values
(exact for ring/torus/hypercube; de Bruijn/Kautz means from this
repository's own exact kernels where feasible, with the directed closed
form as fallback).

The headline the table makes concrete: the hypercube matches de Bruijn's
log-diameter but its degree *grows* with N; the fixed-degree ring and
torus pay polynomial diameters; de Bruijn/Kautz alone offer both fixed
degree and logarithmic diameter — which is why the paper's O(k) routing
matters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.exceptions import InvalidParameterError


@dataclass(frozen=True)
class TopologyProfile:
    """One family evaluated at a concrete size."""

    family: str
    vertices: int
    degree: int
    diameter: int
    mean_distance: float
    degree_growth: str  # "O(1)" or "O(log N)"


def ring_profile(n: int) -> TopologyProfile:
    """A bidirectional ring of n vertices."""
    if n < 3:
        raise InvalidParameterError("a ring needs at least 3 vertices")
    diameter = n // 2
    # Mean over ordered pairs incl. self: sum of min(i, n-i) for i in 0..n-1.
    mean = sum(min(i, n - i) for i in range(n)) / n
    return TopologyProfile("ring", n, 2, diameter, mean, "O(1)")


def torus_profile(side: int) -> TopologyProfile:
    """A side×side bidirectional 2D torus."""
    if side < 2:
        raise InvalidParameterError("a torus needs side >= 2")
    n = side * side
    axis_mean = sum(min(i, side - i) for i in range(side)) / side
    return TopologyProfile(
        "2D torus", n, 4, 2 * (side // 2), 2 * axis_mean, "O(1)"
    )


def hypercube_profile(dimension: int) -> TopologyProfile:
    """The dimension-cube Q_dimension (2^dimension vertices)."""
    if dimension < 1:
        raise InvalidParameterError("a hypercube needs dimension >= 1")
    n = 2**dimension
    # Mean Hamming distance over ordered pairs = dimension / 2.
    return TopologyProfile(
        "hypercube", n, dimension, dimension, dimension / 2.0, "O(log N)"
    )


def debruijn_profile(d: int, k: int, exact_mean_cell_guard: int = 1_048_576) -> TopologyProfile:
    """Undirected DG(d, k), with the exact mean when enumeration fits."""
    from repro.core.average_distance import directed_average_distance_closed_form
    from repro.core.word import validate_parameters

    validate_parameters(d, k)
    n = d**k
    mean: Optional[float] = None
    if n * n <= exact_mean_cell_guard:
        from repro.analysis.exact import undirected_average_distance

        mean = undirected_average_distance(d, k)
    if mean is None:
        # Fallback: the directed closed form upper-bounds the undirected mean.
        mean = directed_average_distance_closed_form(d, k)
    return TopologyProfile(f"de Bruijn DG({d},{k})", n, 2 * d, k, mean, "O(1)")


def kautz_profile(d: int, k: int) -> TopologyProfile:
    """Directed K(d, k); mean distance from Property 1 over sampled pairs."""
    import random

    from repro.graphs.kautz import KautzGraph

    graph = KautzGraph(d, k)
    rng = random.Random(graph.order)
    vertices = list(graph.vertices())
    samples = min(4000, len(vertices) ** 2)
    total = 0
    for _ in range(samples):
        x = vertices[rng.randrange(len(vertices))]
        y = vertices[rng.randrange(len(vertices))]
        total += graph.distance(x, y)
    return TopologyProfile(
        f"Kautz K({d},{k})", graph.order, 2 * d, k, total / samples, "O(1)"
    )


def shootout(target_vertices: int = 64) -> List[TopologyProfile]:
    """Profiles of every family at (close to) ``target_vertices``.

    Sizes are matched as nearly as each family's structure allows: rings
    hit N exactly, tori need squares, hypercubes and de Bruijn need powers
    of two.
    """
    if target_vertices < 8:
        raise InvalidParameterError("pick a target of at least 8 vertices")
    log2n = max(3, round(math.log2(target_vertices)))
    side = max(2, round(math.sqrt(target_vertices)))
    profiles = [
        ring_profile(target_vertices),
        torus_profile(side),
        hypercube_profile(log2n),
        debruijn_profile(2, log2n),
        kautz_profile(2, max(1, log2n - 1)),
    ]
    return profiles
