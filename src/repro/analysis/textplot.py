"""Minimal ASCII line plots, used to regenerate Figure 2 as text output."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

Series = Dict[str, List[Tuple[float, float]]]

_MARKERS = "ox+*#@%&"


def render_plot(
    series: Series,
    width: int = 64,
    height: int = 20,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Scatter the series onto a character grid with a legend.

    Later series overwrite earlier ones on collisions; axes are linear and
    auto-scaled to the data's bounding box.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (label, pts) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in pts:
            col = int(round((x - x_min) / x_span * (width - 1)))
            row = int(round((y - y_min) / y_span * (height - 1)))
            grid[height - 1 - row][col] = marker
    lines = [f"{y_label} (top={y_max:.3f}, bottom={y_min:.3f})"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: left={x_min:g}, right={x_max:g}")
    for index, label in enumerate(series):
        lines.append(f"   {_MARKERS[index % len(_MARKERS)]} = {label}")
    return "\n".join(lines)
