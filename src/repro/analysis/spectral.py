"""Spectral/walk-counting view of DG(d, k): the ``A^k = J`` identity.

A walk of length t from X in the directed de Bruijn graph spells
``x_{t+1} … x_k a_1 … a_t``; for t = k the register is completely
replaced, so there is **exactly one** length-k walk between every ordered
pair of vertices: ``A^k = J`` (the all-ones matrix).  Consequences this
module computes and the tests verify:

* ``A^t`` has every row summing to ``d^t``, and for t >= k every entry
  equals ``d^(t-k)``;
* the spectrum of A is ``{d}`` once and 0 with multiplicity N − 1
  (λ^k must be an eigenvalue of J ∈ {N, 0});
* walk counts below the diameter: ``(A^t)[x, y]`` is 1 iff
  ``suffix_{k-t}(x) == prefix_{k-t}(y)`` — Property 1 in matrix form.
"""

from __future__ import annotations

import numpy as np

from repro.core.word import validate_parameters
from repro.exceptions import InvalidParameterError

#: Memory guard for dense matrices.
MAX_ORDER = 4096


def adjacency_matrix(d: int, k: int) -> np.ndarray:
    """Directed adjacency with multiplicity (loops included): A[u, v]."""
    validate_parameters(d, k)
    n = d**k
    if n > MAX_ORDER:
        raise InvalidParameterError(f"DG({d},{k}) is larger than the {MAX_ORDER} guard")
    matrix = np.zeros((n, n), dtype=np.int64)
    base = d ** (k - 1)
    for u in range(n):
        body = (u % base) * d
        for a in range(d):
            matrix[u, body + a] += 1
    return matrix


def walk_count_matrix(d: int, k: int, t: int) -> np.ndarray:
    """``A^t``: the number of length-t walks between every ordered pair."""
    if t < 0:
        raise InvalidParameterError("walk length must be non-negative")
    matrix = adjacency_matrix(d, k)
    return np.linalg.matrix_power(matrix, t)


def verify_walk_identity(d: int, k: int) -> bool:
    """True iff ``A^k`` is exactly the all-ones matrix."""
    power = walk_count_matrix(d, k, k)
    return bool((power == 1).all())


def spectrum(d: int, k: int) -> np.ndarray:
    """Eigenvalues of A, sorted by descending magnitude."""
    eigenvalues = np.linalg.eigvals(adjacency_matrix(d, k).astype(float))
    order = np.argsort(-np.abs(eigenvalues))
    return eigenvalues[order]


def property1_in_matrix_form(d: int, k: int) -> bool:
    """Check ``D(x, y) = min { t : (A^t)[x, y] >= 1 }`` — Property 1.

    Note the subtlety: a walk of length *exactly* t exists iff
    ``suffix_{k-t}(x) == prefix_{k-t}(y)``, which is **not** monotone in t
    (a vertex at distance s < t need not be reachable by a length-t walk),
    so the distance is the argmin over walk lengths, not a threshold.
    """
    from repro.analysis.exact import directed_distance_matrix

    n = d**k
    matrix = adjacency_matrix(d, k)
    first_walk = np.full((n, n), -1, dtype=np.int64)
    power = np.eye(n, dtype=np.int64)
    for t in range(k + 1):
        newly = (power >= 1) & (first_walk < 0)
        first_walk[newly] = t
        power = power @ matrix
    distances = directed_distance_matrix(d, k)
    return bool((first_walk == distances).all())
