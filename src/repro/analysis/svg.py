"""Self-contained SVG rendering of de Bruijn graphs and routes.

No external renderer needed: the output opens in any browser.  Vertices
sit on a circle in lexicographic order; directed edges curve through the
interior; a highlighted route is drawn on top in a second color.  Used by
the examples and handy for teaching slides.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.core.word import WordTuple, format_word
from repro.graphs.debruijn import DeBruijnGraph

_STYLE = (
    "  <style>\n"
    "    .edge { stroke: #9aa5b1; stroke-width: 1.2; fill: none; }\n"
    "    .edge-hl { stroke: #1f6feb; stroke-width: 3; fill: none; }\n"
    "    .node { fill: #f7f9fb; stroke: #52606d; stroke-width: 1.5; }\n"
    "    .node-hl { fill: #cfe3ff; stroke: #1f6feb; stroke-width: 2.5; }\n"
    "    .label { font: 12px monospace; text-anchor: middle; "
    "dominant-baseline: central; fill: #1f2933; }\n"
    "  </style>\n"
)


def _positions(graph: DeBruijnGraph, size: int, radius_fraction: float = 0.40):
    center = size / 2.0
    radius = size * radius_fraction
    vertices = list(graph.vertices())
    n = len(vertices)
    positions = {}
    for index, vertex in enumerate(vertices):
        angle = 2 * math.pi * index / n - math.pi / 2
        positions[vertex] = (
            center + radius * math.cos(angle),
            center + radius * math.sin(angle),
        )
    return positions


def _curved_edge(p1, p2, center, curve: float = 0.25) -> str:
    midx, midy = (p1[0] + p2[0]) / 2, (p1[1] + p2[1]) / 2
    # Pull the control point toward the center for an arc-like look.
    cx = midx + (center[0] - midx) * curve
    cy = midy + (center[1] - midy) * curve
    return f"M {p1[0]:.1f} {p1[1]:.1f} Q {cx:.1f} {cy:.1f} {p2[0]:.1f} {p2[1]:.1f}"


def graph_to_svg(
    graph: DeBruijnGraph,
    highlight_path: Optional[Sequence[WordTuple]] = None,
    size: int = 640,
    node_radius: int = 17,
) -> str:
    """The whole graph as an SVG document string.

    ``highlight_path`` (a vertex sequence) is drawn on top in the accent
    colour, with its vertices filled.  Suitable up to a few hundred
    vertices before it gets crowded.
    """
    positions = _positions(graph, size)
    center = (size / 2.0, size / 2.0)
    highlight_vertices = set(highlight_path or [])
    highlight_edges = set()
    if highlight_path:
        for u, v in zip(highlight_path, highlight_path[1:]):
            highlight_edges.add((u, v))
            if not graph.directed:
                highlight_edges.add((v, u))
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" height="{size}" '
        f'viewBox="0 0 {size} {size}">',
        _STYLE,
        f'  <rect width="{size}" height="{size}" fill="white"/>',
    ]
    # Plain edges below, highlighted edges above.
    deferred = []
    for u, v in graph.edges():
        path = _curved_edge(positions[u], positions[v], center)
        if (u, v) in highlight_edges:
            deferred.append(f'  <path class="edge-hl" d="{path}"/>')
        else:
            parts.append(f'  <path class="edge" d="{path}"/>')
    parts.extend(deferred)
    for vertex, (x, y) in positions.items():
        klass = "node-hl" if vertex in highlight_vertices else "node"
        parts.append(f'  <circle class="{klass}" cx="{x:.1f}" cy="{y:.1f}" r="{node_radius}"/>')
        parts.append(f'  <text class="label" x="{x:.1f}" y="{y:.1f}">'
                     f"{format_word(vertex)}</text>")
    parts.append("</svg>")
    return "\n".join(parts)


def route_to_svg(
    graph: DeBruijnGraph, trace: Sequence[WordTuple], size: int = 640
) -> str:
    """Convenience wrapper: the graph with one route highlighted."""
    return graph_to_svg(graph, highlight_path=trace, size=size)
