"""Robustness beyond the worst case: random failures and path stretch.

The Pradhan–Reddy bound (E7) is a worst-case guarantee for up to d − 1
failures.  Real deployments care about the *average* case far beyond it:
how much of the network stays mutually reachable when a random fraction
of sites dies, and how much longer the surviving routes get.  This module
measures both:

* :func:`survivor_component_fraction` — size of the largest mutually
  reachable component among survivors, as a fraction of survivors;
* :func:`reachable_pair_fraction` — fraction of ordered survivor pairs
  still connected;
* :func:`path_stretch_samples` — detour factor (rerouted length / fault-
  free distance) over sampled connected pairs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.core.distance import undirected_distance
from repro.core.word import WordTuple
from repro.exceptions import InvalidParameterError, RoutingError
from repro.graphs.debruijn import DeBruijnGraph
from repro.graphs.traversal import bfs_distances, bfs_path


def _surviving(graph: DeBruijnGraph, failed: Set[WordTuple]) -> List[WordTuple]:
    return [v for v in graph.vertices() if v not in failed]


def survivor_component_fraction(graph: DeBruijnGraph, failed: Set[WordTuple]) -> float:
    """|largest surviving component| / |survivors| (1.0 when none failed)."""
    survivors = _surviving(graph, failed)
    if not survivors:
        return 0.0
    remaining = set(survivors)
    best = 0
    while remaining:
        seed = next(iter(remaining))
        component = set(
            bfs_distances(
                graph, seed,
                neighbor_fn=lambda v: (u for u in graph.neighbors(v) if u not in failed),
            )
        )
        component &= remaining
        best = max(best, len(component))
        remaining -= component
    return best / len(survivors)


def reachable_pair_fraction(
    graph: DeBruijnGraph,
    failed: Set[WordTuple],
    sample_pairs: int = 0,
    rng: Optional[random.Random] = None,
) -> float:
    """Fraction of ordered survivor pairs still mutually reachable.

    Exact when ``sample_pairs`` is 0 (componentwise counting), sampled
    otherwise.
    """
    survivors = _surviving(graph, failed)
    if len(survivors) < 2:
        return 1.0
    if sample_pairs <= 0:
        # Exact: pairs within the same component are reachable.
        remaining = set(survivors)
        total_pairs = len(survivors) * (len(survivors) - 1)
        good = 0
        while remaining:
            seed = next(iter(remaining))
            component = set(
                bfs_distances(
                    graph, seed,
                    neighbor_fn=lambda v: (u for u in graph.neighbors(v) if u not in failed),
                )
            )
            component &= remaining
            good += len(component) * (len(component) - 1)
            remaining -= component
        return good / total_pairs
    generator = rng if rng is not None else random.Random()
    good = 0
    for _ in range(sample_pairs):
        x, y = generator.sample(survivors, 2)
        try:
            bfs_path(graph, x, y, avoid=failed)
            good += 1
        except RoutingError:
            pass
    return good / sample_pairs


def path_stretch_samples(
    graph: DeBruijnGraph,
    failed: Set[WordTuple],
    sample_pairs: int,
    rng: Optional[random.Random] = None,
) -> List[float]:
    """Detour factors for sampled still-connected survivor pairs.

    Each sample is ``len(rerouted shortest path) / fault-free distance``
    (distinct-pair samples only; unreachable pairs are skipped).
    """
    survivors = _surviving(graph, failed)
    if len(survivors) < 2:
        return []
    generator = rng if rng is not None else random.Random()
    stretches: List[float] = []
    attempts = 0
    while len(stretches) < sample_pairs and attempts < 20 * sample_pairs:
        attempts += 1
        x, y = generator.sample(survivors, 2)
        try:
            detour = len(bfs_path(graph, x, y, avoid=failed)) - 1
        except RoutingError:
            continue
        baseline = undirected_distance(x, y) if not graph.directed else None
        if baseline is None:
            from repro.core.distance import directed_distance

            baseline = directed_distance(x, y)
        if baseline > 0:
            stretches.append(detour / baseline)
    return stretches


@dataclass(frozen=True)
class RobustnessPoint:
    """One row of the failure sweep."""

    failure_fraction: float
    failed_count: int
    component_fraction: float
    reachable_fraction: float
    mean_stretch: float
    max_stretch: float


def random_failure_sweep(
    d: int,
    k: int,
    fractions: Sequence[float],
    stretch_samples: int = 60,
    seed: int = 0,
) -> List[RobustnessPoint]:
    """The E14 sweep: robustness metrics per random failure fraction."""
    graph = DeBruijnGraph(d, k, directed=False)
    words = list(graph.vertices())
    rows: List[RobustnessPoint] = []
    for fraction in fractions:
        if not 0.0 <= fraction < 1.0:
            raise InvalidParameterError(f"failure fraction {fraction} out of [0, 1)")
        rng = random.Random(seed + int(fraction * 1000))
        failed = set(rng.sample(words, int(round(fraction * len(words)))))
        stretches = path_stretch_samples(graph, failed, stretch_samples, rng)
        rows.append(
            RobustnessPoint(
                failure_fraction=fraction,
                failed_count=len(failed),
                component_fraction=survivor_component_fraction(graph, failed),
                reachable_fraction=reachable_pair_fraction(graph, failed),
                mean_stretch=sum(stretches) / len(stretches) if stretches else 0.0,
                max_stretch=max(stretches) if stretches else 0.0,
            )
        )
    return rows
