"""Reachability balls: why Equation (5) overestimates, structurally.

The model behind Eq. (5) implicitly assumes the out-ball of radius t from
any vertex contains exactly ``d^t`` vertices (each new digit multiplies
the reach).  In truth the t-step reach set ``{x_{t+1..k} · w : |w| = t}``
*collides across radii* whenever X overlaps itself — e.g. from ``000``
every step-1 word ``00a`` is also a step-2 word — so balls are smaller
than the model says, distances are shorter, and the exact mean sits below
the closed form.  This module measures the effect:

* :func:`directed_ball_profile` — |ball_t(x)| for t = 0..k;
* :func:`mean_ball_profile` — averaged over all sources;
* :func:`model_ball_profile` — what Eq. (5)'s distribution implies;
* :func:`ball_deficit_rows` — the side-by-side table bench E2 prints.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Tuple

from repro.core.word import WordTuple, iter_words, left_shift, validate_parameters


def directed_ball_profile(x: WordTuple, d: int) -> List[int]:
    """``[|ball_0|, |ball_1|, ..., |ball_k|]`` for out-balls from ``x``.

    BFS over left shifts; ``ball_k`` is always the whole graph (d^k).
    """
    k = len(x)
    distances: Dict[WordTuple, int] = {x: 0}
    queue = deque([x])
    while queue:
        current = queue.popleft()
        if distances[current] == k:
            continue
        for a in range(d):
            nxt = left_shift(current, a)
            if nxt not in distances:
                distances[nxt] = distances[current] + 1
                queue.append(nxt)
    profile = [0] * (k + 1)
    for dist in distances.values():
        profile[dist] += 1
    # Cumulative: ball_t = vertices within distance t.
    for t in range(1, k + 1):
        profile[t] += profile[t - 1]
    return profile


def mean_ball_profile(d: int, k: int) -> List[float]:
    """Mean |ball_t| over every source vertex of DG(d, k)."""
    validate_parameters(d, k)
    totals = [0] * (k + 1)
    count = 0
    for x in iter_words(d, k):
        for t, size in enumerate(directed_ball_profile(x, d)):
            totals[t] += size
        count += 1
    return [total / count for total in totals]


def model_ball_profile(d: int, k: int) -> List[int]:
    """The ball sizes Eq. (5)'s geometric model implies: ``d^t``.

    (The model's P(D <= t) = α^{k-t} is exactly |ball_t| / N = d^t / d^k.)
    """
    validate_parameters(d, k)
    return [d**t for t in range(k + 1)]


def ball_deficit_rows(d: int, k: int) -> List[Tuple[int, float, int, float]]:
    """Rows (t, mean |ball_t|, model d^t, mean/model) for bench E2.

    The ratio exceeds 1 for every 0 < t < k: real balls are *larger* than
    the model's because self-overlapping sources re-reach earlier layers'
    words with fresh digits — more vertices close by, smaller distances,
    hence the closed form's overestimate.
    """
    mean = mean_ball_profile(d, k)
    model = model_ball_profile(d, k)
    return [(t, mean[t], model[t], mean[t] / model[t]) for t in range(k + 1)]
