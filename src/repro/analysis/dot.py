"""Graphviz DOT export for graphs, routes and suffix trees.

Pure string generation — nothing here needs Graphviz installed; the
output renders with any ``dot`` binary or online viewer.  Useful for
papers, teaching and debugging routing traces.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.core.suffix_tree import SuffixTree
from repro.core.word import WordTuple, format_word
from repro.graphs.debruijn import DeBruijnGraph


def _quote(text: str) -> str:
    return '"' + text.replace('"', '\\"') + '"'


def graph_to_dot(
    graph: DeBruijnGraph,
    highlight_path: Optional[Sequence[WordTuple]] = None,
    name: str = "debruijn",
) -> str:
    """The whole DG(d, k) in DOT, optionally highlighting a vertex path."""
    highlighted_edges = set()
    highlighted_nodes = set(highlight_path or [])
    if highlight_path:
        for u, v in zip(highlight_path, highlight_path[1:]):
            highlighted_edges.add((u, v))
            if not graph.directed:
                highlighted_edges.add((v, u))
    keyword = "digraph" if graph.directed else "graph"
    connector = "->" if graph.directed else "--"
    lines = [f"{keyword} {name} {{", "  node [shape=circle, fontname=monospace];"]
    for vertex in graph.vertices():
        attributes = ""
        if vertex in highlighted_nodes:
            attributes = " [style=filled, fillcolor=lightblue]"
        lines.append(f"  {_quote(format_word(vertex))}{attributes};")
    for u, v in graph.edges():
        attributes = ""
        if (u, v) in highlighted_edges:
            attributes = " [color=blue, penwidth=2]"
        lines.append(f"  {_quote(format_word(u))} {connector} {_quote(format_word(v))}{attributes};")
    lines.append("}")
    return "\n".join(lines)


def route_to_dot(trace: Sequence[WordTuple], name: str = "route") -> str:
    """Just the hops of one route, as a chain."""
    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [shape=box, fontname=monospace];"]
    for index, (u, v) in enumerate(zip(trace, trace[1:])):
        lines.append(
            f"  {_quote(format_word(u))} -> {_quote(format_word(v))} "
            f"[label=\"hop {index + 1}\"];"
        )
    if len(trace) == 1:
        lines.append(f"  {_quote(format_word(trace[0]))};")
    lines.append("}")
    return "\n".join(lines)


def suffix_tree_to_dot(tree: SuffixTree, name: str = "suffixtree") -> str:
    """The compact suffix tree with edge labels (endmarkers as symbols)."""

    def symbol(value: int) -> str:
        if value >= 0:
            return format_word((value,))
        return {-1: "⊥", -2: "⊤"}.get(value, f"s{value}")

    lines = [f"digraph {name} {{", "  node [shape=point];"]
    counter = [0]

    def visit(node, node_id: str) -> None:
        for child in node.children.values():
            counter[0] += 1
            child_id = f"n{counter[0]}"
            label = "".join(symbol(s) for s in tree.text[child.start : child.end])
            shape = "circle" if child.is_leaf else "point"
            extra = f' [label="{child.suffix_index}", shape={shape}]' if child.is_leaf else ""
            lines.append(f"  {child_id}{extra};")
            lines.append(f"  {node_id} -> {child_id} [label={_quote(label)}];")
            visit(child, child_id)

    lines.append("  n0;")
    visit(tree.root, "n0")
    lines.append("}")
    return "\n".join(lines)
