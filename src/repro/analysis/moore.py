"""Degree/diameter near-optimality (the paper's Imase–Itoh citation).

Paper Section 1: "one of the most attractive features of de Bruijn graphs
is that they are nearly optimal graphs that minimize the diameter, given
the number of vertices and the degree".  This module quantifies "nearly":
the directed Moore bound says a graph of out-degree d and diameter D has
at most ``1 + d + d² + … + d^D`` vertices; de Bruijn achieves ``d^D`` and
Kautz achieves ``d^D + d^(D-1)`` — constant-factor optimal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.exceptions import InvalidParameterError


def directed_moore_bound(d: int, diameter: int) -> int:
    """``1 + d + … + d^diameter`` — the directed degree/diameter ceiling."""
    if d < 1 or diameter < 0:
        raise InvalidParameterError("need d >= 1 and diameter >= 0")
    return sum(d**i for i in range(diameter + 1))


@dataclass(frozen=True)
class TopologyRow:
    """One row of the topology-comparison table."""

    family: str
    d: int
    diameter: int
    order: int
    moore_bound: int

    @property
    def efficiency(self) -> float:
        """Fraction of the Moore bound actually achieved."""
        return self.order / self.moore_bound


def comparison_rows(d: int, k: int) -> List[TopologyRow]:
    """de Bruijn vs Kautz vs the Moore bound at degree d, diameter k."""
    if d < 2 or k < 1:
        raise InvalidParameterError("need d >= 2 and k >= 1")
    bound = directed_moore_bound(d, k)
    debruijn = TopologyRow("de Bruijn DG", d, k, d**k, bound)
    kautz = TopologyRow("Kautz K", d, k, d**k + d ** (k - 1), bound)
    return [debruijn, kautz]


def asymptotic_efficiency(d: int) -> float:
    """Large-k limit of de Bruijn's Moore-bound fraction: ``(d-1)/d``.

    ``d^k / ((d^(k+1)-1)/(d-1)) -> (d-1)/d`` as k grows; Kautz reaches
    ``(d²-1)/d²``.
    """
    if d < 2:
        raise InvalidParameterError("need d >= 2")
    return (d - 1) / d
