"""Analytic queueing predictions for the store-and-forward network.

A link with deterministic unit service time fed (approximately) Poisson
traffic at utilisation ρ behaves like an M/D/1 queue, whose mean waiting
time is ``ρ / (2(1 − ρ))`` service times.  At the network level, uniform
traffic at per-node injection rate λ spreads mean-distance δ̄ hops of work
over the used links, giving a closed-form latency estimate

    latency ≈ δ̄ · (latency_per_hop + W(ρ)),   ρ = λ·N·δ̄ / L

with L the number of links carrying traffic.  The estimate is crude — the
traffic is neither Poisson nor link-independent — but it tracks the
simulator well below saturation, and benchmark E10 reports prediction
against measurement side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import InvalidParameterError


def md1_wait(utilisation: float) -> float:
    """Mean M/D/1 waiting time (in service times) at the given utilisation."""
    if not 0.0 <= utilisation < 1.0:
        raise InvalidParameterError(f"utilisation must be in [0, 1), got {utilisation}")
    return utilisation / (2.0 * (1.0 - utilisation))


@dataclass(frozen=True)
class LatencyPrediction:
    """The pieces of the closed-form estimate."""

    mean_distance: float
    link_utilisation: float
    waiting_per_hop: float
    latency: float


def predict_uniform_latency(
    n_nodes: int,
    n_links: int,
    injection_rate: float,
    mean_distance: float,
    link_latency: float = 1.0,
    service_time: float = 1.0,
) -> LatencyPrediction:
    """Closed-form mean latency for uniform traffic (see module docstring).

    ``injection_rate`` is per node per cycle; saturation is reached when
    the implied utilisation hits 1, at which point the estimate raises.
    """
    if n_nodes <= 0 or n_links <= 0:
        raise InvalidParameterError("need positive node and link counts")
    offered_hops_per_cycle = injection_rate * n_nodes * mean_distance
    utilisation = offered_hops_per_cycle * service_time / n_links
    if utilisation >= 1.0:
        raise InvalidParameterError(
            f"offered load saturates the links (rho = {utilisation:.3f} >= 1)"
        )
    waiting = md1_wait(utilisation) * service_time
    latency = mean_distance * (link_latency + waiting)
    return LatencyPrediction(mean_distance, utilisation, waiting, latency)


def saturation_rate(n_nodes: int, n_links: int, mean_distance: float,
                    service_time: float = 1.0) -> float:
    """The injection rate at which the uniform-traffic model saturates."""
    if n_nodes <= 0 or n_links <= 0 or mean_distance <= 0:
        raise InvalidParameterError("need positive counts and distance")
    return n_links / (n_nodes * mean_distance * service_time)
