"""Analytics over de Bruijn graphs: exact all-pairs kernels, tables, plots."""

from repro.analysis.distributions import (
    DistributionSummary,
    directed_summary,
    eq5_comparison_rows,
    figure2_series,
    normalized_gap_rows,
    undirected_summary,
)
from repro.analysis.exact import (
    directed_average_distance,
    directed_bfs_distance_matrix,
    directed_distance_matrix,
    undirected_average_distance,
    undirected_distance_matrix,
)
from repro.analysis.balls import (
    ball_deficit_rows,
    directed_ball_profile,
    mean_ball_profile,
)
from repro.analysis.comparison import TopologyProfile, shootout
from repro.analysis.dot import graph_to_dot, route_to_dot, suffix_tree_to_dot
from repro.analysis.svg import graph_to_svg, route_to_svg
from repro.analysis.load import adversarial_patterns, congestion, link_loads
from repro.analysis.moore import (
    asymptotic_efficiency,
    comparison_rows,
    directed_moore_bound,
)
from repro.analysis.robustness import (
    RobustnessPoint,
    random_failure_sweep,
    reachable_pair_fraction,
    survivor_component_fraction,
)
from repro.analysis.queueing import (
    md1_wait,
    predict_uniform_latency,
    saturation_rate,
)
from repro.analysis.spectral import (
    adjacency_matrix,
    property1_in_matrix_form,
    spectrum,
    verify_walk_identity,
    walk_count_matrix,
)
from repro.analysis.tables import format_kv_block, format_table
from repro.analysis.textplot import render_plot

__all__ = [
    "DistributionSummary",
    "TopologyProfile",
    "shootout",
    "adjacency_matrix",
    "adversarial_patterns",
    "ball_deficit_rows",
    "congestion",
    "directed_ball_profile",
    "graph_to_dot",
    "graph_to_svg",
    "mean_ball_profile",
    "route_to_svg",
    "link_loads",
    "md1_wait",
    "predict_uniform_latency",
    "RobustnessPoint",
    "random_failure_sweep",
    "reachable_pair_fraction",
    "route_to_dot",
    "saturation_rate",
    "survivor_component_fraction",
    "suffix_tree_to_dot",
    "asymptotic_efficiency",
    "property1_in_matrix_form",
    "spectrum",
    "verify_walk_identity",
    "walk_count_matrix",
    "comparison_rows",
    "directed_moore_bound",
    "directed_average_distance",
    "directed_bfs_distance_matrix",
    "directed_distance_matrix",
    "directed_summary",
    "eq5_comparison_rows",
    "figure2_series",
    "format_kv_block",
    "format_table",
    "normalized_gap_rows",
    "render_plot",
    "undirected_average_distance",
    "undirected_distance_matrix",
    "undirected_summary",
]
