"""Plain-text table rendering for the bench harnesses.

Every experiment prints its rows through these helpers so the bench output
reads like the paper's tables and is easy to diff across runs.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _render_cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 4,
    indent: str = "",
) -> str:
    """Fixed-width aligned table with a header rule.

    >>> print(format_table(["d", "mean"], [[2, 1.84375]], precision=3))
    d  mean
    -  -----
    2  1.844
    """
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        rendered.append([_render_cell(cell, precision) for cell in row])
    widths = [max(len(r[col]) for r in rendered) for col in range(len(headers))]
    lines = []
    header_line = "  ".join(cell.ljust(width) for cell, width in zip(rendered[0], widths))
    lines.append((indent + header_line).rstrip())
    lines.append(indent + "  ".join("-" * width for width in widths))
    for row in rendered[1:]:
        body = "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        lines.append((indent + body).rstrip())
    return "\n".join(lines)


def format_kv_block(title: str, pairs: Iterable[Sequence[object]], precision: int = 4) -> str:
    """A titled key/value block for per-experiment headlines."""
    lines = [title, "=" * len(title)]
    for key, value in pairs:
        lines.append(f"{key}: {_render_cell(value, precision)}")
    return "\n".join(lines)
