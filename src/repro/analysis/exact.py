"""Vectorised all-pairs distance computation (numpy) for the benches.

The pure-Python distance functions are O(k) per pair; regenerating
Figure 2 needs *all* ``N²`` pairs for N up to a few thousand, which is
where these numpy kernels come in.  Both kernels are cross-checked against
the pure implementations in the integration tests.

* :func:`directed_distance_matrix` evaluates Property 1 for all pairs at
  once: for each overlap length ``s``, "suffix_s(X) == prefix_s(Y)" is one
  broadcast integer comparison.
* :func:`undirected_distance_matrix` runs a synchronous multi-source BFS:
  one boolean frontier per source, advanced simultaneously through the 2d
  shift maps (which are index gathers).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.word import validate_parameters
from repro.exceptions import InvalidParameterError

#: Memory guard: refuse matrices bigger than this many cells.
MAX_CELLS = 256 * 1024 * 1024


def _check_size(d: int, k: int) -> int:
    validate_parameters(d, k)
    n = d**k
    if n * n > MAX_CELLS:
        raise InvalidParameterError(
            f"DG({d},{k}) has {n}^2 pairs; exceeds the {MAX_CELLS}-cell guard"
        )
    return n


def directed_distance_matrix(d: int, k: int) -> np.ndarray:
    """``D[x, y]`` = directed distance, with vertices in integer encoding.

    The integer encoding is base-d with the head digit most significant
    (see :func:`repro.core.word.word_to_int`).
    """
    n = _check_size(d, k)
    values = np.arange(n, dtype=np.int64)
    overlap = np.zeros((n, n), dtype=np.int8)
    for s in range(1, k + 1):
        suffix = values % (d**s)  # last s digits of X
        prefix = values // (d ** (k - s))  # first s digits of Y
        match = suffix[:, None] == prefix[None, :]
        overlap[match] = s
    return (k - overlap).astype(np.int8)


def shift_index_vectors(d: int, k: int) -> List[np.ndarray]:
    """The 2d shift maps as integer index vectors over 0..N-1.

    Entry ``a`` of the first d vectors maps ``v`` to ``v^-(a)``; the next d
    map ``v`` to ``v^+(a)``.
    """
    n = d**k
    values = np.arange(n, dtype=np.int64)
    vectors: List[np.ndarray] = []
    for a in range(d):
        vectors.append((values % (d ** (k - 1))) * d + a)  # left shift
    for a in range(d):
        vectors.append(values // d + a * d ** (k - 1))  # right shift
    return vectors


def undirected_distance_matrix(d: int, k: int) -> np.ndarray:
    """``D[x, y]`` = undirected distance, by synchronous multi-source BFS."""
    n = _check_size(d, k)
    shifts = shift_index_vectors(d, k)
    dist = np.full((n, n), -1, dtype=np.int8)
    np.fill_diagonal(dist, 0)
    frontier = np.eye(n, dtype=bool)
    level = 0
    while frontier.any():
        level += 1
        reached = np.zeros_like(frontier)
        for index in shifts:
            # w is newly reachable if any of its shift-neighbors was in the
            # frontier; the shift relation is symmetric as a neighborhood.
            reached |= frontier[:, index]
        new = reached & (dist < 0)
        dist[new] = level
        frontier = new
        if level > k and frontier.any():  # pragma: no cover - diameter bound
            raise InvalidParameterError("BFS exceeded the diameter bound k")
    return dist


def directed_bfs_distance_matrix(d: int, k: int) -> np.ndarray:
    """Directed distances by multi-source BFS (oracle for Property 1).

    Delegates to the shared packed-BFS kernel in
    :mod:`repro.core.parallel` (the same rows the route-table compiler
    shards), then reinterprets the flat byte buffer: the kernel's 0xFF
    "unreachable" sentinel is exactly -1 in the int8 view, and real
    distances never exceed k < 127.
    """
    from repro.core.parallel import distance_matrix_flat

    n = _check_size(d, k)
    flat = distance_matrix_flat(d, k, directed=True, workers=1)
    return (
        np.frombuffer(bytes(flat), dtype=np.uint8)
        .reshape(n, n)
        .view(np.int8)
    )


def average_distance_exact(matrix: np.ndarray) -> float:
    """Mean over all ordered pairs (including the zero diagonal)."""
    return float(matrix.mean())


def distance_histogram(matrix: np.ndarray) -> Dict[int, int]:
    """Map distance value -> number of ordered pairs."""
    values, counts = np.unique(matrix, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def directed_average_distance(d: int, k: int) -> float:
    """Exact mean directed distance (vectorised Property 1)."""
    return average_distance_exact(directed_distance_matrix(d, k))


def undirected_average_distance(d: int, k: int) -> float:
    """Exact mean undirected distance (vectorised BFS)."""
    return average_distance_exact(undirected_distance_matrix(d, k))


def undirected_average_series(
    d_values: Tuple[int, ...], k_max: int, cell_guard: int = 4_194_304
) -> Dict[int, List[Tuple[int, float]]]:
    """Figure-2 series: for each d, [(k, mean undirected distance)].

    Stops each series when N² would exceed ``cell_guard`` cells so the
    bench stays fast; the bench supplements larger k by sampling.
    """
    series: Dict[int, List[Tuple[int, float]]] = {}
    for d in d_values:
        points: List[Tuple[int, float]] = []
        for k in range(1, k_max + 1):
            n = d**k
            if n * n > cell_guard:
                break
            points.append((k, undirected_average_distance(d, k)))
        series[d] = points
    return series
