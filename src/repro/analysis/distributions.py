"""Distance-distribution analytics built on the exact numpy kernels.

Provides the data series behind Figure 2 (undirected average distance) and
the E2 comparison table (Equation (5) versus exact directed averages),
plus general histogram/statistics helpers used by tests and examples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis import exact
from repro.core.average_distance import directed_average_distance_closed_form


@dataclass(frozen=True)
class DistributionSummary:
    """Moments and extrema of a distance histogram."""

    mean: float
    std: float
    minimum: int
    maximum: int
    total_pairs: int

    @classmethod
    def from_histogram(cls, histogram: Dict[int, int]) -> "DistributionSummary":
        total = sum(histogram.values())
        mean = sum(value * count for value, count in histogram.items()) / total
        var = sum(count * (value - mean) ** 2 for value, count in histogram.items()) / total
        return cls(
            mean=mean,
            std=math.sqrt(var),
            minimum=min(histogram),
            maximum=max(histogram),
            total_pairs=total,
        )


def directed_summary(d: int, k: int) -> DistributionSummary:
    """Exact directed distance distribution summary (all ordered pairs)."""
    histogram = exact.distance_histogram(exact.directed_distance_matrix(d, k))
    return DistributionSummary.from_histogram(histogram)


def undirected_summary(d: int, k: int) -> DistributionSummary:
    """Exact undirected distance distribution summary."""
    histogram = exact.distance_histogram(exact.undirected_distance_matrix(d, k))
    return DistributionSummary.from_histogram(histogram)


def eq5_comparison_rows(
    d_values: Tuple[int, ...] = (2, 3, 4, 5), k_max: int = 8, cell_guard: int = 4_194_304
) -> List[Tuple[int, int, float, float, float]]:
    """E2 rows: (d, k, closed form (5), exact mean, closed − exact).

    The positive gap in the last column is the reproduction finding that
    Equation (5) is an upper-bound approximation (see EXPERIMENTS.md).
    """
    rows: List[Tuple[int, int, float, float, float]] = []
    for d in d_values:
        for k in range(1, k_max + 1):
            n = d**k
            if n * n > cell_guard:
                break
            closed = directed_average_distance_closed_form(d, k)
            measured = exact.directed_average_distance(d, k)
            rows.append((d, k, closed, measured, closed - measured))
    return rows


def figure2_series(
    d_values: Tuple[int, ...] = (2, 3, 4, 5), k_max: int = 10, cell_guard: int = 4_194_304
) -> Dict[int, List[Tuple[int, float]]]:
    """Figure-2 data: per d, the exact undirected average distance vs k."""
    return exact.undirected_average_series(d_values, k_max, cell_guard)


def normalized_gap_rows(
    series: Dict[int, List[Tuple[int, float]]]
) -> List[Tuple[int, int, float, float]]:
    """Rows (d, k, mean, k − mean): how far the average sits from the diameter.

    The undirected graph's bidirectional links buy real distance: the mean
    sits well below k (around 0.55·k for d = 2 at the sizes measured), in
    contrast to the directed graph where the mean hugs k − α/(1−α).
    """
    rows = []
    for d, points in sorted(series.items()):
        for k, mean in points:
            rows.append((d, k, mean, k - mean))
    return rows
