"""Static link-load analysis: congestion without running the clock.

Routing a traffic pattern (a set of source→destination demands) over the
network induces a load on every link; the maximum — the *congestion* —
lower-bounds the completion time of any schedule and is the standard
offline quality measure for oblivious routing.  This module computes
per-link loads for any router and any demand set, plus the summary
statistics the adversarial-pattern bench (E12) prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.core.routing import Direction, RoutingStep
from repro.core.word import WordTuple, left_shift, right_shift
from repro.network.router import Router
from repro.network.stats import jain_fairness

Demand = Tuple[WordTuple, WordTuple]
LinkKey = Tuple[WordTuple, WordTuple]


def path_links(source: WordTuple, path: Iterable[RoutingStep], d: int) -> List[LinkKey]:
    """The directed links a concrete routing path crosses.

    Wildcard digits are resolved to 0 (static analysis has no queue state
    to consult; pass a wildcard-free router for exact results).
    """
    links: List[LinkKey] = []
    current = source
    for step in path:
        digit = step.digit if step.digit is not None else 0
        nxt = (
            left_shift(current, digit)
            if step.direction == Direction.LEFT
            else right_shift(current, digit)
        )
        links.append((current, nxt))
        current = nxt
    return links


@dataclass(frozen=True)
class CongestionReport:
    """Summary of a routed demand set."""

    demands: int
    total_hops: int
    links_used: int
    max_load: int
    mean_load: float
    fairness: float

    @property
    def mean_hops(self) -> float:
        """Average route length over the demand set."""
        if self.demands == 0:
            return 0.0
        return self.total_hops / self.demands


def link_loads(demands: Iterable[Demand], router: Router, d: int) -> Dict[LinkKey, int]:
    """Per-link message counts after routing every demand."""
    loads: Dict[LinkKey, int] = {}
    for source, destination in demands:
        for link in path_links(source, router.plan(source, destination), d):
            loads[link] = loads.get(link, 0) + 1
    return loads


def congestion(demands: Iterable[Demand], router: Router, d: int) -> CongestionReport:
    """Route the demands and summarise the induced loads."""
    demand_list = list(demands)
    loads = link_loads(demand_list, router, d)
    total_hops = sum(loads.values())
    values = list(loads.values())
    return CongestionReport(
        demands=len(demand_list),
        total_hops=total_hops,
        links_used=len(loads),
        max_load=max(values) if values else 0,
        mean_load=total_hops / len(values) if values else 0.0,
        fairness=jain_fairness([float(v) for v in values]),
    )


def permutation_demands(d: int, k: int, mapping) -> List[Demand]:
    """Demands ``(x, mapping(x))`` for every vertex, self-pairs skipped."""
    from repro.core.word import iter_words

    out: List[Demand] = []
    for word in iter_words(d, k):
        target = mapping(word)
        if target != word:
            out.append((word, target))
    return out


def adversarial_patterns(d: int, k: int) -> Dict[str, List[Demand]]:
    """The classical permutation stress patterns, as demand sets."""
    patterns: Dict[str, List[Demand]] = {
        "bit-reversal": permutation_demands(d, k, lambda w: tuple(reversed(w))),
        "complement": permutation_demands(d, k, lambda w: tuple(d - 1 - x for x in w)),
        "cyclic-shift": permutation_demands(d, k, lambda w: w[1:] + w[:1]),
        "swap-halves": permutation_demands(
            d, k, lambda w: w[k // 2 :] + w[: k // 2]
        ),
    }
    return patterns
