"""Package self-description: the system inventory, computed from the code.

DESIGN.md lists every subsystem by hand; this module derives the same
inventory from the package itself (module → first docstring line), so the
documentation can be checked against reality (see tests) and users can
ask the installed package what is in it::

    $ debruijn-routing about
"""

from __future__ import annotations

import importlib
import pkgutil
from dataclasses import dataclass
from typing import List

import repro


@dataclass(frozen=True)
class ModuleInfo:
    """One module's identity card."""

    name: str
    summary: str
    public_names: int


def iter_module_names() -> List[str]:
    """Every non-private module under ``repro``, sorted."""
    return sorted(
        name
        for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
        if not name.rsplit(".", 1)[-1].startswith("_")
    )


def inventory() -> List[ModuleInfo]:
    """Identity cards for every module (imports them all)."""
    cards: List[ModuleInfo] = []
    for name in iter_module_names():
        module = importlib.import_module(name)
        doc = (module.__doc__ or "").strip().splitlines()
        summary = doc[0].rstrip(".") if doc else "(undocumented)"
        exported = getattr(module, "__all__", None)
        if exported is None:
            exported = [n for n in vars(module) if not n.startswith("_")]
        cards.append(ModuleInfo(name=name, summary=summary, public_names=len(exported)))
    return cards


def render_inventory() -> str:
    """The ``about`` listing: one line per module."""
    cards = inventory()
    width = max(len(card.name) for card in cards)
    lines = [f"repro {repro.__version__} — "
             f"{len(cards)} modules, reproduction of Liu (ICDCS 1990)"]
    current_package = ""
    for card in cards:
        package = card.name.split(".")[1] if "." in card.name else ""
        if package != current_package:
            current_package = package
            lines.append("")
        lines.append(f"  {card.name:<{width}}  {card.summary}")
    return "\n".join(lines)
