"""Generalized de Bruijn graphs GDB(n, d) (Imase–Itoh; Reddy–Pradhan–Kuhl).

The paper motivates DG(d, k) as "nearly optimal graphs that minimize the
diameter, given the number of vertices and the degree" citing Imase and
Itoh [4].  Imase–Itoh's actual construction works for *any* vertex count
``n``, not just powers of d: vertices are the residues ``0..n-1`` with
arcs

    u  ->  (d·u + a) mod n,      a = 0..d-1.

When ``n = d^k`` this is exactly the directed DG(d, k) in integer
encoding.  The analogue of the paper's Property 1 holds in a pleasingly
arithmetic form: the set of vertices reachable from ``u`` in exactly ``t``
steps is the cyclic interval ``[d^t·u, d^t·u + d^t) mod n``, so

    D(u, v) = min { t >= 0 : (v − d^t·u) mod n < d^t },

and the route digits are the base-d expansion of ``(v − d^t·u) mod n`` —
an O(diameter) routing rule with no tables, mirroring Algorithm 1.
"""

from __future__ import annotations

from typing import Iterator, List, Set, Tuple

from repro.exceptions import InvalidParameterError, RoutingError


def _validate(n: int, d: int) -> None:
    if not isinstance(d, int) or isinstance(d, bool) or d < 2:
        raise InvalidParameterError(f"degree d must be an int >= 2, got {d!r}")
    if not isinstance(n, int) or isinstance(n, bool) or n < 2:
        raise InvalidParameterError(f"order n must be an int >= 2, got {n!r}")


def _validate_vertex(n: int, u: int) -> None:
    if not isinstance(u, int) or isinstance(u, bool) or not 0 <= u < n:
        raise InvalidParameterError(f"vertex {u!r} is not in 0..{n - 1}")


class GeneralizedDeBruijnGraph:
    """GDB(n, d): n vertices of out-degree d with ``u -> (d·u + a) mod n``."""

    def __init__(self, n: int, d: int) -> None:
        _validate(n, d)
        self.n = n
        self.d = d

    @property
    def order(self) -> int:
        """Number of vertices."""
        return self.n

    def vertices(self) -> Iterator[int]:
        """All vertices ``0..n-1``."""
        return iter(range(self.n))

    def out_neighbors(self, u: int) -> Set[int]:
        """Distinct successors of ``u``."""
        _validate_vertex(self.n, u)
        return {(self.d * u + a) % self.n for a in range(self.d)}

    def in_neighbors(self, v: int) -> Set[int]:
        """Distinct predecessors of ``v``: the ``u`` with ``d·u + a ≡ v``.

        For each residue ``r = v − a`` the congruence ``d·u ≡ r (mod n)``
        is solved by lifting: ``u = (r + m·n) / d`` for the ``m`` that make
        the numerator divisible — at most d lifts need checking.
        """
        _validate_vertex(self.n, v)
        result: Set[int] = set()
        for a in range(self.d):
            r = (v - a) % self.n
            for m in range(self.d):
                numerator = r + m * self.n
                if numerator % self.d == 0:
                    u = (numerator // self.d) % self.n
                    if (self.d * u + a) % self.n == v:
                        result.add(u)
        return result

    def neighbors(self, u: int) -> Set[int]:
        """Out-neighbors (the BFS helpers expect this name)."""
        return self.out_neighbors(u)

    def diameter_bound(self) -> int:
        """``ceil(log_d n)`` — after that many steps the reach interval
        covers every vertex."""
        t = 0
        reach = 1
        while reach < self.n:
            reach *= self.d
            t += 1
        return t

    def distance(self, u: int, v: int) -> int:
        """Shortest path length via the cyclic-interval characterisation."""
        _validate_vertex(self.n, u)
        _validate_vertex(self.n, v)
        power = 1  # d^t
        position = u  # d^t · u mod n
        for t in range(self.diameter_bound() + 1):
            if (v - position) % self.n < power:
                return t
            power *= self.d
            position = (position * self.d) % self.n
        raise RoutingError(f"no route from {u} to {v} within the diameter bound")

    def route(self, u: int, v: int) -> List[int]:
        """The digits ``a_1..a_t`` of a shortest route (Algorithm-1 analogue).

        Applying ``u -> d·u + a_i mod n`` for each digit in order lands on
        ``v``; the list length equals :meth:`distance`.
        """
        t = self.distance(u, v)
        offset = (v - pow(self.d, t, self.n) * u) % self.n
        digits: List[int] = []
        for _ in range(t):
            offset, digit = divmod(offset, self.d)
            digits.append(digit)
        if offset:
            raise RoutingError("internal error: offset does not fit in t digits")
        digits.reverse()
        return digits

    def apply_route(self, u: int, digits: List[int]) -> int:
        """Walk the route digits from ``u`` and return the endpoint."""
        current = u
        for digit in digits:
            if not 0 <= digit < self.d:
                raise RoutingError(f"digit {digit!r} out of range 0..{self.d - 1}")
            current = (self.d * current + digit) % self.n
        return current

    def edges(self) -> Iterator[Tuple[int, int]]:
        """All distinct non-loop arcs."""
        for u in range(self.n):
            for v in sorted(self.out_neighbors(u)):
                if v != u:
                    yield u, v

    def __repr__(self) -> str:
        return f"GeneralizedDeBruijnGraph(n={self.n}, d={self.d})"


def matches_debruijn(n: int, d: int) -> bool:
    """True when GDB(n, d) coincides with a classical DG(d, k)."""
    k = 0
    power = 1
    while power < n:
        power *= d
        k += 1
    return power == n
