"""de Bruijn sequences and Hamiltonian cycles of DG(d, k).

Paper Section 1 lists "the existence of multiple Hamiltonian paths" (de
Bruijn 1946; Etzion–Lempel 1984) among the network's attractive features: a
Hamiltonian cycle of DG(d, k) is exactly a de Bruijn sequence B(d, k), and
it is what the ring/linear-array embeddings of
:mod:`repro.graphs.embeddings` are built on.

Two independent constructions are provided (and cross-checked in tests):

* :func:`debruijn_sequence_lyndon` — the Fredricksen–Kessler–Maiorana
  (FKM) construction: concatenate, in lexicographic order, the Lyndon
  words whose length divides ``k``.  O(d^k) total work.
* :func:`debruijn_sequence_euler` — Hierholzer's algorithm on DG(d, k-1),
  whose Eulerian circuits spell exactly the B(d, k) sequences.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

from repro.core.word import WordTuple, validate_parameters
from repro.exceptions import InvalidParameterError


def lyndon_words(d: int, max_length: int) -> Iterator[Tuple[int, ...]]:
    """All Lyndon words over ``{0..d-1}`` of length <= ``max_length``.

    Generated in lexicographic order by Duval's algorithm.  A Lyndon word
    is strictly smaller than all of its proper rotations.
    """
    validate_parameters(d, max_length)
    w = [-1]
    while w:
        w[-1] += 1
        yield tuple(w)
        m = len(w)
        while len(w) < max_length:
            w.append(w[-m])
        while w and w[-1] == d - 1:
            w.pop()


def debruijn_sequence_lyndon(d: int, k: int) -> Tuple[int, ...]:
    """B(d, k) by the FKM theorem: concatenated Lyndon words of dividing length.

    The result has length ``d**k`` and every length-``k`` word occurs
    exactly once cyclically.

    >>> debruijn_sequence_lyndon(2, 3)
    (0, 0, 0, 1, 0, 1, 1, 1)
    """
    validate_parameters(d, k)
    sequence: List[int] = []
    for word in lyndon_words(d, k):
        if k % len(word) == 0:
            sequence.extend(word)
    return tuple(sequence)


def debruijn_sequence_euler(d: int, k: int) -> Tuple[int, ...]:
    """B(d, k) by Hierholzer's algorithm on DG(d, k-1).

    Every vertex of DG(d, k-1) has out-degree ``d`` = in-degree ``d`` and
    the graph is strongly connected, so an Eulerian circuit exists; the
    digits appended along it spell a de Bruijn sequence.  For ``k == 1``
    the sequence is just ``0, 1, ..., d-1``.
    """
    validate_parameters(d, k)
    if k == 1:
        return tuple(range(d))
    start: WordTuple = (0,) * (k - 1)
    # next_digit[v] = smallest unused out-digit at v; arcs are consumed in
    # increasing digit order which makes the output deterministic.
    next_digit: Dict[WordTuple, int] = {}
    stack: List[WordTuple] = [start]
    spelled: List[int] = []
    while stack:
        vertex = stack[-1]
        digit = next_digit.get(vertex, 0)
        if digit < d:
            next_digit[vertex] = digit + 1
            stack.append(vertex[1:] + (digit,))
        else:
            stack.pop()
            if stack:
                spelled.append(vertex[-1])
    spelled.reverse()
    if len(spelled) != d**k:
        raise InvalidParameterError(
            f"Eulerian circuit spelled {len(spelled)} digits, expected {d**k}"
        )
    return tuple(spelled)


def windows(sequence: Sequence[int], k: int) -> Iterator[WordTuple]:
    """All ``len(sequence)`` cyclic length-``k`` windows of ``sequence``."""
    n = len(sequence)
    extended = tuple(sequence) + tuple(sequence[: k - 1])
    for i in range(n):
        yield extended[i : i + k]


def is_debruijn_sequence(sequence: Sequence[int], d: int, k: int) -> bool:
    """True when every word of DG(d, k) appears exactly once cyclically."""
    if len(sequence) != d**k:
        return False
    seen = set()
    for window in windows(sequence, k):
        if window in seen or any(not 0 <= digit < d for digit in window):
            return False
        seen.add(window)
    return len(seen) == d**k


def hamiltonian_cycle(d: int, k: int) -> List[WordTuple]:
    """A Hamiltonian cycle of the directed DG(d, k): its d^k vertices in order.

    Consecutive vertices (cyclically) are joined by left-shift arcs; this
    is the cyclic window sequence of a de Bruijn sequence B(d, k).
    """
    return list(windows(debruijn_sequence_lyndon(d, k), k))


def hamiltonian_path(d: int, k: int) -> List[WordTuple]:
    """A Hamiltonian path (the cycle cut open at an arbitrary point)."""
    return hamiltonian_cycle(d, k)


def is_hamiltonian_cycle(cycle: Sequence[WordTuple], d: int, k: int) -> bool:
    """True when ``cycle`` visits every vertex once along left-shift arcs."""
    if len(cycle) != d**k or len(set(cycle)) != d**k:
        return False
    for index, vertex in enumerate(cycle):
        nxt = cycle[(index + 1) % len(cycle)]
        if vertex[1:] != nxt[:-1]:
            return False
    return True
