"""Kautz graphs K(d, k) — the de Bruijn family's denser sibling.

The Kautz graph is the classical companion of DG(d, k) in the
degree/diameter literature the paper draws on: vertices are length-k
words over a (d+1)-symbol alphabet with **no two consecutive symbols
equal**, giving ``N = d^k + d^(k-1)`` vertices of out-degree d with
diameter k — strictly more vertices than DG(d, k) at the same degree and
diameter.

The point of carrying it in this repository: the paper's Property 1
argument transfers *verbatim*.  A left shift appends a digit different
from the current last symbol, and the proof that ``D(X, Y) = k − l`` (l =
longest suffix of X that is a prefix of Y) never needs more: when the
overlap is ``l``, the next appended digit ``y_{l+1}`` automatically
differs from the register's last symbol ``x_k = y_l`` because ``Y`` is
itself a valid Kautz word.  So the same O(k) Morris–Pratt machinery routes
Kautz networks too — tested against BFS like everything else.
"""

from __future__ import annotations

from typing import Iterator, List, Set, Tuple

from repro.core.word import WordTuple, overlap_length
from repro.exceptions import InvalidParameterError, InvalidWordError, RoutingError


def validate_kautz_word(word: WordTuple, d: int, k: int) -> WordTuple:
    """Check ``word`` is a vertex of K(d, k): d+1 symbols, no repeats."""
    if d < 2 or k < 1:
        raise InvalidParameterError(f"K(d, k) needs d >= 2, k >= 1; got ({d}, {k})")
    w = tuple(word)
    if len(w) != k:
        raise InvalidWordError(f"expected length {k}, got {w!r}")
    for symbol in w:
        if not isinstance(symbol, int) or isinstance(symbol, bool) or not 0 <= symbol <= d:
            raise InvalidWordError(f"symbol {symbol!r} of {w!r} is not in 0..{d}")
    for left, right in zip(w, w[1:]):
        if left == right:
            raise InvalidWordError(f"{w!r} repeats a symbol consecutively")
    return w


class KautzGraph:
    """K(d, k): out-degree d, diameter k, ``d^k + d^(k-1)`` vertices."""

    def __init__(self, d: int, k: int) -> None:
        if d < 2 or k < 1:
            raise InvalidParameterError(f"K(d, k) needs d >= 2, k >= 1; got ({d}, {k})")
        self.d = d
        self.k = k

    @property
    def order(self) -> int:
        """``d^k + d^(k-1)`` vertices."""
        return self.d**self.k + self.d ** (self.k - 1)

    def vertices(self) -> Iterator[WordTuple]:
        """All Kautz words, lexicographically."""

        def extend(prefix: Tuple[int, ...]) -> Iterator[WordTuple]:
            if len(prefix) == self.k:
                yield prefix
                return
            for symbol in range(self.d + 1):
                if not prefix or symbol != prefix[-1]:
                    yield from extend(prefix + (symbol,))

        yield from extend(())

    def out_neighbors(self, word: WordTuple) -> Set[WordTuple]:
        """The d successors: append any symbol other than the last."""
        validate_kautz_word(word, self.d, self.k)
        return {word[1:] + (a,) for a in range(self.d + 1) if a != word[-1]}

    def in_neighbors(self, word: WordTuple) -> Set[WordTuple]:
        """The d predecessors: prepend any symbol other than the first."""
        validate_kautz_word(word, self.d, self.k)
        return {(a,) + word[:-1] for a in range(self.d + 1) if a != word[0]}

    def neighbors(self, word: WordTuple) -> Set[WordTuple]:
        """Out-neighbors (BFS helpers expect this name)."""
        return self.out_neighbors(word)

    def distance(self, x: WordTuple, y: WordTuple) -> int:
        """``k − l`` exactly as the paper's Property 1 (see module doc)."""
        validate_kautz_word(x, self.d, self.k)
        validate_kautz_word(y, self.d, self.k)
        return self.k - overlap_length(x, y)

    def route(self, x: WordTuple, y: WordTuple) -> List[int]:
        """Digits of the shortest route: spell ``y`` past the overlap."""
        distance = self.distance(x, y)
        digits = list(y[self.k - distance :])
        # Sanity: the first appended digit never collides with the last
        # register symbol (guaranteed by Y's own validity when l >= 1, and
        # checked here for l = 0).
        if digits and distance == self.k and digits[0] == x[-1]:
            raise RoutingError(
                f"route from {x!r} to {y!r} is blocked; "
                "this cannot happen for valid Kautz words"
            )
        return digits

    def apply_route(self, x: WordTuple, digits: List[int]) -> WordTuple:
        """Walk the route from ``x``, validating every shift."""
        current = validate_kautz_word(x, self.d, self.k)
        for digit in digits:
            if digit == current[-1]:
                raise RoutingError(f"appending {digit} to {current!r} repeats a symbol")
            current = current[1:] + (digit,)
        return current

    def edges(self) -> Iterator[Tuple[WordTuple, WordTuple]]:
        """All arcs (Kautz graphs have no self-loops by construction)."""
        for word in self.vertices():
            for nxt in sorted(self.out_neighbors(word)):
                yield word, nxt

    def __repr__(self) -> str:
        return f"KautzGraph(d={self.d}, k={self.k})"


def kautz_sequence(d: int, k: int) -> Tuple[int, ...]:
    """A Kautz sequence: the cyclic analogue of B(d, k) for K(d, k).

    An Eulerian circuit of K(d, k−1) spells a cyclic sequence of length
    ``d^k + d^(k-1)`` over ``d+1`` symbols with no two adjacent symbols
    equal (cyclically), whose length-k windows enumerate every Kautz word
    exactly once.  For ``k = 1`` the sequence is simply ``0..d`` (every
    1-window once, adjacent symbols distinct cyclically).
    """
    if d < 2 or k < 1:
        raise InvalidParameterError(f"K(d, k) needs d >= 2, k >= 1; got ({d}, {k})")
    if k == 1:
        return tuple(range(d + 1))
    graph = KautzGraph(d, k - 1)
    start = next(graph.vertices())
    # Hierholzer over the d out-arcs of each K(d, k-1) vertex; arcs are
    # consumed in ascending appended-symbol order for determinism.
    consumed: dict = {}
    stack = [start]
    spelled: List[int] = []
    while stack:
        vertex = stack[-1]
        options = [a for a in range(d + 1) if a != vertex[-1]]
        index = consumed.get(vertex, 0)
        if index < len(options):
            consumed[vertex] = index + 1
            stack.append(vertex[1:] + (options[index],))
        else:
            stack.pop()
            if stack:
                spelled.append(vertex[-1])
    spelled.reverse()
    expected = d**k + d ** (k - 1)
    if len(spelled) != expected:  # pragma: no cover - structural guarantee
        raise InvalidParameterError(
            f"Eulerian circuit spelled {len(spelled)} symbols, expected {expected}"
        )
    return tuple(spelled)


def is_kautz_sequence(sequence: Tuple[int, ...], d: int, k: int) -> bool:
    """True when every Kautz word appears exactly once as a cyclic window."""
    expected = d**k + d ** (k - 1)
    if len(sequence) != expected:
        return False
    extended = tuple(sequence) + tuple(sequence[: k - 1])
    seen = set()
    for i in range(expected):
        window = extended[i : i + k]
        try:
            validate_kautz_word(window, d, k)
        except InvalidWordError:
            return False
        if window in seen:
            return False
        seen.add(window)
    return len(seen) == expected
