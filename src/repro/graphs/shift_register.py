"""Shift registers and m-sequences: the paper's own picture of DG(d, k).

"This corresponds to the state graph of a shift register of length k using
d-ary digits.  A shift register goes from a state to another by doing a
shift operation."  (Paper §1.)  This module makes that correspondence
executable for the binary case:

* a *linear feedback shift register* (LFSR) walks a deterministic cycle
  inside DG(2, k) — each state's successor is one particular left shift;
* when the feedback polynomial is **primitive** over GF(2), the walk is an
  *m-sequence* visiting all ``2^k − 1`` nonzero states — a Hamiltonian
  cycle of DG(2, k) minus the all-zeros vertex;
* inserting a single extra 0 into an m-sequence at the ``0^{k-1}`` window
  yields a full de Bruijn sequence B(2, k) — the classical construction
  behind Etzion–Lempel-style generators, cross-checked here against the
  FKM and Eulerian constructions of :mod:`repro.graphs.sequences`.

Polynomials over GF(2) are represented as integer bitmasks with bit i
holding the coefficient of x^i (so ``0b10011`` is ``x^4 + x + 1``).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.core.word import WordTuple
from repro.exceptions import InvalidParameterError

Polynomial = int


def polynomial_degree(poly: Polynomial) -> int:
    """Degree of a GF(2) polynomial bitmask (-1 for the zero polynomial)."""
    return poly.bit_length() - 1


def polynomial_multiply(a: Polynomial, b: Polynomial) -> Polynomial:
    """Carry-less product of two GF(2) polynomials."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        b >>= 1
    return result


def polynomial_mod(a: Polynomial, modulus: Polynomial) -> Polynomial:
    """Remainder of ``a`` modulo ``modulus`` over GF(2)."""
    if modulus == 0:
        raise InvalidParameterError("cannot reduce modulo the zero polynomial")
    deg_m = polynomial_degree(modulus)
    while polynomial_degree(a) >= deg_m:
        a ^= modulus << (polynomial_degree(a) - deg_m)
    return a


def polynomial_pow_mod(base: Polynomial, exponent: int, modulus: Polynomial) -> Polynomial:
    """``base**exponent mod modulus`` over GF(2), by square-and-multiply."""
    result = 1
    base = polynomial_mod(base, modulus)
    while exponent:
        if exponent & 1:
            result = polynomial_mod(polynomial_multiply(result, base), modulus)
        base = polynomial_mod(polynomial_multiply(base, base), modulus)
        exponent >>= 1
    return result


def _prime_factors(n: int) -> List[int]:
    factors = []
    candidate = 2
    while candidate * candidate <= n:
        if n % candidate == 0:
            factors.append(candidate)
            while n % candidate == 0:
                n //= candidate
        candidate += 1
    if n > 1:
        factors.append(n)
    return factors


def is_irreducible(poly: Polynomial) -> bool:
    """Rabin's test for irreducibility over GF(2)."""
    degree = polynomial_degree(poly)
    if degree <= 0:
        return False
    x = 0b10
    # x^(2^degree) == x (mod poly) ...
    power = x
    for _ in range(degree):
        power = polynomial_mod(polynomial_multiply(power, power), poly)
    if power != polynomial_mod(x, poly):
        return False
    # ... and x^(2^(degree/p)) != x for every prime divisor p of degree.
    for prime in _prime_factors(degree):
        power = x
        for _ in range(degree // prime):
            power = polynomial_mod(polynomial_multiply(power, power), poly)
        if power == polynomial_mod(x, poly):
            return False
    return True


def is_primitive(poly: Polynomial) -> bool:
    """True when ``poly`` is primitive over GF(2) (generates GF(2^k)*)."""
    degree = polynomial_degree(poly)
    if degree <= 0 or not poly & 1:  # must have a nonzero constant term
        return False
    if not is_irreducible(poly):
        return False
    order = (1 << degree) - 1
    # x must have multiplicative order exactly 2^degree - 1.
    if polynomial_pow_mod(0b10, order, poly) != 1:
        return False
    for prime in _prime_factors(order):
        if polynomial_pow_mod(0b10, order // prime, poly) == 1:
            return False
    return True


def primitive_polynomials(degree: int, limit: int = 0) -> List[Polynomial]:
    """All (or the first ``limit``) primitive polynomials of a degree."""
    if degree < 1:
        raise InvalidParameterError("degree must be >= 1")
    found: List[Polynomial] = []
    base = 1 << degree
    for low_bits in range(1, base, 2):  # constant term must be 1
        poly = base | low_bits
        if is_primitive(poly):
            found.append(poly)
            if limit and len(found) >= limit:
                break
    return found


class LFSR:
    """A Fibonacci LFSR: state transitions are left shifts in DG(2, k).

    ``taps`` is the feedback polynomial bitmask (degree k).  The feedback
    bit is the XOR of the state bits selected by the polynomial's lower
    coefficients; the new state is ``state[1:] + (feedback,)`` — exactly
    ``X^-(feedback)``.
    """

    def __init__(self, taps: Polynomial, state: WordTuple) -> None:
        self.k = polynomial_degree(taps)
        if self.k < 1:
            raise InvalidParameterError(f"feedback polynomial {taps:#x} has no degree")
        if len(state) != self.k or any(bit not in (0, 1) for bit in state):
            raise InvalidParameterError(f"state {state!r} is not a binary word of length {self.k}")
        self.taps = taps
        self.state = tuple(state)

    def feedback(self) -> int:
        """The incoming digit of the next left shift.

        With the state window ``(s_n, …, s_{n+k-1})`` and characteristic
        polynomial ``x^k + c_{k-1}x^{k-1} + … + c_0``, the recurrence is
        ``s_{n+k} = XOR of c_i · s_{n+i}`` — coefficient ``c_i`` taps
        ``state[i]``.
        """
        bit = 0
        for i in range(self.k):
            if (self.taps >> i) & 1:
                bit ^= self.state[i]
        return bit

    def step(self) -> WordTuple:
        """Advance one shift; returns the new state."""
        self.state = self.state[1:] + (self.feedback(),)
        return self.state

    def states(self, count: int) -> Iterator[WordTuple]:
        """The next ``count`` states."""
        for _ in range(count):
            yield self.step()

    def period(self, cap: int = 1 << 24) -> int:
        """Cycle length of the current state's orbit."""
        start = self.state
        for steps in range(1, cap + 1):
            if self.step() == start:
                return steps
        raise InvalidParameterError("period exceeded the cap")  # pragma: no cover


def m_sequence(taps: Polynomial) -> Tuple[int, ...]:
    """The maximal-length output sequence of a primitive LFSR.

    Seeded with ``0…01``; the output digit per step is the *incoming*
    feedback bit, so the sequence of states are the sliding windows.
    Length ``2^k − 1``; every nonzero k-window appears exactly once.
    """
    if not is_primitive(taps):
        raise InvalidParameterError(f"{taps:#x} is not primitive; no m-sequence")
    k = polynomial_degree(taps)
    register = LFSR(taps, (0,) * (k - 1) + (1,))
    out: List[int] = []
    for _ in range((1 << k) - 1):
        out.append(register.feedback())
        register.step()
    return tuple(out)


def debruijn_from_m_sequence(taps: Polynomial) -> Tuple[int, ...]:
    """B(2, k) by inserting one 0 into the m-sequence's 0^(k-1) run.

    The m-sequence covers every nonzero window; stretching the unique run
    of ``k−1`` zeros to ``k`` zeros adds the all-zeros window exactly once.
    """
    k = polynomial_degree(taps)
    seq = list(m_sequence(taps))
    n = len(seq)
    # Find the start of the unique cyclic run of k-1 zeros: the position
    # where the previous symbol is 1 and the next k-1 symbols are 0.
    for start in range(n):
        if all(seq[(start + i) % n] == 0 for i in range(k - 1)) and seq[start - 1] == 1:
            return tuple(seq[:start] + [0] + seq[start:])
    raise InvalidParameterError("m-sequence lacks its zero run")  # pragma: no cover
