"""The de Bruijn graph DG(d, k) as an explicit graph object.

The routing core (:mod:`repro.core`) never materialises the graph — that is
the whole point of address-computable routing.  This module provides the
explicit view needed by everything else: BFS oracles, structural property
checks (Figure 1), the network simulator's topology, and the examples.

Following paper Section 1:

* the **directed** DG(d, k) has the arcs ``X -> X^-(a)`` (equivalently
  ``X^+(a) -> X``) for every vertex ``X`` and digit ``a`` — ``N·d`` arcs
  counted with multiplicity, including ``d`` self-loops at the constant
  words;
* the **undirected** DG(d, k) forgets the arc directions; after removing
  *redundant* edges (self-loops and coincident pairs) the paper's degree
  census emerges (see :mod:`repro.graphs.properties`).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from repro.core.word import (
    WordTuple,
    iter_words,
    left_shift,
    right_shift,
    validate_parameters,
    validate_word,
)

Edge = Tuple[WordTuple, WordTuple]


class DeBruijnGraph:
    """DG(d, k), directed or undirected, with implicit neighbor iteration.

    The graph is never stored; vertices are generated on demand and
    neighbor queries are O(d).  ``to_adjacency`` materialises a dict view
    for small graphs.

    >>> g = DeBruijnGraph(2, 3)
    >>> g.order
    8
    >>> sorted(g.out_neighbors((0, 1, 1)))
    [(1, 1, 0), (1, 1, 1)]
    """

    def __init__(self, d: int, k: int, directed: bool = True) -> None:
        validate_parameters(d, k)
        self.d = d
        self.k = k
        self.directed = directed

    # ------------------------------------------------------------------
    # Vertex set
    # ------------------------------------------------------------------

    @property
    def order(self) -> int:
        """Number of vertices, ``N = d**k``."""
        return self.d**self.k

    def vertices(self) -> Iterator[WordTuple]:
        """All vertices in lexicographic order."""
        return iter_words(self.d, self.k)

    def is_vertex(self, word: WordTuple) -> bool:
        """True when ``word`` is a valid vertex label of this graph."""
        try:
            validate_word(word, self.d, self.k)
        except Exception:
            return False
        return True

    # ------------------------------------------------------------------
    # Neighborhoods
    # ------------------------------------------------------------------

    def out_neighbors(self, word: WordTuple) -> Set[WordTuple]:
        """Distinct type-L successors ``X^-(a)`` (directed out-neighbors)."""
        return {left_shift(word, a) for a in range(self.d)}

    def in_neighbors(self, word: WordTuple) -> Set[WordTuple]:
        """Distinct type-R predecessors ``X^+(a)`` (directed in-neighbors)."""
        return {right_shift(word, a) for a in range(self.d)}

    def neighbors(self, word: WordTuple, include_self: bool = False) -> Set[WordTuple]:
        """Distinct neighbors for the chosen orientation.

        For the directed graph these are the out-neighbors; for the
        undirected graph, the union of both shift directions.  Self-loops
        (at the constant words) are dropped unless ``include_self``.
        """
        if self.directed:
            result = self.out_neighbors(word)
        else:
            result = self.out_neighbors(word) | self.in_neighbors(word)
        if not include_self:
            result.discard(word)
        return result

    def degree(self, word: WordTuple) -> int:
        """Degree after removing redundant edges (paper Section 1).

        Directed: out-degree plus in-degree over *distinct* arcs with
        self-loops removed.  Undirected: the number of distinct non-self
        neighbors (coincident type-L/type-R edges counted once).
        """
        if self.directed:
            outs = self.out_neighbors(word) - {word}
            ins = self.in_neighbors(word) - {word}
            return len(outs) + len(ins)
        return len(self.neighbors(word))

    # ------------------------------------------------------------------
    # Edge set
    # ------------------------------------------------------------------

    def arcs_with_multiplicity(self) -> Iterator[Edge]:
        """All ``N·d`` arcs ``X -> X^-(a)``, loops and duplicates included."""
        for word in self.vertices():
            for a in range(self.d):
                yield word, left_shift(word, a)

    def edges(self) -> Iterator[Edge]:
        """Simple edge set: redundant arcs removed (paper Section 1).

        Directed: distinct non-loop arcs ``X -> X^-(a)``.  Undirected:
        distinct non-loop unordered pairs, each yielded once with the
        lexicographically smaller endpoint first.
        """
        if self.directed:
            for word in self.vertices():
                for succ in sorted(self.out_neighbors(word)):
                    if succ != word:
                        yield word, succ
            return
        seen: Set[Edge] = set()
        for word in self.vertices():
            for nbr in self.neighbors(word):
                pair = (word, nbr) if word <= nbr else (nbr, word)
                if pair not in seen:
                    seen.add(pair)
                    yield pair

    def size(self) -> int:
        """Number of simple edges/arcs (after redundancy removal)."""
        return sum(1 for _ in self.edges())

    def has_edge(self, u: WordTuple, v: WordTuple) -> bool:
        """True when ``u -> v`` (directed) or ``u ~ v`` (undirected), u != v."""
        if u == v:
            return False
        if self.directed:
            return v in self.out_neighbors(u)
        return v in self.neighbors(u)

    def to_adjacency(self) -> Dict[WordTuple, List[WordTuple]]:
        """Materialised adjacency lists (sorted) — small graphs only."""
        return {word: sorted(self.neighbors(word)) for word in self.vertices()}

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------

    def __contains__(self, word: WordTuple) -> bool:
        return self.is_vertex(word)

    def __len__(self) -> int:
        return self.order

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return f"DeBruijnGraph(d={self.d}, k={self.k}, {kind})"


def directed_graph(d: int, k: int) -> DeBruijnGraph:
    """The directed DG(d, k) (uni-directional network topology)."""
    return DeBruijnGraph(d, k, directed=True)


def undirected_graph(d: int, k: int) -> DeBruijnGraph:
    """The undirected DG(d, k) (bi-directional network topology)."""
    return DeBruijnGraph(d, k, directed=False)
