"""Embeddings of standard topologies into DG(d, k) (Samatham–Pradhan).

Paper Section 1: "the binary de Bruijn network allows one to represent
various usual architectures such as linear arrays, rings, complete binary
trees and shuffle-exchange networks".  This module realises each of those
claims constructively:

* **ring / linear array** — a Hamiltonian cycle/path (dilation 1),
* **complete d-ary tree** of depth ``k - 1`` — dilation 1 via left-shift
  edges on words ``0^(k-1-j) 1 b_1 ... b_j``,
* **shuffle-exchange** — each SE move is emulated by at most 2 de Bruijn
  hops (shuffle = 1 left shift; exchange = right shift + left shift).

Every embedding returns explicit vertex maps or hop sequences that the
tests validate edge-by-edge against the graph's adjacency.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.routing import Direction, Path, RoutingStep
from repro.core.word import WordTuple, validate_parameters, validate_word
from repro.exceptions import InvalidParameterError
from repro.graphs.sequences import hamiltonian_cycle

#: A tree node is addressed by its root path: () is the root, path + (b,)
#: is its b-th child.
TreePath = Tuple[int, ...]


def embed_ring(d: int, k: int) -> List[WordTuple]:
    """A dilation-1 ring on all ``d**k`` vertices (Hamiltonian cycle)."""
    return hamiltonian_cycle(d, k)


def embed_linear_array(d: int, k: int) -> List[WordTuple]:
    """A dilation-1 linear array on all ``d**k`` vertices."""
    return hamiltonian_cycle(d, k)


def embed_complete_tree(d: int, k: int, arity: int = 2) -> Dict[TreePath, WordTuple]:
    """Embed the complete ``arity``-ary tree of depth ``k - 1`` into DG(d, k).

    Tree node with root path ``(b_1, ..., b_j)`` maps to the word
    ``0^(k-1-j) 1 b_1 ... b_j``; each parent-child pair is joined by a
    single left-shift edge, so the dilation is 1.  Requires ``arity <= d``
    and ``d >= 2`` (the marker digit 1 must exist).

    >>> tree = embed_complete_tree(2, 3)
    >>> tree[()]
    (0, 0, 1)
    >>> tree[(1,)]
    (0, 1, 1)
    """
    validate_parameters(d, k)
    if arity > d:
        raise InvalidParameterError(f"cannot embed an {arity}-ary tree in DG({d}, {k})")
    mapping: Dict[TreePath, WordTuple] = {}

    def visit(path: TreePath) -> None:
        j = len(path)
        word = (0,) * (k - 1 - j) + (1,) + path
        mapping[path] = word
        if j < k - 1:
            for branch in range(arity):
                visit(path + (branch,))

    visit(())
    return mapping


def tree_parent_edge(mapping: Dict[TreePath, WordTuple], path: TreePath) -> Tuple[WordTuple, WordTuple]:
    """The (parent word, child word) pair for a non-root tree node."""
    if not path:
        raise InvalidParameterError("the root has no parent edge")
    return mapping[path[:-1]], mapping[path]


def shuffle(word: WordTuple) -> WordTuple:
    """The shuffle-exchange 'shuffle': cyclic left rotation."""
    return word[1:] + (word[0],)


def exchange(word: WordTuple, d: int = 2) -> WordTuple:
    """The shuffle-exchange 'exchange': complement the last digit (binary)."""
    validate_word(word, max(d, 2), len(word))
    if d != 2:
        raise InvalidParameterError("the exchange operation is defined for binary words")
    return word[:-1] + (1 - word[-1],)


def shuffle_route(word: WordTuple) -> Path:
    """de Bruijn hops realising a shuffle: one left shift inserting x_1."""
    return [RoutingStep(Direction.LEFT, word[0])]


def exchange_route(word: WordTuple) -> Path:
    """de Bruijn hops realising an exchange: right shift then left shift.

    ``X -> X^+(*) -> (X^+(*))^-`` re-enters on the complemented last digit:
    two hops, matching the distance-2 lower bound whenever
    ``x_1 ... x_{k-1}`` is not completable in one hop.
    """
    flipped = 1 - word[-1]
    return [RoutingStep(Direction.RIGHT, None), RoutingStep(Direction.LEFT, flipped)]


def emulate_shuffle_exchange(word: WordTuple, operations: str) -> List[Path]:
    """Hop sequences emulating a string of SE operations ('s'/'e').

    Each 's' costs 1 de Bruijn hop and each 'e' costs 2, so any
    shuffle-exchange computation runs on DN(2, k) with slowdown at most 2
    (the Samatham–Pradhan emulation claim).
    """
    routes: List[Path] = []
    current = word
    for op in operations:
        if op == "s":
            routes.append(shuffle_route(current))
            current = shuffle(current)
        elif op == "e":
            routes.append(exchange_route(current))
            current = exchange(current)
        else:
            raise InvalidParameterError(f"unknown shuffle-exchange op {op!r}; use 's' or 'e'")
    return routes
