"""Structural properties of DG(d, k) — the paper's Section 1 facts.

Implements the degree census behind Figure 1's discussion, the diameter
claim, edge counts, and the line-digraph recursion (DG(d, k+1) is the line
digraph of DG(d, k)), each checkable against explicit enumeration.

A note on the undirected census: the scanned paper reads "there exist
``N − d²`` vertices of degree ``2d − 1`` and ``d`` vertices of degree
``2d − 2``", which cannot be the whole story (the two classes do not cover
the graph).  Exhaustive enumeration (see tests) shows the correct census
for ``k >= 2``:

* ``N − d²`` vertices of degree ``2d`` (generic words),
* ``d² − d`` vertices of degree ``2d − 1`` (non-constant alternating words
  ``xyxy...``, whose single coincident L/R edge pair merges), and
* ``d`` vertices of degree ``2d − 2`` (constant words, which lose a
  self-loop on each side).

:func:`expected_undirected_census` returns that corrected census.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Tuple

from repro.core.word import WordTuple
from repro.graphs.debruijn import DeBruijnGraph
from repro.graphs.traversal import bfs_distances
from repro.exceptions import InvalidParameterError


def degree_census(graph: DeBruijnGraph) -> Dict[int, int]:
    """Map ``degree -> number of vertices`` after redundancy removal."""
    return dict(Counter(graph.degree(v) for v in graph.vertices()))


def expected_directed_census(d: int, k: int) -> Dict[int, int]:
    """The paper's directed census: N−d vertices of degree 2d, d of 2d−2.

    For ``k == 1`` every vertex is "constant", so all ``d`` vertices have
    degree ``2d − 2`` and the generic class is empty; the same formula
    covers it since ``N − d == 0``.
    """
    n = d**k
    census = {2 * d: n - d, 2 * d - 2: d}
    return {deg: cnt for deg, cnt in census.items() if cnt > 0}


def expected_undirected_census(d: int, k: int) -> Dict[int, int]:
    """Corrected undirected census (see module docstring); requires k >= 2."""
    if k < 2:
        raise InvalidParameterError("the undirected census formula needs k >= 2")
    n = d**k
    census = {2 * d: n - d * d, 2 * d - 1: d * d - d, 2 * d - 2: d}
    return {deg: cnt for deg, cnt in census.items() if cnt > 0}


def count_arcs_with_multiplicity(graph: DeBruijnGraph) -> int:
    """``N · d`` — the paper's raw arc count before redundancy removal."""
    return sum(1 for _ in graph.arcs_with_multiplicity())


def self_loop_vertices(graph: DeBruijnGraph) -> Iterable[WordTuple]:
    """The ``d`` constant words, each carrying a self-loop."""
    for digit in range(graph.d):
        yield (digit,) * graph.k


def diameter(graph: DeBruijnGraph) -> int:
    """Exact diameter by BFS from every vertex (paper: equal to k).

    O(N² d) — intended for the small graphs the tests and Figure-1 bench
    use; the paper proves the value is ``k`` for every DG(d, k).
    """
    best = 0
    for source in graph.vertices():
        distances = bfs_distances(graph, source)
        if len(distances) != graph.order:
            raise InvalidParameterError("graph is not strongly connected")
        best = max(best, max(distances.values()))
    return best


def eccentricity(graph: DeBruijnGraph, source: WordTuple) -> int:
    """Largest BFS distance from ``source`` (must reach every vertex)."""
    distances = bfs_distances(graph, source)
    if len(distances) != graph.order:
        raise InvalidParameterError("graph is not strongly connected")
    return max(distances.values())


def is_connected(graph: DeBruijnGraph) -> bool:
    """True when every vertex is reachable from every other.

    For the directed graph this checks strong connectivity via BFS from a
    single vertex plus BFS on the reverse graph (in-neighbors).
    """
    source = next(graph.vertices())
    forward = bfs_distances(graph, source)
    if len(forward) != graph.order:
        return False
    if not graph.directed:
        return True
    backward = bfs_distances(graph, source, neighbor_fn=graph.in_neighbors)
    return len(backward) == graph.order


def line_digraph_vertex_map(d: int, k: int) -> Dict[Tuple[WordTuple, WordTuple], WordTuple]:
    """The isomorphism arc-of-DG(d,k) -> vertex-of-DG(d,k+1).

    The arc ``X -> X^-(a)`` maps to the word ``(x_1, ..., x_k, a)``.  The
    returned dict covers all ``N·d`` arcs (loops included, as the line
    digraph construction demands); tests verify the map is a digraph
    isomorphism onto DG(d, k+1).
    """
    graph = DeBruijnGraph(d, k, directed=True)
    mapping: Dict[Tuple[WordTuple, WordTuple], WordTuple] = {}
    for tail, head in graph.arcs_with_multiplicity():
        mapping[(tail, head)] = tail + (head[-1],)
    return mapping


def structural_report(graph: DeBruijnGraph) -> Dict[str, object]:
    """Everything the Figure-1 bench prints for one graph."""
    census = degree_census(graph)
    report: Dict[str, object] = {
        "d": graph.d,
        "k": graph.k,
        "directed": graph.directed,
        "order": graph.order,
        "raw_arcs": count_arcs_with_multiplicity(graph),
        "simple_edges": graph.size(),
        "degree_census": census,
        "self_loops": sum(1 for _ in self_loop_vertices(graph)),
        "connected": is_connected(graph),
    }
    if graph.order <= 4096:
        report["diameter"] = diameter(graph)
    return report
