"""de Bruijn graph substrate: explicit graphs, properties, sequences, embeddings."""

from repro.graphs.debruijn import DeBruijnGraph, directed_graph, undirected_graph
from repro.graphs.generalized import GeneralizedDeBruijnGraph, matches_debruijn
from repro.graphs.kautz import KautzGraph, validate_kautz_word
from repro.graphs.properties import (
    degree_census,
    diameter,
    expected_directed_census,
    expected_undirected_census,
    is_connected,
    structural_report,
)
from repro.graphs.sequences import (
    debruijn_sequence_euler,
    debruijn_sequence_lyndon,
    hamiltonian_cycle,
    is_debruijn_sequence,
    is_hamiltonian_cycle,
)
from repro.graphs.shift_register import (
    LFSR,
    debruijn_from_m_sequence,
    is_irreducible,
    is_primitive,
    m_sequence,
    primitive_polynomials,
)
from repro.graphs.traversal import bfs_distances, bfs_path, next_hop_table

__all__ = [
    "DeBruijnGraph",
    "GeneralizedDeBruijnGraph",
    "KautzGraph",
    "LFSR",
    "debruijn_from_m_sequence",
    "is_irreducible",
    "is_primitive",
    "m_sequence",
    "primitive_polynomials",
    "matches_debruijn",
    "validate_kautz_word",
    "bfs_distances",
    "bfs_path",
    "debruijn_sequence_euler",
    "debruijn_sequence_lyndon",
    "degree_census",
    "diameter",
    "directed_graph",
    "expected_directed_census",
    "expected_undirected_census",
    "hamiltonian_cycle",
    "is_connected",
    "is_debruijn_sequence",
    "is_hamiltonian_cycle",
    "next_hop_table",
    "structural_report",
    "undirected_graph",
]
