"""Breadth-first search on (implicit) de Bruijn graphs.

This is the baseline the paper's address-computable routing competes
against: table-driven shortest paths that cost O(N·d) time to set up and
O(N) memory per source, versus the O(k) = O(log N) pattern-matching
algorithms.  It doubles as the test oracle for every distance function.

The functions take anything with ``vertices()``/``neighbors(v)`` (e.g.
:class:`repro.graphs.debruijn.DeBruijnGraph`) or an explicit neighbor
function.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterable, List, Optional

from repro.core.word import WordTuple
from repro.exceptions import RoutingError

NeighborFn = Callable[[WordTuple], Iterable[WordTuple]]


def bfs_distances(
    graph, source: WordTuple, neighbor_fn: Optional[NeighborFn] = None
) -> Dict[WordTuple, int]:
    """Distances from ``source`` to every reachable vertex.

    ``neighbor_fn`` overrides the graph's own neighbor relation (used e.g.
    for reverse BFS or fault-filtered topologies).
    """
    nbrs = neighbor_fn if neighbor_fn is not None else graph.neighbors
    distances = {source: 0}
    queue = deque([source])
    while queue:
        current = queue.popleft()
        for nxt in nbrs(current):
            if nxt not in distances:
                distances[nxt] = distances[current] + 1
                queue.append(nxt)
    return distances


def bfs_parents(
    graph, source: WordTuple, neighbor_fn: Optional[NeighborFn] = None
) -> Dict[WordTuple, Optional[WordTuple]]:
    """BFS tree parents (``source`` maps to None)."""
    nbrs = neighbor_fn if neighbor_fn is not None else graph.neighbors
    parents: Dict[WordTuple, Optional[WordTuple]] = {source: None}
    queue = deque([source])
    while queue:
        current = queue.popleft()
        for nxt in nbrs(current):
            if nxt not in parents:
                parents[nxt] = current
                queue.append(nxt)
    return parents


def bfs_path(
    graph,
    source: WordTuple,
    target: WordTuple,
    neighbor_fn: Optional[NeighborFn] = None,
    avoid: Optional[Iterable[WordTuple]] = None,
) -> List[WordTuple]:
    """A shortest vertex sequence from ``source`` to ``target``.

    ``avoid`` removes vertices (e.g. failed nodes) from consideration;
    raises :class:`RoutingError` when no path survives.
    """
    blocked = frozenset(avoid) if avoid is not None else frozenset()
    if source in blocked or target in blocked:
        raise RoutingError("source or target is blocked")
    if source == target:
        return [source]
    base_nbrs = neighbor_fn if neighbor_fn is not None else graph.neighbors

    def nbrs(v: WordTuple) -> Iterable[WordTuple]:
        return (u for u in base_nbrs(v) if u not in blocked)

    parents: Dict[WordTuple, Optional[WordTuple]] = {source: None}
    queue = deque([source])
    while queue:
        current = queue.popleft()
        for nxt in nbrs(current):
            if nxt in parents:
                continue
            parents[nxt] = current
            if nxt == target:
                path = [nxt]
                while parents[path[-1]] is not None:
                    path.append(parents[path[-1]])
                path.reverse()
                return path
            queue.append(nxt)
    raise RoutingError(f"no path from {source!r} to {target!r} avoiding {len(blocked)} vertices")


def next_hop_table(graph, target: WordTuple) -> Dict[WordTuple, WordTuple]:
    """Table-driven routing baseline: best next hop toward ``target``.

    Built by BFS *from* the target over in-neighbors (directed) or
    neighbors (undirected), so following the table from any vertex traces a
    shortest path to ``target``.  O(N) memory per destination — the cost
    the paper's O(k) algorithms avoid.
    """
    reverse_nbrs = graph.in_neighbors if graph.directed else graph.neighbors
    parents = bfs_parents(graph, target, neighbor_fn=reverse_nbrs)
    table: Dict[WordTuple, WordTuple] = {}
    for vertex, parent in parents.items():
        if parent is not None:
            # parent is one step closer to target along the reverse BFS,
            # i.e. the best next hop from `vertex`.
            table[vertex] = parent
    return table


def eccentricities(graph) -> Dict[WordTuple, int]:
    """Map vertex -> eccentricity, by BFS from every vertex (small graphs)."""
    result = {}
    for vertex in graph.vertices():
        distances = bfs_distances(graph, vertex)
        result[vertex] = max(distances.values())
    return result
