"""Chord: the logarithmic-degree DHT baseline for the Koorde comparison.

Chord (Stoica et al., 2001) keeps ``b`` *finger* pointers per node —
``finger[j] = successor(m + 2^j)`` — and routes greedily through the
closest preceding finger.  It resolves lookups in ~½·log₂N hops but pays
O(log N) routing state per node; Koorde matches the hop count with O(1)
state, which is the whole point of building DHTs on de Bruijn graphs.
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Tuple

from repro.dht.koorde import LookupResult, _in_half_open
from repro.exceptions import InvalidParameterError, RoutingError


class ChordRing:
    """A static Chord ring over ``0 .. 2^b − 1`` with full finger tables."""

    def __init__(self, bits: int, nodes: Iterable[int]) -> None:
        if bits < 1:
            raise InvalidParameterError("need at least a 1-bit identifier space")
        self.bits = bits
        self.modulus = 1 << bits
        unique = sorted(set(nodes))
        if not unique:
            raise InvalidParameterError("a ring needs at least one node")
        for node in unique:
            if not 0 <= node < self.modulus:
                raise InvalidParameterError(f"node id {node} outside 0..{self.modulus - 1}")
        self.nodes: List[int] = unique
        self._fingers = {node: self._build_fingers(node) for node in unique}

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    def successor(self, ident: int) -> int:
        """The first node at or after ``ident`` (circularly)."""
        ident %= self.modulus
        index = bisect.bisect_left(self.nodes, ident)
        return self.nodes[0] if index == len(self.nodes) else self.nodes[index]

    def owner(self, key: int) -> int:
        """The node responsible for ``key``."""
        return self.successor(key)

    def next_node(self, node: int) -> int:
        """The ring successor of a node."""
        index = bisect.bisect_right(self.nodes, node)
        return self.nodes[0] if index == len(self.nodes) else self.nodes[index]

    def _build_fingers(self, node: int) -> List[int]:
        return [self.successor((node + (1 << j)) % self.modulus) for j in range(self.bits)]

    def state_size(self) -> int:
        """Pointers per node: b fingers (successor is finger[0])."""
        return self.bits

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def _closest_preceding(self, node: int, key: int) -> int:
        # Standard Chord: the highest finger in the open interval (node, key);
        # over integer identifiers that is the half-open (node, key-1].
        target = (key - 1) % self.modulus
        if target == node:
            return node
        for finger in reversed(self._fingers[node]):
            if finger != node and _in_half_open(finger, node, target, self.modulus):
                return finger
        return node

    def lookup(self, start: int, key: int, max_hops: int = 0) -> LookupResult:
        """Greedy finger routing from ``start`` to the owner of ``key``."""
        if start not in set(self.nodes):
            raise InvalidParameterError(f"start {start} is not a ring member")
        key %= self.modulus
        limit = max_hops if max_hops > 0 else 4 * self.bits + len(self.nodes)
        current = start
        path = [current]
        for _ in range(limit):
            nxt = self.next_node(current)
            if _in_half_open(key, current, nxt, self.modulus):
                path.append(nxt)
                return LookupResult(key=key, owner=nxt, hops=len(path) - 1, path=tuple(path))
            candidate = self._closest_preceding(current, key)
            if candidate == current:
                candidate = nxt
            current = candidate
            path.append(current)
        raise RoutingError(f"chord lookup for {key} exceeded {limit} hops")  # pragma: no cover

    def lookup_statistics(self, pairs: Iterable[Tuple[int, int]]) -> Tuple[float, int]:
        """(mean hops, max hops) over the given (start, key) pairs."""
        hops = [self.lookup(start, key).hops for start, key in pairs]
        count = len(hops) or 1
        return sum(hops) / count, max(hops) if hops else 0

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return f"ChordRing(bits={self.bits}, nodes={len(self.nodes)})"
