"""Koorde: the de Bruijn network as a distributed hash table.

Koorde (Kaashoek & Karger, IPTPS 2003) is the best-known modern
descendant of the paper's routing idea: peers live on the ``2^b`` identi-
fier ring, each keeps **two** pointers — its ring ``successor`` and one
*de Bruijn finger* ``d(m) = predecessor(2m)`` — and lookups walk left
shifts of an *imaginary* de Bruijn address exactly as DG(2, b) routing
would, detouring along successors whenever the imaginary address falls in
a gap between real nodes.  Constant degree, O(b) = O(log N) hops: the de
Bruijn degree/diameter trade carried into DHTs.

This module implements the static-membership protocol faithfully:

* :class:`KoordeRing` — sorted node identifiers over ``2^b``;
* per-node state: ``successor(m)`` and ``debruijn_finger(m)``;
* :meth:`KoordeRing.lookup` — the three-way rule from the Koorde paper::

      m.lookup(k, kshift, i):
          if k in (m, successor(m)]:      return successor(m)
          elif i in (m, successor(m)]:    hop to d(m), shift one bit of
                                          kshift into i
          else:                           hop to successor(m)

* the start-imaginary optimisation (choose ``i`` to share m's position
  while pre-loading high bits of ``k``) is exposed but optional, so tests
  can pin both the plain and the optimised behaviour.

When every identifier is populated, Koorde hops degenerate into exactly
the directed de Bruijn left-shift walk of the original paper — a property
the tests assert.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.exceptions import InvalidParameterError, RoutingError


def _in_half_open(value: int, lower: int, upper: int, modulus: int) -> bool:
    """True when ``value`` lies in the circular interval ``(lower, upper]``."""
    value %= modulus
    lower %= modulus
    upper %= modulus
    if lower == upper:
        return True  # a single node owns the whole ring
    if lower < upper:
        return lower < value <= upper
    return value > lower or value <= upper


def _in_left_closed(value: int, lower: int, upper: int, modulus: int) -> bool:
    """True when ``value`` lies in the circular interval ``[lower, upper)``."""
    value %= modulus
    lower %= modulus
    upper %= modulus
    if lower == upper:
        return True
    if lower < upper:
        return lower <= value < upper
    return value >= lower or value < upper


@dataclass(frozen=True)
class LookupResult:
    """The outcome of one lookup: owner plus the route taken."""

    key: int
    owner: int
    hops: int
    path: Tuple[int, ...]
    debruijn_hops: int = 0
    successor_hops: int = 0


class KoordeRing:
    """A static Koorde ring over the identifier space ``0 .. 2^b − 1``."""

    def __init__(self, bits: int, nodes: Iterable[int]) -> None:
        if bits < 1:
            raise InvalidParameterError("need at least a 1-bit identifier space")
        self.bits = bits
        self.modulus = 1 << bits
        unique = sorted(set(nodes))
        if not unique:
            raise InvalidParameterError("a ring needs at least one node")
        for node in unique:
            if not 0 <= node < self.modulus:
                raise InvalidParameterError(f"node id {node} outside 0..{self.modulus - 1}")
        self.nodes: List[int] = unique

    # ------------------------------------------------------------------
    # Ring geometry
    # ------------------------------------------------------------------

    def successor(self, ident: int) -> int:
        """The first node at or after ``ident`` (circularly)."""
        ident %= self.modulus
        index = bisect.bisect_left(self.nodes, ident)
        if index == len(self.nodes):
            return self.nodes[0]
        return self.nodes[index]

    def predecessor(self, ident: int) -> int:
        """The last node strictly before ``ident`` (circularly)."""
        ident %= self.modulus
        index = bisect.bisect_left(self.nodes, ident)
        if index == 0:
            return self.nodes[-1]
        return self.nodes[index - 1]

    def owner(self, key: int) -> int:
        """The node responsible for ``key``: its successor on the ring."""
        return self.successor(key)

    def next_node(self, node: int) -> int:
        """The ring successor *of a node* (the node after it)."""
        index = bisect.bisect_right(self.nodes, node)
        if index == len(self.nodes):
            return self.nodes[0]
        return self.nodes[index]

    def prev_node(self, node: int) -> int:
        """The ring predecessor *of a node* (the node before it)."""
        index = bisect.bisect_left(self.nodes, node)
        if index == 0:
            return self.nodes[-1]
        return self.nodes[index - 1]

    def debruijn_finger(self, node: int) -> int:
        """Koorde's second pointer: ``predecessor(2m)``."""
        return self.predecessor((2 * node) % self.modulus)

    def state_size(self) -> int:
        """Pointers per node: successor + de Bruijn finger."""
        return 2

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def best_start_imaginary(self, node: int, key: int) -> Tuple[int, int]:
        """The start-imaginary optimisation from the Koorde paper.

        Choose the imaginary address ``i`` as ``node`` with its low ``j``
        bits replaced by the high ``j`` bits of ``key``, for the largest
        ``j`` that keeps ``i`` inside ``node``'s imaginary responsibility
        zone ``[node, next(node))`` — those ``j`` key bits are then
        pre-consumed, saving ``j`` de Bruijn hops.  Returns
        ``(i, kshift)`` with the unconsumed key bits left-aligned.
        ``j = 0`` (``i = node``, ``kshift = key``) always qualifies.
        """
        upper = self.next_node(node)
        for j in range(self.bits, -1, -1):
            if j == 0:
                candidate = node
            elif j == self.bits:
                candidate = key
            else:
                mask = (1 << j) - 1
                candidate = (node & ~mask) | (key >> (self.bits - j))
            if _in_left_closed(candidate, node, upper, self.modulus):
                return candidate, (key << j) % self.modulus
        return node, key  # pragma: no cover - j = 0 always matches

    def lookup(
        self,
        start: int,
        key: int,
        optimized_start: bool = True,
        max_hops: Optional[int] = None,
    ) -> LookupResult:
        """Route a lookup from node ``start`` to the owner of ``key``."""
        if start not in set(self.nodes):
            raise InvalidParameterError(f"start {start} is not a ring member")
        key %= self.modulus
        if optimized_start:
            i, kshift = self.best_start_imaginary(start, key)
        else:
            i, kshift = start, key
        # Worst-case guard: <= bits de Bruijn hops, each followed by at
        # most a full successor sweep (pathological placements only).
        limit = max_hops if max_hops is not None else self.bits * (len(self.nodes) + 2) + 4
        current = start
        path = [current]
        debruijn_hops = 0
        successor_hops = 0
        for _ in range(limit):
            # Rule 0 (local ownership): my predecessor gap is mine.
            if _in_half_open(key, self.prev_node(current), current, self.modulus):
                return LookupResult(
                    key=key, owner=current, hops=len(path) - 1, path=tuple(path),
                    debruijn_hops=debruijn_hops, successor_hops=successor_hops,
                )
            nxt = self.next_node(current)
            # Rule 1: the key lives in my successor gap — hand it over.
            if _in_half_open(key, current, nxt, self.modulus):
                path.append(nxt)
                return LookupResult(
                    key=key, owner=nxt, hops=len(path) - 1, path=tuple(path),
                    debruijn_hops=debruijn_hops, successor_hops=successor_hops + 1,
                )
            # Rule 2: I host the imaginary address — take the de Bruijn
            # hop, shifting the next key bit into the imaginary register.
            if _in_left_closed(i, current, nxt, self.modulus):
                top_bit = (kshift >> (self.bits - 1)) & 1
                i = ((2 * i) + top_bit) % self.modulus
                kshift = (kshift << 1) % self.modulus
                current = self.debruijn_finger(current)
                debruijn_hops += 1
            # Rule 3: walk the ring toward the imaginary address.
            else:
                current = nxt
                successor_hops += 1
            path.append(current)
        raise RoutingError(
            f"lookup for {key} from {start} exceeded {limit} hops"
        )

    # ------------------------------------------------------------------
    # Bulk analytics
    # ------------------------------------------------------------------

    def lookup_statistics(
        self, pairs: Iterable[Tuple[int, int]], optimized_start: bool = True
    ) -> Tuple[float, int, float, float]:
        """(mean hops, max hops, mean de-Bruijn hops, mean successor hops)."""
        hops: List[int] = []
        db: List[int] = []
        succ: List[int] = []
        for start, key in pairs:
            result = self.lookup(start, key, optimized_start=optimized_start)
            hops.append(result.hops)
            db.append(result.debruijn_hops)
            succ.append(result.successor_hops)
        count = len(hops) or 1
        return (
            sum(hops) / count,
            max(hops) if hops else 0,
            sum(db) / count,
            sum(succ) / count,
        )

    # ------------------------------------------------------------------
    # Membership changes (static rebuild semantics)
    # ------------------------------------------------------------------

    def with_node(self, node: int) -> "KoordeRing":
        """A new ring with ``node`` joined (pointers recomputed).

        Static-membership model: the dynamic join/stabilise protocol of
        the Koorde paper converges to exactly this pointer state.
        """
        return KoordeRing(self.bits, list(self.nodes) + [node])

    def without_node(self, node: int) -> "KoordeRing":
        """A new ring with ``node`` departed; its keys fall to its successor."""
        remaining = [n for n in self.nodes if n != node]
        if not remaining:
            raise InvalidParameterError("cannot remove the last node")
        return KoordeRing(self.bits, remaining)

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return f"KoordeRing(bits={self.bits}, nodes={len(self.nodes)})"
