"""Distributed hash tables on de Bruijn routing (Koorde) vs Chord."""

from repro.dht.chord import ChordRing
from repro.dht.koorde import KoordeRing, LookupResult

__all__ = ["ChordRing", "KoordeRing", "LookupResult"]
