"""Exception hierarchy for the de Bruijn routing library.

All library-raised errors derive from :class:`DeBruijnError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` from bad call signatures,
etc.) propagate unchanged.
"""

from __future__ import annotations


class DeBruijnError(Exception):
    """Base class for all errors raised by this library."""


class InvalidWordError(DeBruijnError, ValueError):
    """A vertex label is not a valid d-ary word of the expected length."""


class InvalidParameterError(DeBruijnError, ValueError):
    """A graph or algorithm parameter (d, k, ...) is out of range."""


class RoutingError(DeBruijnError):
    """A routing path could not be produced or applied."""


class WirePathError(RoutingError):
    """A routing-path field is malformed (bad shift type or digit)."""


class ServiceError(DeBruijnError):
    """The route-query service could not serve a request or connection."""


class ProtocolError(ServiceError):
    """A service wire frame is malformed or violates the protocol."""


class SimulationError(DeBruijnError):
    """The network simulator was driven into an inconsistent state."""


class NodeFailedError(SimulationError):
    """A message was handed to a failed node or link."""


class DeliveryError(SimulationError):
    """A message ended its routing path at the wrong destination."""
