"""Distance functions of the de Bruijn graph DG(d, k) (paper Section 2).

Directed graph (Property 1)
    ``D(X, Y) = k − l`` where ``l`` is the longest suffix of ``X`` equal to
    a prefix of ``Y``.

Undirected graph (Theorem 2 / Corollary 4)
    ``D(X, Y) = 2k − 1 + min( min_{i,j} (i − j − l_{i,j}),
    min_{i,j} (−i + j − r_{i,j}) )``, capped at the diameter ``k``.

    Re-parametrised over forward common substrings
    ``x[a : a+s] == y[b : b+s]`` (0-based, ``s >= 1``) this reads

    ``D(X, Y) = min(k, min_{(a,b,s)} (2k − 2s − |a − b|))``

    — see DESIGN.md Section 2 for the derivation and the exhaustive BFS
    cross-check.  Three implementations are provided: an O(k³)
    definition-level reference, the paper's O(k²) matching-function route
    (Algorithm 2's core) and the O(k) suffix-tree route (Algorithm 4's
    role).

All functions accept plain digit tuples (see :mod:`repro.core.word`); none
of them need the alphabet size ``d`` — the distances depend only on the
digit patterns of the two labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

from repro.core.matching import (
    common_substrings_brute,
    matching_row_l,
    matching_row_r,
)
from repro.core.suffix_tree import GeneralizedSuffixTree
from repro.core.word import WordTuple, overlap_length
from repro.exceptions import InvalidWordError

#: k at or below which the O(k^2) matching method beats the suffix tree's
#: constant factor.  Measured (not guessed): the crossover sweep of
#: benchmarks/bench_routing_throughput.py times undirected_witness via
#: both methods on 300 random d=2 pairs per k (best of 3 repetitions).
#: On this container's CPython, matching wins clearly through k=10
#: (ratio 0.64-0.85) and the two methods stay within ~25% of each other
#: for k=12-20, so the exact crossing is noise-limited inside that band;
#: 14 is its midpoint, and the bench asserts the constant stays inside
#: the band.  Re-run the bench to recalibrate on new hardware (the
#: measurement lands in BENCH_routing_throughput.json and
#: EXPERIMENTS.md E17).
AUTO_METHOD_CUTOVER = 14

#: When true, ``undirected_witness(method="brute")`` re-derives the
#: distance from the O(k^3) definition and asserts it against the witness.
#: Off by default: the brute re-check doubles (or worse) the cost of every
#: brute call, which is exactly what the test-oracle path does not need
#: when it is itself the thing under test.
BRUTE_CHECKS_WITNESS = False

Method = Literal["auto", "suffix_tree", "matching", "brute"]

Case = Literal["l", "r", "trivial"]


def directed_distance(x: WordTuple, y: WordTuple) -> int:
    """Distance from ``x`` to ``y`` in the *directed* DG(d, k) (Property 1).

    O(k) time via the Morris–Pratt overlap; note the directed distance is
    not symmetric.

    >>> directed_distance((0, 1, 1), (1, 1, 0))
    1
    >>> directed_distance((1, 1, 0), (0, 1, 1))
    2
    """
    return len(x) - overlap_length(x, y)


def directed_distance_brute(x: WordTuple, y: WordTuple) -> int:
    """Definition-level directed distance (O(k²)); test oracle."""
    k = len(x)
    if k != len(y):
        raise InvalidWordError("words must have equal length")
    best = 0
    for s in range(1, k + 1):
        if tuple(x[k - s :]) == tuple(y[:s]):
            best = s
    return k - best


@dataclass(frozen=True)
class UndirectedWitness:
    """Why the undirected distance takes its value, in the paper's terms.

    ``case`` is ``"l"`` for the route ``L^p R^q L^r`` (Algorithm 2 line 8),
    ``"r"`` for ``R^p L^q R^r`` (line 9) and ``"trivial"`` for the diameter
    path of ``k`` left shifts (line 6).  ``i``, ``j`` are the paper's
    1-based anchor indices (``s_1, t_1`` or ``s_2, t_2``) and ``theta`` the
    matched-block length (``θ_1`` or ``θ_2``); all zero for the trivial
    case.
    """

    distance: int
    case: Case
    i: int = 0
    j: int = 0
    theta: int = 0


def undirected_distance_brute(x: WordTuple, y: WordTuple) -> int:
    """O(k³) undirected distance straight from the common-substring form."""
    k = _common_length(x, y)
    best = k
    for a, b, s in common_substrings_brute(x, y):
        candidate = 2 * k - 2 * s - abs(a - b)
        if candidate < best:
            best = candidate
    return max(best, 0)


def undirected_witness_matching(x: WordTuple, y: WordTuple) -> UndirectedWitness:
    """Theorem 2 evaluated with Algorithm 3 rows: O(k²) time, O(k) space.

    This is the computational core of the paper's Algorithm 2, including
    its linear-space refinement (one matching row in memory at a time).
    """
    k = _common_length(x, y)
    best_l: Optional[tuple] = None  # (distance, i_1based, j_1based, theta)
    best_r: Optional[tuple] = None
    for i in range(k):
        row_l = matching_row_l(x, y, i)
        for j in range(k):
            value = 2 * k - 1 + (i + 1) - (j + 1) - row_l[j]
            if row_l[j] >= 1 and (best_l is None or value < best_l[0]):
                best_l = (value, i + 1, j + 1, row_l[j])
        row_r = matching_row_r(x, y, i)
        for j in range(k):
            value = 2 * k - 1 - (i + 1) + (j + 1) - row_r[j]
            if row_r[j] >= 1 and (best_r is None or value < best_r[0]):
                best_r = (value, i + 1, j + 1, row_r[j])
    return _pick_witness(best_l, best_r, k)


def undirected_witness_suffix_tree(x: WordTuple, y: WordTuple) -> UndirectedWitness:
    """Theorem 2 evaluated on a generalized suffix tree: O(k) time and space.

    Plays the role of the paper's Algorithm 4 (Weiner prefix trees of
    ``S``/``S̄`` with the ``p(v)``, ``q(v)`` leaf minima); see DESIGN.md
    Section 2 for the exact correspondence.
    """
    k = _common_length(x, y)
    tree = GeneralizedSuffixTree(x, y)
    align_l, align_r = tree.best_alignments()
    best_l = best_r = None
    if align_l is not None and align_l.s >= 1:
        # l-case: i = a+1, j = b+s (1-based), theta = s.
        distance = 2 * k - 2 * align_l.s - (align_l.b - align_l.a)
        best_l = (distance, align_l.a + 1, align_l.b + align_l.s, align_l.s)
    if align_r is not None and align_r.s >= 1:
        # r-case: i = a+s, j = b+1 (1-based), theta = s.
        distance = 2 * k - 2 * align_r.s - (align_r.a - align_r.b)
        best_r = (distance, align_r.a + align_r.s, align_r.b + 1, align_r.s)
    return _pick_witness(best_l, best_r, k)


def undirected_witness(x: WordTuple, y: WordTuple, method: Method = "auto") -> UndirectedWitness:
    """Dispatch to the requested (or size-appropriate) witness computation."""
    if method == "auto":
        method = "matching" if len(x) <= AUTO_METHOD_CUTOVER else "suffix_tree"
    if method == "matching":
        return undirected_witness_matching(x, y)
    if method == "suffix_tree":
        return undirected_witness_suffix_tree(x, y)
    if method == "brute":
        # The witness is computed once; the O(k^3) definitional distance
        # is only re-derived as a cross-check under the debug flag.
        witness = undirected_witness_matching(x, y)
        if BRUTE_CHECKS_WITNESS:
            distance = undirected_distance_brute(x, y)
            if witness.distance != distance:  # pragma: no cover - defensive
                raise AssertionError("brute and matching methods disagree")
        return witness
    raise ValueError(f"unknown method {method!r}")


def undirected_distance(x: WordTuple, y: WordTuple, method: Method = "auto") -> int:
    """Distance between ``x`` and ``y`` in the *undirected* DG(d, k).

    >>> undirected_distance((0, 0, 1), (1, 1, 1))
    2
    >>> undirected_distance((0, 1, 0), (0, 1, 0))
    0
    """
    if method == "brute":
        return undirected_distance_brute(x, y)
    return undirected_witness(x, y, method).distance


def distances_from(
    x: WordTuple, d: int, directed: bool = False
) -> "dict[WordTuple, int]":
    """Distances from ``x`` to every vertex of DG(d, k), by implicit BFS.

    O(N·d) — far cheaper than N separate O(k)/O(k²) pair computations when
    a whole row of the distance matrix is needed (e.g. building gravity
    tables or eccentricity checks).  Cross-validated against the pair
    functions in the tests.
    """
    from collections import deque

    from repro.core.word import left_shift, right_shift, validate_word

    k = len(x)
    validate_word(x, d, k)
    dist = {x: 0}
    queue = deque([x])
    while queue:
        current = queue.popleft()
        nbrs = [left_shift(current, a) for a in range(d)]
        if not directed:
            nbrs.extend(right_shift(current, a) for a in range(d))
        for nxt in nbrs:
            if nxt not in dist:
                dist[nxt] = dist[current] + 1
                queue.append(nxt)
    return dist


def _common_length(x: WordTuple, y: WordTuple) -> int:
    if len(x) != len(y):
        raise InvalidWordError(f"words {x!r} and {y!r} have different lengths")
    if not x:
        raise InvalidWordError("words must be non-empty")
    return len(x)


def _pick_witness(best_l, best_r, k: int) -> UndirectedWitness:
    candidates = [w for w in (best_l, best_r) if w is not None]
    if not candidates:
        return UndirectedWitness(k, "trivial")
    distance = min(w[0] for w in candidates)
    if distance >= k:
        # The trivial k-left-shift path is at least as good (line 6 of
        # Algorithm 2 handles the D1 = D2 = k situation).
        return UndirectedWitness(k, "trivial")
    if best_l is not None and best_l[0] == distance:
        return UndirectedWitness(distance, "l", best_l[1], best_l[2], best_l[3])
    assert best_r is not None
    return UndirectedWitness(distance, "r", best_r[1], best_r[2], best_r[3])
