"""d-ary words: the vertex labels of the de Bruijn graph DG(d, k).

A vertex of DG(d, k) is a word ``X = (x_1, ..., x_k)`` with each digit in
``{0, ..., d-1}``.  Following the paper (Liu, 1989, Section 1), the two
shift operations are

* the *left shift* ``X^-(a) = (x_2, ..., x_k, a)`` — drop the head digit and
  append ``a`` on the right (a *type-L* neighbor), and
* the *right shift* ``X^+(a) = (a, x_1, ..., x_{k-1})`` — drop the tail digit
  and prepend ``a`` on the left (a *type-R* neighbor).

Internally every algorithm in this package works on plain tuples of small
ints, which are hashable, comparable and cheap.  This module provides the
tuple-level primitives plus a thin :class:`Word` convenience wrapper for
interactive use (pretty printing, parsing from strings such as ``"0110"``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING, Iterator, Sequence, Tuple

from repro.exceptions import InvalidParameterError, InvalidWordError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (packed imports word)
    from repro.core.packed import PackedSpace

WordTuple = Tuple[int, ...]

#: Largest alphabet for which single-character digit parsing is supported.
MAX_PARSE_ALPHABET = 36

_DIGITS = "0123456789abcdefghijklmnopqrstuvwxyz"


def validate_parameters(d: int, k: int) -> None:
    """Check that (d, k) describe a de Bruijn graph per the paper (d>=2, k>=1).

    Raises :class:`InvalidParameterError` otherwise.
    """
    if not isinstance(d, int) or isinstance(d, bool):
        raise InvalidParameterError(f"alphabet size d must be an int, got {d!r}")
    if not isinstance(k, int) or isinstance(k, bool):
        raise InvalidParameterError(f"word length k must be an int, got {k!r}")
    if d < 2:
        raise InvalidParameterError(f"alphabet size d must be >= 2, got {d}")
    if k < 1:
        raise InvalidParameterError(f"word length k must be >= 1, got {k}")


def validate_word(word: Sequence[int], d: int, k: int) -> WordTuple:
    """Validate ``word`` as a vertex of DG(d, k) and return it as a tuple.

    Accepts any sequence of ints; raises :class:`InvalidWordError` when the
    length is not ``k`` or any digit falls outside ``{0, ..., d-1}``.
    """
    validate_parameters(d, k)
    w = tuple(word)
    if len(w) != k:
        raise InvalidWordError(f"expected a word of length {k}, got {w!r} of length {len(w)}")
    for digit in w:
        if not isinstance(digit, int) or isinstance(digit, bool) or not 0 <= digit < d:
            raise InvalidWordError(f"digit {digit!r} of {w!r} is not in 0..{d - 1}")
    return w


def left_shift(word: WordTuple, digit: int) -> WordTuple:
    """Return ``X^-(digit)``: drop the head, append ``digit`` on the right."""
    return word[1:] + (digit,)


def right_shift(word: WordTuple, digit: int) -> WordTuple:
    """Return ``X^+(digit)``: drop the tail, prepend ``digit`` on the left."""
    return (digit,) + word[:-1]


def left_neighbors(word: WordTuple, d: int) -> Iterator[WordTuple]:
    """Iterate all type-L neighbors ``X^-(a)`` for ``a`` in ``0..d-1``."""
    body = word[1:]
    for a in range(d):
        yield body + (a,)


def right_neighbors(word: WordTuple, d: int) -> Iterator[WordTuple]:
    """Iterate all type-R neighbors ``X^+(a)`` for ``a`` in ``0..d-1``."""
    body = word[:-1]
    for a in range(d):
        yield (a,) + body


def all_neighbors(word: WordTuple, d: int) -> Iterator[WordTuple]:
    """Iterate type-L then type-R neighbors (2d words, possibly repeating)."""
    yield from left_neighbors(word, d)
    yield from right_neighbors(word, d)


def word_to_int(word: WordTuple, d: int) -> int:
    """Encode a word as its base-``d`` integer value (head digit most significant)."""
    value = 0
    for digit in word:
        value = value * d + digit
    return value


def int_to_word(value: int, d: int, k: int) -> WordTuple:
    """Decode the base-``d`` integer ``value`` into a length-``k`` word.

    Raises :class:`InvalidWordError` when ``value`` is outside ``0 .. d**k - 1``.
    """
    validate_parameters(d, k)
    if not 0 <= value < d**k:
        raise InvalidWordError(f"integer {value} is outside 0..{d**k - 1} for DG({d},{k})")
    digits = []
    for _ in range(k):
        value, rem = divmod(value, d)
        digits.append(rem)
    return tuple(reversed(digits))


def parse_word(text: str, d: int) -> WordTuple:
    """Parse a word from a compact string such as ``"0110"`` (base-d digits).

    Digits beyond 9 use lowercase letters (``a`` = 10, ... ``z`` = 35), so
    alphabets up to ``d = 36`` round-trip through :func:`format_word`.
    """
    if d > MAX_PARSE_ALPHABET:
        raise InvalidParameterError(
            f"string parsing supports d <= {MAX_PARSE_ALPHABET}, got d={d}; "
            "construct the tuple directly instead"
        )
    digits = []
    for ch in text.strip():
        value = _DIGITS.find(ch.lower())
        if value < 0 or value >= d:
            raise InvalidWordError(f"character {ch!r} of {text!r} is not a base-{d} digit")
        digits.append(value)
    if not digits:
        raise InvalidWordError("cannot parse an empty word")
    return tuple(digits)


def format_word(word: WordTuple) -> str:
    """Format a word as the compact string accepted by :func:`parse_word`."""
    try:
        return "".join(_DIGITS[digit] for digit in word)
    except IndexError:
        return "(" + ",".join(str(digit) for digit in word) + ")"


def iter_words(d: int, k: int) -> Iterator[WordTuple]:
    """Iterate all ``d**k`` vertices of DG(d, k) in lexicographic order."""
    validate_parameters(d, k)
    word = [0] * k
    while True:
        yield tuple(word)
        # Odometer increment in base d, most significant digit first.
        pos = k - 1
        while pos >= 0 and word[pos] == d - 1:
            word[pos] = 0
            pos -= 1
        if pos < 0:
            return
        word[pos] += 1


def random_word(d: int, k: int, rng: random.Random | None = None) -> WordTuple:
    """Draw a uniformly random vertex of DG(d, k)."""
    validate_parameters(d, k)
    generator = rng if rng is not None else random
    return tuple(generator.randrange(d) for _ in range(k))


@lru_cache(maxsize=None)
def packed_space(d: int, k: int) -> "PackedSpace":
    """The cached :class:`repro.core.packed.PackedSpace` for DG(d, k).

    Zero-copy adapter between the tuple world and the packed-int world:
    ``packed_space(d, k).pack(word)`` produces the same encoding as
    :func:`word_to_int`, so graph and network code can opt in to packed
    arithmetic without any data conversion beyond the int itself (which
    CPython interns for small graphs).  The cache makes repeated adapter
    lookups free in hot loops.
    """
    from repro.core.packed import PackedSpace  # local import: avoid cycle

    return PackedSpace(d, k)


def to_packed(word: WordTuple, d: int) -> int:
    """Pack a validated tuple word into its base-d integer (see packed.py)."""
    return packed_space(d, len(word)).pack_checked(word)


def from_packed(value: int, d: int, k: int) -> WordTuple:
    """Unpack a base-d integer back into a tuple word."""
    return packed_space(d, k).unpack(value)


def overlap_length(x: WordTuple, y: WordTuple) -> int:
    """Length of the longest suffix of ``x`` that equals a prefix of ``y``.

    This is the quantity ``l`` of the paper's equation (2); the directed
    distance is ``k - l`` (Property 1).  Runs in O(k) time via the failure
    function of the string ``y # x`` (``#`` a fresh separator): the failure
    value at the last position is the longest prefix of ``y`` that is also a
    suffix of ``x``, and the separator caps it at ``k``.
    """
    k = len(x)
    if k != len(y):
        raise InvalidWordError(f"words {x!r} and {y!r} have different lengths")
    from repro.core.matching import failure_function  # local import: avoid cycle

    separator = -1  # never a valid digit, so matches cannot cross it
    return failure_function(y + (separator,) + x)[-1]


@dataclass(frozen=True)
class Word:
    """A vertex of DG(d, k): an immutable d-ary word with its alphabet size.

    The wrapper exists for ergonomic interactive use; the algorithmic core
    of the library operates on bare tuples (see :data:`WordTuple`).

    >>> w = Word.parse("0110", d=2)
    >>> w.left(1)
    Word('1101', d=2)
    >>> w.right(0).digits
    (0, 0, 1, 1)
    """

    digits: WordTuple
    d: int

    def __post_init__(self) -> None:
        validate_word(self.digits, self.d, len(self.digits))

    @classmethod
    def parse(cls, text: str, d: int) -> "Word":
        """Build a :class:`Word` from a compact digit string."""
        return cls(parse_word(text, d), d)

    @classmethod
    def from_int(cls, value: int, d: int, k: int) -> "Word":
        """Build a :class:`Word` from its base-d integer encoding."""
        return cls(int_to_word(value, d, k), d)

    @property
    def k(self) -> int:
        """The word length (the de Bruijn graph's diameter)."""
        return len(self.digits)

    def left(self, digit: int) -> "Word":
        """Type-L neighbor ``X^-(digit)``."""
        validate_word((digit,), self.d, 1)
        return Word(left_shift(self.digits, digit), self.d)

    def right(self, digit: int) -> "Word":
        """Type-R neighbor ``X^+(digit)``."""
        validate_word((digit,), self.d, 1)
        return Word(right_shift(self.digits, digit), self.d)

    def neighbors(self) -> Iterator["Word"]:
        """All 2d (not necessarily distinct) neighbors, type-L first."""
        for tup in all_neighbors(self.digits, self.d):
            yield Word(tup, self.d)

    def to_int(self) -> int:
        """Base-d integer encoding of this word."""
        return word_to_int(self.digits, self.d)

    def to_packed(self) -> int:
        """Packed encoding (identical to :meth:`to_int`; see packed.py)."""
        return packed_space(self.d, len(self.digits)).pack(self.digits)

    @classmethod
    def from_packed(cls, value: int, d: int, k: int) -> "Word":
        """Build a :class:`Word` from a packed base-d integer."""
        return cls(from_packed(value, d, k), d)

    def reversed(self) -> "Word":
        """The digit-reversed word (the paper's ``X̄``)."""
        return Word(tuple(reversed(self.digits)), self.d)

    def __str__(self) -> str:
        return format_word(self.digits)

    def __repr__(self) -> str:
        return f"Word({format_word(self.digits)!r}, d={self.d})"

    def __iter__(self) -> Iterator[int]:
        return iter(self.digits)

    def __len__(self) -> int:
        return len(self.digits)

    def __getitem__(self, index):
        return self.digits[index]
