"""Matching functions — the paper's Algorithm 3 (Morris–Pratt machinery).

The undirected distance function (Theorem 2) is phrased in terms of two
*matching functions* over vertices ``X = x_1 ... x_k`` and ``Y = y_1 ... y_k``
(paper equations (8) and (9), 1-based):

``l_{i,j}(X, Y)``
    the longest ``s`` such that ``x_i ... x_{i+s-1} = y_{j-s+1} ... y_j`` —
    a forward substring of ``X`` anchored at its *start* ``i`` matching a
    forward substring of ``Y`` anchored at its *end* ``j``.

``r_{i,j}(X, Y)``
    the longest ``s`` such that ``x_{i-s+1} ... x_i = y_j ... y_{j+s-1}`` —
    ``X`` anchored at its end ``i``, ``Y`` anchored at its start ``j``.

This module computes one full row ``l_{i,1..k}`` in O(k) with the
Morris–Pratt failure function, exactly as the paper's Algorithm 3: build the
failure function ``c_{i,*}`` of the pattern ``x_i ... x_k`` (lines 1-7), then
stream ``Y`` through it (lines 8-14), falling back through ``c`` on
mismatches and after full-pattern matches.

All public functions use **0-based indices**; ``l(i, j)`` here equals the
paper's ``l_{i+1, j+1}``.  Brute-force references (straight from the
definitions) back the tests.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

Digits = Sequence[int]


def failure_function(pattern: Digits) -> List[int]:
    """Morris–Pratt failure function of ``pattern``.

    ``fail[j]`` is the length of the longest *proper* prefix of
    ``pattern[: j + 1]`` that is also a suffix of it.  This is the paper's
    ``c_{i, i+j}`` for the pattern ``x_i ... x_k`` (Algorithm 3, lines 1-7).

    >>> failure_function((0, 1, 0, 0, 1, 0, 1))
    [0, 0, 1, 1, 2, 3, 2]
    """
    n = len(pattern)
    fail = [0] * n
    length = 0
    for j in range(1, n):
        while length > 0 and pattern[length] != pattern[j]:
            length = fail[length - 1]
        if pattern[length] == pattern[j]:
            length += 1
        fail[j] = length
    return fail


def matching_row_l(x: Digits, y: Digits, i: int) -> List[int]:
    """Row ``i`` of the l-matching function: ``[l(i, 0), ..., l(i, k-1)]``.

    ``l(i, j)`` is the longest length ``s`` with
    ``x[i : i + s] == y[j - s + 1 : j + 1]`` — the Morris–Pratt match state
    of the pattern ``x[i:]`` after consuming ``y[: j + 1]``.  Runs in O(k)
    time and space (the paper's Algorithm 3, lines 8-14).
    """
    pattern = tuple(x[i:])
    m = len(pattern)
    fail = failure_function(pattern)
    row: List[int] = []
    state = 0
    for digit in y:
        if state == m:
            # Full pattern matched at the previous position (paper line 10:
            # "if l_{i,j-1} = k-i+1 then h = c_{i,k}"): fall back before
            # consuming the next digit.
            state = fail[state - 1] if m > 0 else 0
        while state > 0 and pattern[state] != digit:
            state = fail[state - 1]
        if m > 0 and pattern[state] == digit:
            state += 1
        row.append(state)
    return row


def matching_function_l(x: Digits, y: Digits) -> List[List[int]]:
    """All rows of the l-matching function: ``L[i][j] == l(i, j)``.

    O(k^2) time and space; Algorithm 2 of the paper iterates over the rows
    one at a time to stay in O(k) space (see
    :func:`repro.core.routing.shortest_path_undirected`).
    """
    k = len(x)
    return [matching_row_l(x, y, i) for i in range(k)]


def matching_row_r(x: Digits, y: Digits, i: int) -> List[int]:
    """Row ``i`` of the r-matching function: ``[r(i, 0), ..., r(i, k-1)]``.

    ``r(i, j)`` is the longest length ``s`` with
    ``x[i - s + 1 : i + 1] == y[j : j + s]``.  Computed through the
    reduction ``r(i, j)(X, Y) = l(k-1-i, k-1-j)(reversed X, reversed Y)``,
    which the paper notes makes the computations of ``r`` "analogous to
    those of ``l``".  O(k) time and space.
    """
    k = len(x)
    xr = tuple(reversed(x))
    yr = tuple(reversed(y))
    reversed_row = matching_row_l(xr, yr, k - 1 - i)
    return [reversed_row[k - 1 - j] for j in range(k)]


def matching_function_r(x: Digits, y: Digits) -> List[List[int]]:
    """All rows of the r-matching function: ``R[i][j] == r(i, j)``."""
    k = len(x)
    return [matching_row_r(x, y, i) for i in range(k)]


def l_brute(x: Digits, y: Digits, i: int, j: int) -> int:
    """``l(i, j)`` straight from definition (8); O(k^2) — test oracle only."""
    best = 0
    limit = min(j + 1, len(x) - i)
    for s in range(1, limit + 1):
        if tuple(x[i : i + s]) == tuple(y[j - s + 1 : j + 1]):
            best = s
    return best


def r_brute(x: Digits, y: Digits, i: int, j: int) -> int:
    """``r(i, j)`` straight from definition (9); O(k^2) — test oracle only."""
    best = 0
    limit = min(i + 1, len(y) - j)
    for s in range(1, limit + 1):
        if tuple(x[i - s + 1 : i + 1]) == tuple(y[j : j + s]):
            best = s
    return best


def common_substrings_brute(x: Digits, y: Digits) -> List[Tuple[int, int, int]]:
    """All maximal-at-anchor forward common substrings ``(a, b, s)``.

    ``(a, b, s)`` means ``x[a : a + s] == y[b : b + s]`` with ``s`` maximal
    for that anchor pair and ``s >= 1``.  O(k^3) — used by tests and by the
    brute-force undirected distance reference.
    """
    out: List[Tuple[int, int, int]] = []
    kx, ky = len(x), len(y)
    for a in range(kx):
        for b in range(ky):
            s = 0
            while a + s < kx and b + s < ky and x[a + s] == y[b + s]:
                s += 1
            if s >= 1:
                out.append((a, b, s))
    return out
