"""Batch distance engines for DG(d, k): many pairs for the price of one.

The pair functions of :mod:`repro.core.distance` are optimal per call —
O(k) each — but all-pairs and one-to-many workloads (gravity tables,
average-distance studies, warm-up of routing caches) repeat per-call setup
that can be hoisted:

* :func:`distance_matrix` / :func:`distances_row` — implicit BFS from each
  source over *packed* integer words (:mod:`repro.core.packed`).  The
  frontier is a plain int list, the distance row a ``bytearray``, and the
  neighbor arithmetic O(1) div-mod, so a whole N-entry row costs O(N·d)
  with no tuple allocation at all.
* :func:`undirected_distances_many` — builds the suffix structure of the
  fixed word ``x`` *once* (a suffix automaton, the online equivalent of
  the paper's Algorithm-4 prefix tree) and then streams each query ``y``
  through it in O(k), instead of rebuilding a generalized suffix tree per
  pair.
* :func:`average_distance_packed` / :func:`equation5_crosscheck` — exact
  all-pairs average distances from streamed BFS rows, cross-checked
  against the paper's Equation (5) closed form (which EXPERIMENTS.md E2
  shows to be an upper bound).

Everything here is validated exhaustively against the pair functions in
``tests/test_batch.py``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.arraybfs import fill_matrix_rows, resolve_kernel
from repro.core.packed import PackedSpace
from repro.core.word import WordTuple, validate_parameters, validate_word
from repro.exceptions import InvalidWordError

#: BFS sentinel for "not reached yet"; valid because diameters are <= k < 255.
_UNSEEN = 0xFF


def _bfs_fill(space: PackedSpace, source: int, directed: bool, row: bytearray) -> None:
    """Fill ``row`` with BFS distances from packed ``source`` (in place).

    ``row`` must be pre-set to ``_UNSEEN``.  Level-synchronous BFS over
    packed ints: type-L children of ``v`` are the contiguous block
    ``range((v % d^(k-1))·d, ... + d)``, type-R children stride by
    ``d^(k-1)`` — no tuples, no dict, no deque.
    """
    d = space.d
    high = space.high
    row[source] = 0
    frontier = [source]
    dist = 0
    while frontier:
        dist += 1
        nxt: List[int] = []
        push = nxt.append
        for v in frontier:
            base = (v % high) * d
            for w in range(base, base + d):
                if row[w] == _UNSEEN:
                    row[w] = dist
                    push(w)
            if not directed:
                body = v // d
                for a in range(d):
                    w = a * high + body
                    if row[w] == _UNSEEN:
                        row[w] = dist
                        push(w)
        frontier = nxt


def distances_row(
    space: PackedSpace, source: int, directed: bool = False
) -> bytearray:
    """BFS distances from packed ``source`` to every vertex, as a bytearray.

    ``row[value]`` is the distance to the vertex whose packed encoding is
    ``value`` (see :meth:`PackedSpace.pack`).  The allocation-free batch
    analogue of :func:`repro.core.distance.distances_from`.
    """
    if not 0 <= source < space.order:
        raise InvalidWordError(
            f"packed source {source} outside 0..{space.order - 1}"
        )
    if space.k >= _UNSEEN:
        raise InvalidWordError(f"k = {space.k} overflows the bytearray row")
    row = bytearray([_UNSEEN]) * space.order
    _bfs_fill(space, source, directed, row)
    return row


def distance_matrix(d: int, k: int, directed: bool = False,
                    kernel: Optional[str] = None) -> List[bytearray]:
    """The full N x N distance matrix of DG(d, k) by N packed BFS sweeps.

    ``matrix[pack(x)][pack(y)]`` is D(X, Y); O(N²·d) time, N² bytes of
    memory.  For DG(2, 12) (N = 4096) this is a 16 MiB matrix built in a
    few seconds — the tuple-dict BFS of ``distances_from`` is roughly an
    order of magnitude slower and far more allocation-heavy.

    ``kernel`` picks the sweep engine: ``"array"`` runs the whole-
    frontier numpy kernel of :mod:`repro.core.arraybfs` (byte-identical
    rows, much faster), ``"python"`` the loop below, ``"auto"``/None
    whichever is available.
    """
    validate_parameters(d, k)
    space = PackedSpace(d, k)
    if space.k >= _UNSEEN:
        raise InvalidWordError(f"k = {k} overflows the bytearray rows")
    if resolve_kernel(kernel) == "array":
        flat = bytearray(space.order * space.order)
        fill_matrix_rows(d, k, 0, space.order, directed, flat)
        n = space.order
        return [flat[i * n:(i + 1) * n] for i in range(n)]
    template = bytearray([_UNSEEN]) * space.order
    matrix: List[bytearray] = []
    for source in range(space.order):
        row = bytearray(template)
        _bfs_fill(space, source, directed, row)
        matrix.append(row)
    return matrix


def average_distance_packed(d: int, k: int, directed: bool = False) -> float:
    """Exact mean distance over all ordered pairs (including X == Y).

    Streams one reusable BFS row per source instead of materialising the
    matrix, so memory stays O(N).  Agrees with
    :func:`repro.core.average_distance.directed_average_distance_exact` /
    ``undirected_average_distance_exact`` (checked in the tests) while
    scaling to graphs an order of magnitude larger.
    """
    validate_parameters(d, k)
    space = PackedSpace(d, k)
    if space.k >= _UNSEEN:
        raise InvalidWordError(f"k = {k} overflows the bytearray rows")
    template = bytes([_UNSEEN]) * space.order
    row = bytearray(template)
    total = 0
    for source in range(space.order):
        row[:] = template
        _bfs_fill(space, source, directed, row)
        total += sum(row)
    return total / (space.order * space.order)


def equation5_crosscheck(d: int, k: int) -> Dict[str, float]:
    """The paper's Equation (5) vs. the exact batch average, in one record.

    E2 (EXPERIMENTS.md) shows Eq. (5) is an upper-bound approximation;
    this evaluator regenerates that finding from the packed BFS engine:
    ``gap = closed_form - exact`` is always >= 0 and shrinks as d grows.
    """
    from repro.core.average_distance import directed_average_distance_closed_form

    exact = average_distance_packed(d, k, directed=True)
    closed = directed_average_distance_closed_form(d, k)
    return {
        "d": float(d),
        "k": float(k),
        "closed_form": closed,
        "exact": exact,
        "gap": closed - exact,
    }


# ----------------------------------------------------------------------
# One-to-many undirected distances: build x's suffix structure once
# ----------------------------------------------------------------------


class _SuffixAutomaton:
    """Suffix automaton of a fixed word ``x``, annotated for Theorem 2.

    The automaton recognises exactly the substrings of ``x``; each state
    additionally carries the minimum and maximum *end positions* of its
    occurrences in ``x`` plus suffix-link-path maxima of the two Theorem-2
    scores, so that a single O(k) scan of any query ``y`` maximises

        ``2s + (b - a)``  (l-case)   and   ``2s + (a - b)``  (r-case)

    over all common substrings ``x[a : a+s] == y[b : b+s]`` — the same
    quantities :meth:`GeneralizedSuffixTree.best_alignments` extracts, but
    without rebuilding any per-pair structure.  With a match of length
    ``s`` ending at ``j`` in ``y`` and at ``e`` in ``x`` the scores read
    ``j + (2s - e)`` and ``-j + (2s + e)``, so per state it suffices to
    know ``min e`` (l-case) and ``max e`` (r-case).
    """

    __slots__ = ("k", "_trans", "_link", "_len", "_up_l", "_up_r",
                 "_min_end", "_max_end", "_neg")

    def __init__(self, word: WordTuple) -> None:
        self.k = len(word)
        self._trans: List[Dict[int, int]] = [{}]
        self._link: List[int] = [-1]
        self._len: List[int] = [0]
        last = 0
        prefix_states: List[int] = []
        for symbol in word:
            last = self._extend(last, symbol)
            prefix_states.append(last)
        self._annotate(prefix_states)

    def _extend(self, last: int, symbol: int) -> int:
        trans, link, lens = self._trans, self._link, self._len
        cur = len(lens)
        trans.append({})
        link.append(-1)
        lens.append(lens[last] + 1)
        p = last
        while p != -1 and symbol not in trans[p]:
            trans[p][symbol] = cur
            p = link[p]
        if p == -1:
            link[cur] = 0
            return cur
        q = trans[p][symbol]
        if lens[p] + 1 == lens[q]:
            link[cur] = q
            return cur
        clone = len(lens)
        trans.append(dict(trans[q]))
        link.append(link[q])
        lens.append(lens[p] + 1)
        while p != -1 and trans[p].get(symbol) == q:
            trans[p][symbol] = clone
            p = link[p]
        link[q] = clone
        link[cur] = clone
        return cur

    def _annotate(self, prefix_states: List[int]) -> None:
        link, lens = self._link, self._len
        n = len(lens)
        min_end = [self.k] * n  # one past any valid end position
        max_end = [-1] * n
        for pos, state in enumerate(prefix_states):
            if pos < min_end[state]:
                min_end[state] = pos
            if pos > max_end[state]:
                max_end[state] = pos
        by_len = sorted(range(1, n), key=lens.__getitem__)
        for state in reversed(by_len):  # deepest first: push endpos up links
            parent = link[state]
            if min_end[state] < min_end[parent]:
                min_end[parent] = min_end[state]
            if max_end[state] > max_end[parent]:
                max_end[parent] = max_end[state]
        neg = -(4 * self.k + 4)  # below any achievable score
        up_l = [neg] * n
        up_r = [neg] * n
        for state in by_len:  # shallowest first: pull maxima down links
            parent = link[state]
            up_l[state] = max(2 * lens[state] - min_end[state], up_l[parent])
            up_r[state] = max(2 * lens[state] + max_end[state], up_r[parent])
        self._min_end = min_end
        self._max_end = max_end
        self._up_l = up_l
        self._up_r = up_r
        self._neg = neg

    def undirected_distance(self, y: WordTuple) -> int:
        """Theorem 2 distance from the automaton's word to ``y``, O(k)."""
        k = self.k
        if len(y) != k:
            raise InvalidWordError(
                f"query {y!r} has length {len(y)}, expected {k}"
            )
        trans, link, lens = self._trans, self._link, self._len
        min_end, max_end = self._min_end, self._max_end
        up_l, up_r = self._up_l, self._up_r
        best = self._neg  # max over both cases of the Theorem-2 score
        cur = 0
        length = 0
        for j, symbol in enumerate(y):
            step = trans[cur].get(symbol)
            if step is None:
                while cur != 0 and symbol not in trans[cur]:
                    cur = link[cur]
                step = trans[cur].get(symbol)
                if step is None:
                    length = 0
                    continue
                length = lens[cur] + 1
                cur = step
            else:
                cur = step
                length += 1
            # Longest match ending at j sits at (cur, length); shorter
            # matches ending at j are the suffix-link ancestors of cur.
            cand = 2 * length - min_end[cur]
            parent_l = up_l[link[cur]]
            if parent_l > cand:
                cand = parent_l
            score = j + cand
            if score > best:
                best = score
            cand = 2 * length + max_end[cur]
            parent_r = up_r[link[cur]]
            if parent_r > cand:
                cand = parent_r
            score = cand - j
            if score > best:
                best = score
        if best <= self._neg:
            return k  # no common symbol: the trivial diameter path
        return min(k, 2 * k - best)


def undirected_distances_many(
    x: WordTuple, ys: Iterable[Sequence[int]]
) -> List[int]:
    """Undirected distances from ``x`` to each word in ``ys``.

    Builds the suffix structure of ``x`` once and streams the queries, so
    m queries cost O(k + m·k) instead of m times the per-pair
    suffix-tree construction of :func:`undirected_distance`.  Exhaustively
    validated against the pair function in the tests.

    >>> undirected_distances_many((0, 0, 1), [(1, 1, 1), (0, 1, 0), (0, 0, 1)])
    [2, 1, 0]
    """
    x = tuple(x)
    if not x:
        raise InvalidWordError("words must be non-empty")
    automaton = _SuffixAutomaton(x)
    return [automaton.undirected_distance(tuple(y)) for y in ys]


def directed_distances_many(
    x: WordTuple, ys: Iterable[Sequence[int]], d: int
) -> List[int]:
    """Directed distances from ``x`` to each of ``ys`` via packed affixes."""
    x = tuple(x)
    k = len(x)
    validate_word(x, d, k)
    space = PackedSpace(d, k)
    px = space.pack(x)
    return [
        space.directed_distance(px, space.pack_checked(tuple(y))) for y in ys
    ]
