"""The paper's primary contribution: distances and optimal routing.

Re-exports the high-level names; see the submodules for the full APIs:

* :mod:`repro.core.word` — d-ary words and shift operations,
* :mod:`repro.core.packed` — words as base-d ints with O(1) shift arithmetic,
* :mod:`repro.core.matching` — Algorithm 3 (Morris–Pratt matching functions),
* :mod:`repro.core.distance` — Property 1 and Theorem 2 distance functions,
* :mod:`repro.core.batch` — batch/streaming distance engines over packed words,
* :mod:`repro.core.suffix_tree` — compact suffix trees (Weiner/Ukkonen),
* :mod:`repro.core.routing` — Algorithms 1, 2 and 4, plus the RouteCache,
* :mod:`repro.core.average_distance` — Equation (5) and Figure 2 numerics.
"""

from repro.core.average_distance import (
    directed_average_distance_closed_form,
    directed_average_distance_exact,
    undirected_average_distance_exact,
    undirected_average_distance_sampled,
)
from repro.core.batch import (
    average_distance_packed,
    directed_distances_many,
    distance_matrix,
    distances_row,
    equation5_crosscheck,
    undirected_distances_many,
)
from repro.core.packed import PackedSpace
from repro.core.distance import (
    UndirectedWitness,
    directed_distance,
    undirected_distance,
    undirected_witness,
)
from repro.core.paths import (
    all_shortest_paths,
    count_shortest_paths,
    random_shortest_path,
)
from repro.core.routing import (
    Direction,
    Path,
    RouteCache,
    RoutingStep,
    apply_path,
    format_path,
    parse_path,
    path_words,
    route,
    shortest_path_undirected,
    shortest_path_unidirectional,
    verify_path,
)
from repro.core.suffix_tree import GeneralizedSuffixTree, SuffixTree
from repro.core.word import (
    Word,
    WordTuple,
    from_packed,
    iter_words,
    packed_space,
    parse_word,
    random_word,
    to_packed,
)

__all__ = [
    "Direction",
    "GeneralizedSuffixTree",
    "PackedSpace",
    "Path",
    "RouteCache",
    "RoutingStep",
    "SuffixTree",
    "UndirectedWitness",
    "Word",
    "WordTuple",
    "all_shortest_paths",
    "apply_path",
    "average_distance_packed",
    "count_shortest_paths",
    "random_shortest_path",
    "directed_distances_many",
    "distance_matrix",
    "distances_row",
    "equation5_crosscheck",
    "from_packed",
    "packed_space",
    "to_packed",
    "undirected_distances_many",
    "directed_average_distance_closed_form",
    "directed_average_distance_exact",
    "directed_distance",
    "format_path",
    "iter_words",
    "parse_path",
    "parse_word",
    "path_words",
    "random_word",
    "route",
    "shortest_path_undirected",
    "shortest_path_unidirectional",
    "undirected_average_distance_exact",
    "undirected_average_distance_sampled",
    "undirected_distance",
    "undirected_witness",
    "verify_path",
]
