"""Packed d-ary words: vertices of DG(d, k) as plain base-d integers.

The tuple representation of :mod:`repro.core.word` is convenient and
hashable, but every shift allocates a fresh k-tuple and every hash walks
k digits.  For the hot batch paths (implicit BFS over all ``d**k``
vertices, the simulator's per-hop arithmetic) this module packs a word
``X = (x_1, ..., x_k)`` into the single integer

    ``value = x_1·d^(k-1) + x_2·d^(k-2) + ... + x_k``

(head digit most significant — the same encoding as
:func:`repro.core.word.word_to_int`, so packed values and tuple code
interoperate freely).  Both shift operations then become O(1) div-mod
arithmetic on machine ints (for ``d**k`` within a machine word):

* left shift  ``X^-(a)``:  ``(value % d^(k-1)) * d + a``
* right shift ``X^+(a)``:  ``a * d^(k-1) + value // d``

:class:`PackedSpace` precomputes the powers of ``d`` once per (d, k) so
the per-operation cost is a couple of int ops and no allocation beyond
the (interned, for small graphs) result int.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.core.word import WordTuple, validate_parameters, validate_word
from repro.exceptions import InvalidWordError


class PackedSpace:
    """All packed-word arithmetic for one de Bruijn graph DG(d, k).

    >>> space = PackedSpace(2, 4)
    >>> space.pack((0, 1, 1, 0))
    6
    >>> space.unpack(space.left(6, 1))     # 0110 -> 1101
    (1, 1, 0, 1)
    >>> space.unpack(space.right(6, 1))    # 0110 -> 1011
    (1, 0, 1, 1)
    """

    __slots__ = ("d", "k", "order", "high", "_pow")

    def __init__(self, d: int, k: int) -> None:
        validate_parameters(d, k)
        self.d = d
        self.k = k
        #: Number of vertices N = d**k; packed values live in range(order).
        self.order = d**k
        #: d**(k-1) — the place value of the head digit.
        self.high = self.order // d
        self._pow: Tuple[int, ...] = tuple(d**i for i in range(k + 1))

    # -- conversions ----------------------------------------------------

    def pack(self, word: WordTuple) -> int:
        """Fold a digit tuple into its packed integer (no validation)."""
        d = self.d
        value = 0
        for digit in word:
            value = value * d + digit
        return value

    def pack_checked(self, word: WordTuple) -> int:
        """Validate ``word`` against (d, k), then pack it."""
        validate_word(word, self.d, self.k)
        return self.pack(word)

    def unpack(self, value: int) -> WordTuple:
        """Expand a packed integer back into its digit tuple."""
        if not 0 <= value < self.order:
            raise InvalidWordError(
                f"packed value {value} is outside 0..{self.order - 1} "
                f"for DG({self.d},{self.k})"
            )
        d = self.d
        digits: List[int] = []
        for _ in range(self.k):
            value, rem = divmod(value, d)
            digits.append(rem)
        digits.reverse()
        return tuple(digits)

    # -- O(1) shifts ----------------------------------------------------

    def left(self, value: int, digit: int) -> int:
        """Packed ``X^-(digit)``: drop the head, append ``digit``."""
        return (value % self.high) * self.d + digit

    def right(self, value: int, digit: int) -> int:
        """Packed ``X^+(digit)``: drop the tail, prepend ``digit``."""
        return digit * self.high + value // self.d

    def apply_action(self, value: int, action: int) -> int:
        """Apply a one-byte next-hop action (see :mod:`repro.core.tables`).

        Actions ``0..d-1`` are left shifts inserting that digit; actions
        ``d..2d-1`` right shifts inserting ``action - d``.  O(1) div-mod,
        the per-hop arithmetic of the table-driven simulator fast path.
        """
        d = self.d
        if 0 <= action < d:
            return (value % self.high) * d + action
        if d <= action < 2 * d:
            return (action - d) * self.high + value // d
        raise InvalidWordError(
            f"action byte {action} is not a shift action for d = {d}"
        )

    def left_neighbors(self, value: int) -> range:
        """All d type-L neighbors of ``value``, as a contiguous range."""
        base = (value % self.high) * self.d
        return range(base, base + self.d)

    def right_neighbors(self, value: int) -> Iterator[int]:
        """All d type-R neighbors of ``value``."""
        body = value // self.d
        return (a * self.high + body for a in range(self.d))

    # -- digit / affix extraction (all O(1) div-mod) --------------------

    def digit(self, value: int, index: int) -> int:
        """The 0-based ``index``-th digit (head first) of ``value``."""
        if not 0 <= index < self.k:
            raise InvalidWordError(f"digit index {index} outside 0..{self.k - 1}")
        return (value // self._pow[self.k - 1 - index]) % self.d

    def head(self, value: int) -> int:
        """The most significant digit ``x_1``."""
        return value // self.high

    def tail(self, value: int) -> int:
        """The least significant digit ``x_k``."""
        return value % self.d

    def prefix(self, value: int, length: int) -> int:
        """The packed ``length``-digit prefix ``(x_1, ..., x_length)``."""
        if not 0 <= length <= self.k:
            raise InvalidWordError(f"prefix length {length} outside 0..{self.k}")
        return value // self._pow[self.k - length]

    def suffix(self, value: int, length: int) -> int:
        """The packed ``length``-digit suffix ``(x_{k-length+1}, ..., x_k)``."""
        if not 0 <= length <= self.k:
            raise InvalidWordError(f"suffix length {length} outside 0..{self.k}")
        return value % self._pow[length]

    def prefix_range(self, value: int, length: int) -> Tuple[int, int]:
        """Packed ``[start, stop)`` of every word sharing ``value``'s
        ``length``-digit prefix.

        Because packing is big-endian positional, a common prefix pins
        the high digits, so the group is one contiguous run of
        ``d^(k-length)`` packed values — the unit the lazy shard tier
        (:mod:`repro.core.shards`) compiles and evicts as a whole.
        """
        span = self._pow[self.k - length]
        start = self.prefix(value, length) * span
        return start, start + span

    # -- distances ------------------------------------------------------

    def overlap_length(self, x: int, y: int) -> int:
        """Longest suffix of ``x`` equal to a prefix of ``y`` (packed).

        The paper's quantity ``l`` of equation (2), computed by at most k
        O(1) affix comparisons — no tuple materialisation.
        """
        pow_ = self._pow
        k = self.k
        for s in range(k, 0, -1):
            if x % pow_[s] == y // pow_[k - s]:
                return s
        return 0

    def directed_distance(self, x: int, y: int) -> int:
        """Property 1 on packed values: ``D(X, Y) = k - l``."""
        return self.k - self.overlap_length(x, y)

    # -- iteration ------------------------------------------------------

    def iter_values(self) -> range:
        """All packed vertices, in the same order as ``iter_words``."""
        return range(self.order)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PackedSpace(d={self.d}, k={self.k})"


def pack(word: WordTuple, d: int) -> int:
    """Validate and pack a digit tuple (module-level convenience)."""
    return PackedSpace(d, len(word)).pack_checked(word)


def unpack(value: int, d: int, k: int) -> WordTuple:
    """Unpack a base-d integer into a length-k digit tuple."""
    return PackedSpace(d, k).unpack(value)


def packed_left_shift(value: int, digit: int, d: int, k: int) -> int:
    """One-off packed left shift (prefer :class:`PackedSpace` in loops)."""
    high = d ** (k - 1)
    return (value % high) * d + digit


def packed_right_shift(value: int, digit: int, d: int, k: int) -> int:
    """One-off packed right shift (prefer :class:`PackedSpace` in loops)."""
    high = d ** (k - 1)
    return digit * high + value // d
