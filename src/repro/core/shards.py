"""Lazy sharded route tables: big-k serving under a byte budget.

:class:`~repro.core.tables.CompiledRouteTable` is O(N²) bytes — perfect
up to DG(2,12), 4 GB at DG(2,16), impossible at DG(2,20).  But the table
is *destination-major*: the complete routing knowledge toward one
destination (distances and next-hop actions from every source) is one
contiguous ``2·N``-byte pair of rows, and destinations sharing a packed
prefix are one contiguous run of rows
(:meth:`repro.core.packed.PackedSpace.prefix_range`).  That makes a
*shard* — all rows for one destination-prefix group — the natural unit
of lazy compilation:

* :class:`RouteShard` — the rows for packed destinations
  ``[start, stop)``, compiled on demand by the array BFS kernel
  (:func:`repro.core.arraybfs.table_rows`, O(rows·N), never the full
  table), persisted as a small self-describing mmap-able file.
* :class:`ShardedRouteTable` — an LRU manager that keeps at most
  ``byte_budget`` bytes of shards resident, compiles cold shards in a
  background thread once they have been requested ``compile_threshold``
  times, and answers cold queries with ``None`` so the caller (the
  service engine) falls back to the paper's O(k) planner — queries never
  block on a compile.

Eviction only drops the manager's reference; an in-flight query that
already grabbed the :class:`RouteShard` keeps reading valid memory, and
the next query for that group transparently recompiles (or reloads) it.
DG(2,20) arithmetic: one destination row-pair is 2 MB, the default 8 MB
shard covers 4 destinations, and a 512 MB budget keeps 64 hot
destination groups resident while the planner covers the cold tail.
"""

from __future__ import annotations

import mmap
import os
import struct
import threading
import zlib
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.core.arraybfs import table_rows
from repro.core.packed import PackedSpace
from repro.core.parallel import ACTION_AT_DESTINATION, ACTION_UNREACHABLE
from repro.core.word import validate_parameters
from repro.exceptions import InvalidParameterError, RoutingError

#: File magic: "de Bruijn Route Shard", format version 1 (legacy,
#: still loadable; no checksums).
MAGIC = b"DBRS\x01"

#: Format version 2: adds a body CRC32 and a header CRC32 between the
#: fixed header and the payload (same scheme as ``DBRT\x02`` tables).
MAGIC2 = b"DBRS\x02"

#: Fixed header after the magic: d, k, directed, pad, order, start, stop.
_HEADER = struct.Struct("<BBBxQQQ")

#: v2 trailer: CRC32(distances ‖ actions), then CRC32(magic ‖ header ‖
#: body_crc) so header corruption cannot masquerade as a clean file.
_CHECKSUMS = struct.Struct("<II")

#: Default ceiling for one shard's bytes when sizing automatically.
DEFAULT_SHARD_TARGET_BYTES = 8 << 20

#: Default residency budget: laptop-sized even for DG(2,20).
DEFAULT_BYTE_BUDGET = 512 << 20


class RouteShard:
    """Routing rows toward packed destinations ``[start, stop)``.

    Both buffers are destination-major and row-relative:
    ``distances[(py - start) * order + px]`` is D(X, Y) and the matching
    ``actions`` byte the first hop from X toward Y (same encoding as the
    full table).  Instances come from :meth:`compile` or :meth:`load`.
    """

    __slots__ = ("d", "k", "directed", "order", "start", "stop", "rows",
                 "distances", "actions", "nbytes", "_mmap", "_file")

    def __init__(self, d: int, k: int, directed: bool, start: int, stop: int,
                 distances, actions, _mmap=None, _file=None) -> None:
        validate_parameters(d, k)
        self.d = d
        self.k = k
        self.directed = bool(directed)
        self.order = d**k
        if not 0 <= start < stop <= self.order:
            raise InvalidParameterError(
                f"shard range [{start}, {stop}) outside 0..{self.order} "
                f"for DG({d},{k})"
            )
        self.start = start
        self.stop = stop
        self.rows = stop - start
        cells = self.rows * self.order
        if len(distances) != cells or len(actions) != cells:
            raise InvalidParameterError(
                f"shard buffers must hold {cells} bytes each, got "
                f"{len(distances)} and {len(actions)}"
            )
        self.distances = distances
        self.actions = actions
        self.nbytes = 2 * cells
        self._mmap = _mmap
        self._file = _file

    # -- construction ---------------------------------------------------

    @classmethod
    def compile(cls, d: int, k: int, start: int, stop: int,
                directed: bool = False,
                kernel: Optional[str] = None) -> "RouteShard":
        """Reverse-BFS just these destinations: O(rows·N), not O(N²)."""
        dist, act = table_rows(d, k, start, stop, directed, kernel)
        return cls(d, k, directed, start, stop, bytes(dist), bytes(act))

    # -- O(1) lookups ---------------------------------------------------

    def covers(self, destination: int) -> bool:
        """True when this shard holds ``destination``'s rows."""
        return self.start <= destination < self.stop

    def distance_packed(self, source: int, destination: int) -> int:
        """Shortest-path length for packed endpoints, one byte read."""
        value = self.distances[(destination - self.start) * self.order + source]
        if value == 0xFF:
            raise RoutingError(
                f"no route from packed {source} to {destination} in the "
                f"{'directed' if self.directed else 'undirected'} shard"
            )
        return value

    def path_actions(self, source: int, destination: int) -> List[int]:
        """Action bytes of the whole route, walked inside this shard.

        Destination-major layout means the walk never leaves the shard:
        every step reads the same destination row at the new source.
        """
        actions = self.actions
        base = (destination - self.start) * self.order
        space = PackedSpace(self.d, self.k)
        out: List[int] = []
        current = source
        limit = self.order + 1
        while True:
            action = actions[base + current]
            if action == ACTION_AT_DESTINATION:
                return out
            if action == ACTION_UNREACHABLE:
                raise RoutingError(
                    f"no route from packed {source} to {destination}"
                )
            out.append(action)
            current = space.apply_action(current, action)
            if len(out) > limit:  # pragma: no cover - defensive
                raise RoutingError("route shard contains a cycle")

    # -- persistence ----------------------------------------------------

    def save(self, path: str) -> int:
        """Write the shard to ``path`` crash-safely; bytes written.

        v2 format: checksummed header, fsynced tmp file, atomic
        ``os.replace`` — a SIGKILL mid-save leaves the old shard (or
        nothing), and a file corrupted after the fact fails :meth:`load`
        instead of serving garbage routes.
        """
        header = _HEADER.pack(self.d, self.k, int(self.directed),
                              self.order, self.start, self.stop)
        body_crc = zlib.crc32(self.distances)
        body_crc = zlib.crc32(self.actions, body_crc)
        header_crc = zlib.crc32(
            MAGIC2 + header + struct.pack("<I", body_crc))
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as handle:
                handle.write(MAGIC2)
                handle.write(header)
                handle.write(_CHECKSUMS.pack(body_crc, header_crc))
                handle.write(self.distances)
                handle.write(self.actions)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return len(MAGIC2) + _HEADER.size + _CHECKSUMS.size + self.nbytes

    @classmethod
    def load(cls, path: str, use_mmap: bool = True) -> "RouteShard":
        """Load a :meth:`save`'d shard, zero-copy via ``mmap`` by default.

        Validates magic, header consistency, and exact file size, so a
        truncated or corrupted cache file raises
        :class:`~repro.exceptions.InvalidParameterError` instead of
        serving garbage routes.
        """
        handle = open(path, "rb")
        try:
            magic = handle.read(len(MAGIC2))
            if magic == MAGIC2:
                version = 2
            elif magic == MAGIC:
                version = 1
            else:
                raise InvalidParameterError(
                    f"{path!r} is not a route shard (bad magic)"
                )
            core = handle.read(_HEADER.size)
            if len(core) < _HEADER.size:
                raise InvalidParameterError(
                    f"{path!r} is truncated inside the header"
                )
            d, k, directed, order, start, stop = _HEADER.unpack(core)
            header_size = len(magic) + _HEADER.size
            body_crc: Optional[int] = None
            if version == 2:
                sums = handle.read(_CHECKSUMS.size)
                if len(sums) < _CHECKSUMS.size:
                    raise InvalidParameterError(
                        f"{path!r} is truncated inside the checksums"
                    )
                body_crc, header_crc = _CHECKSUMS.unpack(sums)
                want = zlib.crc32(
                    magic + core + struct.pack("<I", body_crc))
                if header_crc != want:
                    raise InvalidParameterError(
                        f"{path!r} header checksum mismatch "
                        f"({header_crc:#010x} != {want:#010x}): torn or "
                        "corrupted write"
                    )
                header_size += _CHECKSUMS.size
            if order != d**k or not 0 <= start < stop <= order:
                raise InvalidParameterError(
                    f"{path!r} header is corrupt: order {order}, "
                    f"range [{start}, {stop}) for DG({d},{k})"
                )
            cells = (stop - start) * order
            expected = header_size + 2 * cells
            size = os.fstat(handle.fileno()).st_size
            if size != expected:
                raise InvalidParameterError(
                    f"{path!r} is truncated: {size} bytes, expected {expected}"
                )
            if use_mmap:
                mapping = mmap.mmap(handle.fileno(), 0,
                                    access=mmap.ACCESS_READ)
                view = memoryview(mapping)
                distances = view[header_size:header_size + cells]
                actions = view[header_size + cells:expected]
                return cls(d, k, bool(directed), start, stop,
                           distances, actions, _mmap=mapping, _file=handle)
            data = handle.read(2 * cells)
            if body_crc is not None:
                got = zlib.crc32(data)
                if got != body_crc:
                    raise InvalidParameterError(
                        f"{path!r} body checksum mismatch "
                        f"({got:#010x} != {body_crc:#010x}): corrupted shard"
                    )
            return cls(d, k, bool(directed), start, stop,
                       data[:cells], data[cells:])
        except Exception:
            handle.close()
            raise
        finally:
            if use_mmap is False:
                handle.close()

    def close(self) -> None:
        """Release an mmap-backed shard's mapping and file handle."""
        if self._mmap is not None:
            if isinstance(self.distances, memoryview):
                self.distances.release()
            if isinstance(self.actions, memoryview):
                self.actions.release()
            self.distances = b""
            self.actions = b""
            self._mmap.close()
            self._mmap = None
        if self._file is not None:
            self._file.close()
            self._file = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "directed" if self.directed else "undirected"
        return (f"RouteShard(DG({self.d},{self.k}), {kind}, "
                f"dests [{self.start}, {self.stop}), {self.nbytes} bytes)")


def default_rows_per_shard(d: int, k: int,
                           byte_budget: int = DEFAULT_BYTE_BUDGET) -> int:
    """Largest prefix-aligned row count whose shard fits the target size.

    Prefix-aligned means a power of ``d`` (so each shard is exactly one
    destination-prefix group); the shard byte size ``2 · rows · d**k``
    is capped at :data:`DEFAULT_SHARD_TARGET_BYTES` and at an eighth of
    the budget so at least eight shards stay resident.
    """
    order = d**k
    target = max(2 * order, min(byte_budget // 8, DEFAULT_SHARD_TARGET_BYTES))
    rows = 1
    while rows * d <= order and 2 * rows * d * order <= target:
        rows *= d
    return rows


class ShardedRouteTable:
    """LRU-bounded lazy shard manager for one DG(d, k) orientation.

    Parameters
    ----------
    byte_budget:
        Ceiling on resident shard bytes; least-recently-used shards are
        dropped to stay under it.
    rows_per_shard:
        Destinations per shard — must be a power of ``d`` dividing
        ``d**k`` so shards are destination-prefix groups.  Default:
        :func:`default_rows_per_shard`.
    cache_dir:
        When set, compiled shards are persisted there and cold hits
        reload from disk (mmap) instead of recompiling; corrupt cache
        files are deleted and recompiled.  ``None`` keeps shards
        memory-only.
    compile_threshold:
        Requests a cold group must accumulate before its compile is
        scheduled (1 = compile on first miss).  Keeps one-off probes of
        a million-node graph from churning the budget.
    synchronous:
        ``True`` compiles inline on a miss (every lookup succeeds);
        ``False`` (default) schedules compiles on a background thread
        and returns ``None`` meanwhile so the caller can fall back to
        the O(k) planner.
    """

    def __init__(
        self,
        d: int,
        k: int,
        directed: bool = False,
        byte_budget: int = DEFAULT_BYTE_BUDGET,
        rows_per_shard: Optional[int] = None,
        cache_dir: Optional[str] = None,
        kernel: Optional[str] = None,
        compile_threshold: int = 1,
        synchronous: bool = False,
    ) -> None:
        validate_parameters(d, k)
        self.d = d
        self.k = k
        self.directed = bool(directed)
        self.order = d**k
        self.space = PackedSpace(d, k)
        if rows_per_shard is None:
            rows_per_shard = default_rows_per_shard(d, k, byte_budget)
        rows = rows_per_shard
        while rows > 1 and rows % d == 0:
            rows //= d
        if rows != 1 or not 1 <= rows_per_shard <= self.order:
            raise InvalidParameterError(
                f"rows_per_shard must be a power of {d} in 1..{self.order}, "
                f"got {rows_per_shard}"
            )
        self.rows_per_shard = rows_per_shard
        self.shard_bytes = 2 * rows_per_shard * self.order
        if byte_budget < self.shard_bytes:
            raise InvalidParameterError(
                f"byte_budget {byte_budget} is below one shard "
                f"({self.shard_bytes} bytes at {rows_per_shard} rows); "
                f"raise the budget or shrink rows_per_shard"
            )
        if compile_threshold < 1:
            raise InvalidParameterError(
                f"compile_threshold must be >= 1, got {compile_threshold}"
            )
        self.byte_budget = byte_budget
        self.cache_dir = cache_dir
        self.kernel = kernel
        self.compile_threshold = compile_threshold
        self.synchronous = synchronous
        if cache_dir is not None:
            os.makedirs(cache_dir, exist_ok=True)

        self._lock = threading.Lock()
        self._shards: "OrderedDict[int, RouteShard]" = OrderedDict()
        self._resident_bytes = 0
        self._requests: Dict[int, int] = {}
        self._pending: set = set()
        self._stats = {
            "hits": 0, "misses": 0, "compiled": 0, "loaded": 0,
            "evictions": 0, "compile_errors": 0,
        }
        self._queue: List[int] = []
        self._wakeup = threading.Condition(self._lock)
        self._closed = False
        self._worker: Optional[threading.Thread] = None
        if not synchronous:
            self._worker = threading.Thread(
                target=self._worker_main,
                name=f"shard-compile-dg{d}-{k}",
                daemon=True,
            )
            self._worker.start()

    # -- group geometry --------------------------------------------------

    def group_of(self, destination: int) -> int:
        """The shard group index holding ``destination``'s rows."""
        if not 0 <= destination < self.order:
            raise InvalidParameterError(
                f"packed destination {destination} outside 0..{self.order - 1}"
            )
        return destination // self.rows_per_shard

    def group_range(self, group: int) -> Tuple[int, int]:
        """Packed destination ``[start, stop)`` of shard ``group``."""
        start = group * self.rows_per_shard
        return start, min(start + self.rows_per_shard, self.order)

    def shard_path(self, group: int) -> Optional[str]:
        """The cache file for ``group`` (None without a cache_dir)."""
        if self.cache_dir is None:
            return None
        start, stop = self.group_range(group)
        kind = "dir" if self.directed else "und"
        return os.path.join(
            self.cache_dir,
            f"shard-{self.d}-{self.k}-{kind}-{start}-{stop}.dbrs",
        )

    # -- query path ------------------------------------------------------

    def shard_for(self, destination: int) -> Optional[RouteShard]:
        """The resident shard covering ``destination``, else ``None``.

        A miss counts toward the group's compile threshold and (in
        background mode) schedules the compile once the threshold is
        met.  The returned reference stays valid even if the manager
        evicts the shard a moment later — eviction only drops the
        manager's reference, which is what makes mid-query eviction
        transparent to callers.
        """
        group = self.group_of(destination)
        with self._lock:
            shard = self._shards.get(group)
            if shard is not None:
                self._shards.move_to_end(group)
                self._stats["hits"] += 1
                return shard
            self._stats["misses"] += 1
            if self.synchronous:
                pass  # fall through to the inline compile below
            else:
                count = self._requests.get(group, 0) + 1
                self._requests[group] = count
                if count >= self.compile_threshold and group not in self._pending:
                    self._pending.add(group)
                    self._queue.append(group)
                    self._wakeup.notify()
                return None
        return self.ensure_shard(group)

    def resolve_packed(self, source: int, destination: int,
                       want_path: bool) -> Optional[Tuple[int, Optional[List[int]]]]:
        """``(distance, action-bytes-or-None)`` — or ``None`` when cold.

        One shard reference serves both reads, so the answer is
        consistent even when the shard is evicted between them.
        """
        shard = self.shard_for(destination)
        if shard is None:
            return None
        distance = shard.distance_packed(source, destination)
        if not want_path:
            return distance, None
        return distance, shard.path_actions(source, destination)

    def ensure_shard(self, group: int) -> RouteShard:
        """Make shard ``group`` resident now (load or compile) and return it.

        The compile/load runs outside the lock so queries on other
        groups keep flowing; a concurrent duplicate build loses the
        insert race and is simply discarded.
        """
        start, stop = self.group_range(group)
        with self._lock:
            shard = self._shards.get(group)
            if shard is not None:
                self._shards.move_to_end(group)
                return shard
        shard, how = self._build(group, start, stop)
        with self._lock:
            existing = self._shards.get(group)
            if existing is not None:  # lost the race; keep the winner
                self._shards.move_to_end(group)
                return existing
            self._stats[how] += 1
            self._shards[group] = shard
            self._shards.move_to_end(group)
            self._resident_bytes += shard.nbytes
            self._requests.pop(group, None)
            self._evict_over_budget()
        return shard

    def _build(self, group: int, start: int, stop: int) -> Tuple[RouteShard, str]:
        """Load ``group`` from the cache dir or compile it fresh."""
        path = self.shard_path(group)
        if path is not None and os.path.exists(path):
            try:
                shard = RouteShard.load(path)
                if (shard.d, shard.k, shard.directed,
                        shard.start, shard.stop) == (
                        self.d, self.k, self.directed, start, stop):
                    return shard, "loaded"
                shard.close()
                raise InvalidParameterError(f"{path!r} is for another shard")
            except InvalidParameterError:
                os.remove(path)  # corrupt/foreign cache entry: rebuild
        shard = RouteShard.compile(self.d, self.k, start, stop,
                                   self.directed, self.kernel)
        if path is not None:
            shard.save(path)
        return shard, "compiled"

    def _evict_over_budget(self) -> None:
        """Drop LRU shards (never the newest) until under budget.

        Must hold the lock.  Dropped shards are not ``close()``d —
        in-flight queries may still hold references; the garbage
        collector releases each mapping when the last reader drops it.
        """
        while self._resident_bytes > self.byte_budget and len(self._shards) > 1:
            _, victim = self._shards.popitem(last=False)
            self._resident_bytes -= victim.nbytes
            self._stats["evictions"] += 1

    # -- background compiler ---------------------------------------------

    def _worker_main(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._closed:
                    self._wakeup.wait()
                if self._closed:
                    return
                group = self._queue.pop(0)
            try:
                self.ensure_shard(group)
            except Exception:  # pragma: no cover - defensive
                with self._lock:
                    self._stats["compile_errors"] += 1
            finally:
                with self._lock:
                    self._pending.discard(group)
                    self._wakeup.notify_all()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every scheduled compile has landed (for tests/bench)."""
        with self._lock:
            return self._wakeup.wait_for(
                lambda: not self._queue and not self._pending, timeout
            )

    def close(self) -> None:
        """Stop the background worker and drop every resident shard."""
        with self._lock:
            self._closed = True
            self._queue.clear()
            self._wakeup.notify_all()
            worker = self._worker
            self._worker = None
        if worker is not None:
            worker.join(timeout=5.0)
        with self._lock:
            self._shards.clear()
            self._resident_bytes = 0

    # -- accounting ------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Live tier counters (all plain ints, safe to snapshot)."""
        with self._lock:
            out = dict(self._stats)
            out["resident_shards"] = len(self._shards)
            out["resident_bytes"] = self._resident_bytes
            out["pending"] = len(self._pending) + len(self._queue)
            out["shard_bytes"] = self.shard_bytes
            out["byte_budget"] = self.byte_budget
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "directed" if self.directed else "undirected"
        return (f"ShardedRouteTable(DG({self.d},{self.k}), {kind}, "
                f"{self.rows_per_shard} rows/shard, "
                f"budget {self.byte_budget} bytes)")
