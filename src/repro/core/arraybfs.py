"""Array-native BFS kernels: whole frontiers as bulk integer arithmetic.

The packed BFS of :mod:`repro.core.batch` already made one row cheap by
replacing tuples with machine ints; this module removes the remaining
per-word Python loop.  The distance-layer structure of de Bruijn
digraphs (Fàbrega et al., arXiv 2203.09918) guarantees every BFS
frontier expands by *affine maps over packed ranges* — the d type-L
successors of ``v`` are the contiguous block ``(v % d^(k-1))·d .. +d``
and the d type-R successors stride by ``d^(k-1)`` — so a whole frontier
is one strided add per inserted digit, and a whole *level* a handful of
numpy ufunc calls regardless of frontier size.

Byte identity with the legacy kernel
------------------------------------

The serial kernels (:func:`repro.core.batch._bfs_fill`,
:func:`repro.core.parallel._table_fill`) resolve same-level discovery
ties *first-wins in frontier order*, and the compiled tables' action
bytes depend on that order.  The array kernels replicate it exactly,
without sorting:

* candidates are laid out row-major — per frontier word, its successor
  blocks in the serial loop's order — so flattened candidate order
  equals serial iteration order;
* already-seen candidates are masked out via one gather on the distance
  row;
* the surviving candidates are scattered **in reverse**, so numpy's
  "last assignment wins" rule for repeated fancy indices implements
  first-wins (asserted byte-for-byte against the serial kernels in
  ``tests/test_arraybfs.py``; a platform where assignment order ever
  changed would fail those tests loudly, not silently);
* the next frontier keeps discovery order by scattering each candidate's
  position and keeping exactly the ones that read their own position
  back — no argsort, no ``np.unique``, every step O(candidates).

Several destinations run one *lockstep* BFS over a block of
destination-major rows (each frontier entry is ``row·N + vertex``), so
the constant per-level numpy dispatch cost is amortised ``block`` ways —
this is where the single-core ~6x over the Python loop comes from on
DG(2,12).

numpy is optional everywhere: :func:`resolve_kernel` maps ``"auto"`` to
``"array"`` only when numpy imports, and every caller falls back to the
byte-identical serial kernels otherwise.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.word import validate_parameters
from repro.exceptions import InvalidParameterError, InvalidWordError

try:  # pragma: no cover - exercised implicitly by every kernel test
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-less environments
    _np = None

#: BFS sentinel for "not reached yet" (shared with :mod:`repro.core.batch`).
_UNSEEN = 0xFF

#: Next-hop action sentinel (shared with :mod:`repro.core.parallel`).
_ACTION_AT_DESTINATION = 0xFE

#: Recognised kernel selectors.
KERNELS = ("auto", "array", "python")

#: Rows per lockstep BFS block — enough to amortise numpy dispatch.
DEFAULT_BLOCK_ROWS = 256

#: Cap on transient scratch (candidate arrays, position scratch) per
#: block; blocks shrink automatically for big graphs so a DG(2,20)
#: shard compile stays laptop-sized.
_SCRATCH_BUDGET_BYTES = 64 << 20


def numpy_available() -> bool:
    """True when the ``array`` kernel can run in this interpreter."""
    return _np is not None


def resolve_kernel(kernel: Optional[str]) -> str:
    """Map a kernel selector to a concrete kernel name.

    ``None`` / ``"auto"`` picks ``"array"`` when numpy is importable and
    ``"python"`` otherwise; ``"array"`` without numpy is an explicit
    error rather than a silent slowdown.
    """
    if kernel is None:
        kernel = "auto"
    if kernel not in KERNELS:
        raise InvalidParameterError(
            f"unknown BFS kernel {kernel!r}; expected one of {KERNELS}"
        )
    if kernel == "auto":
        return "array" if _np is not None else "python"
    if kernel == "array" and _np is None:
        raise InvalidParameterError(
            "kernel='array' requires numpy, which is not importable here; "
            "install numpy or pass kernel='python'"
        )
    return kernel


def _check_kernel_parameters(d: int, k: int) -> int:
    """Shared (d, k) validation for byte-row kernels; returns N."""
    validate_parameters(d, k)
    if k >= _UNSEEN - 1:
        raise InvalidWordError(f"k = {k} overflows the byte distance rows")
    if 2 * d >= _ACTION_AT_DESTINATION:
        raise InvalidParameterError(
            f"d = {d} overflows the one-byte action encoding"
        )
    return d**k


def _block_rows(n: int, d: int, requested: Optional[int]) -> int:
    """Destinations per lockstep block, bounded by the scratch budget."""
    block = DEFAULT_BLOCK_ROWS if requested is None else requested
    if block < 1:
        raise InvalidParameterError(f"block must be >= 1, got {block}")
    # Peak transient = the candidate matrix: up to block*N rows of 2d
    # int32/int64 entries; keep it (and the position scratch) bounded.
    budget = max(1, _SCRATCH_BUDGET_BYTES // (n * 2 * d * 4))
    return max(1, min(block, budget))


def _run_block(d: int, k: int, start: int, stop: int, directed: bool,
               reverse: bool, dist, act, pos) -> None:
    """Lockstep BFS for rows ``[start, stop)`` over one flat block.

    ``dist`` (and ``act`` for the table kind) are uint8 views of the
    block's rows, pre-set to ``_UNSEEN``; ``pos`` is an uninitialised
    integer scratch of the same length (only read where just written).
    Each frontier entry is the *global* index ``row·N + vertex`` so all
    rows advance level-synchronously through the same ufunc calls.

    ``reverse=True`` expands in-neighbors recording next-hop action
    bytes (the table kind); ``reverse=False`` expands out-neighbors for
    plain distance rows (the matrix kind).
    """
    n = d**k
    high = n // d
    itype = pos.dtype
    width = d if directed else 2 * d
    offsets = _np.arange(stop - start, dtype=itype) * n
    frontier = offsets + _np.arange(start, stop, dtype=itype)
    dist[frontier] = 0
    if act is not None:
        act[frontier] = _ACTION_AT_DESTINATION
    level = 0
    while frontier.size:
        level += 1
        m = frontier.size
        v = frontier % n
        blk = frontier - v
        cands = _np.empty((m, width), dtype=itype)
        if reverse:
            # In-neighbor order of the serial _table_fill: the d words
            # reaching v by a left shift, then (undirected) the d words
            # reaching it by a right shift.
            body = blk + v // d
            for b in range(d):
                _np.add(body, b * high, out=cands[:, b])
            if not directed:
                base = blk + (v % high) * d
                for a in range(d):
                    _np.add(base, a, out=cands[:, d + a])
        else:
            # Out-neighbor order of the serial _bfs_fill: the contiguous
            # type-L block, then (undirected) the strided type-R block.
            base = blk + (v % high) * d
            for a in range(d):
                _np.add(base, a, out=cands[:, a])
            if not directed:
                body = blk + v // d
                for b in range(d):
                    _np.add(body, b * high, out=cands[:, d + b])
        if act is not None:
            acts = _np.empty((m, width), dtype=_np.uint8)
            acts[:, :d] = (v % d).astype(_np.uint8)[:, None]
            if not directed:
                acts[:, d:] = (d + v // high).astype(_np.uint8)[:, None]
        flat = cands.reshape(-1)
        unseen = dist[flat] == _UNSEEN
        cand = flat[unseen]
        if cand.size == 0:
            break
        idx = _np.arange(cand.size, dtype=itype)
        first_wins = cand[::-1]  # reversed: last scatter == serial first
        dist[first_wins] = level
        if act is not None:
            act[first_wins] = acts.reshape(-1)[unseen][::-1]
        pos[first_wins] = idx[::-1]
        # A candidate that reads back its own position is the first
        # occurrence of its vertex — the next frontier, already in the
        # serial kernel's discovery order.
        frontier = cand[pos[cand] == idx]


def _fill_rows(d: int, k: int, start: int, stop: int, directed: bool,
               reverse: bool, dist_buf, act_buf,
               block: Optional[int]) -> None:
    """Block-looped driver shared by the two public fill functions."""
    if _np is None:
        raise InvalidParameterError(
            "the array kernel requires numpy (see resolve_kernel)"
        )
    n = _check_kernel_parameters(d, k)
    if not 0 <= start <= stop <= n:
        raise InvalidParameterError(
            f"row range [{start}, {stop}) outside 0..{n} for DG({d},{k})"
        )
    rows = stop - start
    dist = _np.frombuffer(dist_buf, dtype=_np.uint8)
    act = None if act_buf is None else _np.frombuffer(act_buf, dtype=_np.uint8)
    if dist.size != rows * n or (act is not None and act.size != rows * n):
        raise InvalidParameterError(
            f"row buffers must hold {rows * n} bytes for rows "
            f"[{start}, {stop}) of DG({d},{k})"
        )
    if rows == 0:
        return
    dist[:] = _UNSEEN
    if act is not None:
        act[:] = _UNSEEN
    step = _block_rows(n, d, block)
    itype = _np.int32 if step * n < 2**31 else _np.int64
    pos = _np.empty(min(step, rows) * n, dtype=itype)
    for s in range(start, stop, step):
        e = min(s + step, stop)
        lo = (s - start) * n
        hi = (e - start) * n
        _run_block(d, k, s, e, directed, reverse,
                   dist[lo:hi],
                   None if act is None else act[lo:hi],
                   pos[: (e - s) * n])


def fill_table_rows(d: int, k: int, start: int, stop: int, directed: bool,
                    dist_buf, act_buf, block: Optional[int] = None) -> None:
    """Fill destination-major routing rows ``[start, stop)`` in place.

    ``dist_buf`` / ``act_buf`` are writable byte buffers of
    ``(stop-start) * d**k`` bytes (bytearray, memoryview, shared-memory
    view, ...).  Output is byte-identical to looping
    :func:`repro.core.parallel._table_fill` over the same destinations.
    """
    _fill_rows(d, k, start, stop, directed, True, dist_buf, act_buf, block)


def fill_matrix_rows(d: int, k: int, start: int, stop: int, directed: bool,
                     dist_buf, block: Optional[int] = None) -> None:
    """Fill source-major distance rows ``[start, stop)`` in place.

    Byte-identical to looping :func:`repro.core.batch._bfs_fill` over
    the same sources.
    """
    _fill_rows(d, k, start, stop, directed, False, dist_buf, None, block)


def table_rows(d: int, k: int, start: int, stop: int, directed: bool = False,
               kernel: Optional[str] = None,
               block: Optional[int] = None) -> Tuple[bytearray, bytearray]:
    """(distances, actions) rows for destinations ``[start, stop)``.

    The shard compiler's entry point: unlike
    :func:`repro.core.parallel.compile_table_buffers` it never touches
    the other ``N - rows`` destinations, so memory and time are
    ``O(rows · N)`` — a DG(2,20) shard of four destinations costs ~8 MB,
    not the impossible N² table.  ``kernel`` selects the array kernel,
    the serial Python kernel, or (``auto``) whichever is available.
    """
    n = _check_kernel_parameters(d, k)
    if not 0 <= start <= stop <= n:
        raise InvalidParameterError(
            f"destination range [{start}, {stop}) outside 0..{n} "
            f"for DG({d},{k})"
        )
    rows = stop - start
    dist = bytearray(rows * n)
    act = bytearray(rows * n)
    resolved = resolve_kernel(kernel)
    if resolved == "array":
        fill_table_rows(d, k, start, stop, directed, dist, act, block)
        return dist, act
    from repro.core.parallel import _table_fill

    template = bytes([_UNSEEN]) * n
    dist_row = bytearray(template)
    act_row = bytearray(template)
    for dest in range(start, stop):
        dist_row[:] = template
        act_row[:] = template
        _table_fill(d, k, dest, directed, dist_row, act_row)
        lo = (dest - start) * n
        dist[lo:lo + n] = dist_row
        act[lo:lo + n] = act_row
    return dist, act
