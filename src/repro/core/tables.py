"""Compiled all-pairs route tables: one byte per (source, destination).

The paper's planners are O(k) *per pair*; at production scale the win is
amortisation — compile the all-pairs shortest-path structure once and
route in O(1) per hop forever after.  :class:`CompiledRouteTable` is
that artifact:

* **next-hop actions** — for every (source, destination) pair one byte
  encoding the first hop of a shortest path: ``a`` in ``0..d-1`` means
  "left shift inserting ``a``", ``d + a`` means "right shift inserting
  ``a``", ``0xFE`` means "already there", ``0xFF`` unreachable.  The
  whole table is ``N**2`` bytes (plus an equal-sized distance table),
  destination-major: ``actions[pack(y) * N + pack(x)]``.
* **O(1) everything** — ``action`` / ``next_hop`` / ``distance`` are
  single byte reads; ``path`` walks at most k+… bytes.  No per-message
  planning, no witness computation, no tuples.
* **persistence** — :meth:`save` writes a small self-describing binary
  file; :meth:`load` maps it back with :mod:`mmap` so a table compiled
  once is reused across runs without even reading it into memory.

Compilation shards the reverse-BFS row construction across worker
processes (:mod:`repro.core.parallel`); the result is validated against
the serial engines and the Algorithm 1/2 planners in the tests.

The memory/time trade against the paper is explicit: Algorithms 1–4
need O(k) = O(log N) space and O(k) time per pair; the compiled table
spends O(N**2) bytes and O(N**2 · d) one-off compile time to make every
subsequent hop O(1).  See docs/API.md ("Compiled routing tables").
"""

from __future__ import annotations

import mmap
import os
import struct
import zlib
from typing import List, Optional, Tuple, Union

from repro.core.packed import PackedSpace
from repro.core.parallel import (
    ACTION_AT_DESTINATION,
    ACTION_UNREACHABLE,
    compile_table_buffers,
)
from repro.core.routing import Path, step_from_action
from repro.core.word import WordTuple, validate_parameters
from repro.exceptions import InvalidParameterError, RoutingError

#: File magic: "de Bruijn Route Table", format version 1 (legacy,
#: still loadable; no checksums).
MAGIC = b"DBRT\x01"

#: Format version 2: same layout plus a body CRC32 and a header CRC32
#: between the fixed header and the payload.  Written atomically
#: (tmp file + ``os.replace``) so a crash mid-save leaves either the
#: old table or the new one, never a torn hybrid.
MAGIC2 = b"DBRT\x02"

#: Fixed-size header after the magic: d, k, directed flag, pad, order.
_HEADER = struct.Struct("<BBBxQ")

#: v2 trailer after the fixed header: CRC32(actions ‖ distances), then
#: CRC32(magic ‖ header ‖ body_crc) — the header checksum covers the
#: body checksum, so a corrupted header can't silently "verify".
_CHECKSUMS = struct.Struct("<II")

ByteBuffer = Union[bytes, bytearray, memoryview]


class CompiledRouteTable:
    """All-pairs next-hop actions and distances for one DG(d, k).

    Instances come from :meth:`compile` (sharded BFS) or :meth:`load`
    (mmap of a :meth:`save`'d file); both expose the same O(1) lookups.

    >>> table = CompiledRouteTable.compile(2, 3, workers=1)
    >>> table.distance((0, 0, 1), (1, 1, 1))
    2
    >>> [str(step) for step in table.path((0, 0, 1), (1, 1, 1))]
    ['L1', 'L1']
    """

    __slots__ = ("d", "k", "directed", "order", "space", "actions",
                 "distances", "nbytes", "_mmap", "_file")

    def __init__(
        self,
        d: int,
        k: int,
        directed: bool,
        actions: ByteBuffer,
        distances: ByteBuffer,
        _mmap: Optional[mmap.mmap] = None,
        _file=None,
    ) -> None:
        validate_parameters(d, k)
        self.d = d
        self.k = k
        self.directed = bool(directed)
        self.space = PackedSpace(d, k)
        self.order = self.space.order
        cells = self.order * self.order
        if len(actions) != cells or len(distances) != cells:
            raise InvalidParameterError(
                f"table buffers must hold {cells} bytes each, got "
                f"{len(actions)} and {len(distances)}"
            )
        self.actions = actions
        self.distances = distances
        self.nbytes = 2 * cells
        self._mmap = _mmap
        self._file = _file

    # -- construction ---------------------------------------------------

    @classmethod
    def compile(
        cls,
        d: int,
        k: int,
        directed: bool = False,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        kernel: Optional[str] = None,
    ) -> "CompiledRouteTable":
        """Compile the table by sharded reverse BFS (one row per destination).

        ``workers`` fans the row chunks across that many forked
        processes writing into shared memory; ``workers=1`` (or a
        platform without ``fork``) compiles serially with the same
        kernels.  ``kernel`` selects the BFS engine per chunk
        (``"array"`` / ``"python"`` / ``"auto"``); every kernel emits
        identical bytes.
        """
        dist, act = compile_table_buffers(
            d, k, directed, workers, chunk_size, kernel
        )
        return cls(d, k, directed, bytes(act), bytes(dist))

    def thaw(self) -> "CompiledRouteTable":
        """A deep copy with mutable ``bytearray`` buffers.

        The fault-repair layer (:mod:`repro.network.resilience`) patches
        action/distance rows in place; tables loaded read-only (or
        compiled to immutable ``bytes``) are thawed first.  The original
        table is left untouched.
        """
        return CompiledRouteTable(
            self.d, self.k, self.directed,
            bytearray(self.actions), bytearray(self.distances),
        )

    @property
    def mutable(self) -> bool:
        """True when the buffers accept in-place writes (repairable)."""
        actions = self.actions
        if isinstance(actions, bytearray):
            return True
        return isinstance(actions, memoryview) and not actions.readonly

    # -- O(1) lookups ---------------------------------------------------

    def action(self, source: int, destination: int) -> int:
        """The raw next-hop action byte for packed (source, destination)."""
        return self.actions[destination * self.order + source]

    def distance_packed(self, source: int, destination: int) -> int:
        """Shortest-path length for packed endpoints, one byte read."""
        value = self.distances[destination * self.order + source]
        if value == 0xFF:
            raise RoutingError(
                f"no route from packed {source} to {destination} in the "
                f"{'directed' if self.directed else 'undirected'} table"
            )
        return value

    def next_hop_packed(self, source: int, destination: int) -> int:
        """The packed neighbor one optimal hop toward ``destination``."""
        action = self.actions[destination * self.order + source]
        if action >= ACTION_AT_DESTINATION:
            if action == ACTION_AT_DESTINATION:
                raise RoutingError(
                    f"already at packed destination {destination}; no hop"
                )
            raise RoutingError(
                f"no route from packed {source} to {destination}"
            )
        return self.space.apply_action(source, action)

    # -- tuple-word conveniences ---------------------------------------

    def distance(self, x: WordTuple, y: WordTuple) -> int:
        """Shortest-path length between word tuples (packs, then O(1))."""
        space = self.space
        return self.distance_packed(space.pack_checked(x), space.pack_checked(y))

    def path_actions(self, source: int, destination: int) -> List[int]:
        """The action bytes of the whole route, walked from the table."""
        actions = self.actions
        base = destination * self.order
        space = self.space
        out: List[int] = []
        current = source
        limit = self.order + 1
        while True:
            action = actions[base + current]
            if action == ACTION_AT_DESTINATION:
                return out
            if action == ACTION_UNREACHABLE:
                raise RoutingError(
                    f"no route from packed {source} to {destination}"
                )
            out.append(action)
            current = space.apply_action(current, action)
            if len(out) > limit:  # pragma: no cover - defensive
                raise RoutingError("compiled table contains a cycle")

    def path(self, x: WordTuple, y: WordTuple) -> Path:
        """A shortest routing path (list of steps) from ``x`` to ``y``."""
        space = self.space
        px, py = space.pack_checked(x), space.pack_checked(y)
        d = self.d
        return [step_from_action(action, d)
                for action in self.path_actions(px, py)]

    # -- accounting -----------------------------------------------------

    def memory_bytes(self) -> int:
        """Total table footprint: 2 bytes per ordered pair."""
        return self.nbytes

    # -- persistence ----------------------------------------------------

    def save(self, path: str) -> int:
        """Write the table to ``path`` crash-safely; returns bytes written.

        Format (v2): 5-byte magic, 12-byte header (d, k, directed,
        order), body CRC32, header CRC32, then the action table and the
        distance table back to back.  The bytes go to a temporary file
        in the same directory which is fsynced and atomically
        ``os.replace``'d over ``path`` — a crash or SIGKILL mid-save
        leaves the previous table intact, never a torn file, and the
        checksums let :meth:`load` reject any corruption that does reach
        disk.  Loadable with :meth:`load`, byte-identically (tested).
        """
        header = _HEADER.pack(self.d, self.k, int(self.directed), self.order)
        body_crc = zlib.crc32(self.actions)
        body_crc = zlib.crc32(self.distances, body_crc)
        header_crc = zlib.crc32(
            MAGIC2 + header + struct.pack("<I", body_crc))
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as handle:
                handle.write(MAGIC2)
                handle.write(header)
                handle.write(_CHECKSUMS.pack(body_crc, header_crc))
                handle.write(self.actions)
                handle.write(self.distances)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return len(MAGIC2) + _HEADER.size + _CHECKSUMS.size + self.nbytes

    @classmethod
    def load(cls, path: str, use_mmap: bool = True,
             writable: bool = False) -> "CompiledRouteTable":
        """Load a :meth:`save`'d table, zero-copy via ``mmap`` by default.

        With ``use_mmap=True`` the action/distance buffers are read-only
        memoryview windows into the page cache — a multi-gigabyte table
        costs milliseconds to open and only faults in the rows actually
        routed.  ``use_mmap=False`` reads everything into plain bytes.
        Call :meth:`close` (or drop the table) to release the mapping.

        ``writable=True`` maps the file copy-on-write
        (``mmap.ACCESS_COPY``): the in-memory action/distance arrays can
        be patched in place — the fault-repair layer rewrites only the
        rows a failure invalidated — while the file on disk stays
        pristine and only the touched pages are privately duplicated.
        With ``use_mmap=False`` it falls back to plain ``bytearray``
        copies.

        Both format versions load.  A v2 file's header checksum is
        always verified (a corrupt or torn header fails loudly instead
        of mapping garbage); its body checksum is verified on the
        full-read path (``use_mmap=False``) — the mmap fast path trusts
        the atomic writer plus the header checksum, because summing a
        multi-gigabyte body would defeat the point of mapping it.
        """
        handle = open(path, "rb")
        try:
            magic = handle.read(len(MAGIC2))
            if magic == MAGIC2:
                version = 2
            elif magic == MAGIC:
                version = 1
            else:
                raise InvalidParameterError(
                    f"{path!r} is not a compiled route table (bad magic)"
                )
            core = handle.read(_HEADER.size)
            if len(core) < _HEADER.size:
                raise InvalidParameterError(
                    f"{path!r} is truncated inside the header"
                )
            d, k, directed, order = _HEADER.unpack(core)
            header_size = len(magic) + _HEADER.size
            body_crc: Optional[int] = None
            if version == 2:
                sums = handle.read(_CHECKSUMS.size)
                if len(sums) < _CHECKSUMS.size:
                    raise InvalidParameterError(
                        f"{path!r} is truncated inside the checksums"
                    )
                body_crc, header_crc = _CHECKSUMS.unpack(sums)
                want = zlib.crc32(
                    magic + core + struct.pack("<I", body_crc))
                if header_crc != want:
                    raise InvalidParameterError(
                        f"{path!r} header checksum mismatch "
                        f"({header_crc:#010x} != {want:#010x}): torn or "
                        "corrupted write"
                    )
                header_size += _CHECKSUMS.size
            if order != d**k:
                raise InvalidParameterError(
                    f"{path!r} header is corrupt: order {order} != {d}**{k}"
                )
            cells = order * order
            expected = header_size + 2 * cells
            size = os.fstat(handle.fileno()).st_size
            if size != expected:
                raise InvalidParameterError(
                    f"{path!r} is truncated: {size} bytes, expected {expected}"
                )
            if use_mmap:
                access = mmap.ACCESS_COPY if writable else mmap.ACCESS_READ
                mapping = mmap.mmap(handle.fileno(), 0, access=access)
                view = memoryview(mapping)
                actions = view[header_size:header_size + cells]
                distances = view[header_size + cells:expected]
                return cls(d, k, bool(directed), actions, distances,
                           _mmap=mapping, _file=handle)
            data = handle.read(2 * cells)
            if body_crc is not None:
                got = zlib.crc32(data)
                if got != body_crc:
                    raise InvalidParameterError(
                        f"{path!r} body checksum mismatch "
                        f"({got:#010x} != {body_crc:#010x}): corrupted table"
                    )
            if writable:
                actions: ByteBuffer = bytearray(data[:cells])
                distances: ByteBuffer = bytearray(data[cells:])
            else:
                actions = data[:cells]
                distances = data[cells:]
            return cls(d, k, bool(directed), actions, distances)
        except Exception:
            handle.close()
            raise
        finally:
            if use_mmap is False:
                handle.close()

    def close(self) -> None:
        """Release an mmap-backed table's mapping and file handle."""
        if self._mmap is not None:
            if isinstance(self.actions, memoryview):
                self.actions.release()
            if isinstance(self.distances, memoryview):
                self.distances.release()
            self.actions = b""
            self.distances = b""
            self._mmap.close()
            self._mmap = None
        if self._file is not None:
            self._file.close()
            self._file = None

    # -- debugging ------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "directed" if self.directed else "undirected"
        return (f"CompiledRouteTable(DG({self.d},{self.k}), {kind}, "
                f"{self.nbytes} bytes)")


def table_path(path: str) -> Tuple[int, int, bool]:
    """Peek at a saved table's (d, k, directed) without loading its body."""
    header_size = len(MAGIC) + _HEADER.size
    with open(path, "rb") as handle:
        prefix = handle.read(header_size)
    if len(prefix) < header_size or not (
        prefix.startswith(MAGIC) or prefix.startswith(MAGIC2)
    ):
        raise InvalidParameterError(
            f"{path!r} is not a compiled route table (bad magic)"
        )
    d, k, directed, _ = _HEADER.unpack(prefix[len(MAGIC2):])
    return d, k, bool(directed)
