"""Optimal routing-path generation (the paper's Algorithms 1, 2 and 4).

A routing path is the sequence of ``(a_i, b_i)`` pairs of paper Section 3:
``a_i`` selects the shift type (0 = type-L left shift, 1 = type-R right
shift) and ``b_i`` the digit to insert.  The paper remarks that an
"arbitrary" digit may be encoded by a special symbol ``*`` so that each
forwarding site can pick any neighbor of the requested type and balance
traffic; we model that with ``digit=None`` on a :class:`RoutingStep`.

Three generators are provided:

* :func:`shortest_path_unidirectional` — Algorithm 1, O(k).
* :func:`shortest_path_undirected` with ``method="matching"`` —
  Algorithm 2, O(k²) time / O(k) space.
* :func:`shortest_path_undirected` with ``method="suffix_tree"`` —
  Algorithm 4's role, O(k) time and space.

All generated paths are *shortest*: their length equals the corresponding
distance function, a fact the test suite checks exhaustively against BFS on
small graphs.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.distance import (
    Method,
    UndirectedWitness,
    directed_distance,
    undirected_witness,
)
from repro.core.word import WordTuple, left_shift, overlap_length, right_shift, validate_word
from repro.exceptions import RoutingError


class Direction(enum.IntEnum):
    """The shift type of a routing step (the paper's ``a_i`` field)."""

    LEFT = 0  #: type-L move ``X -> X^-(b)``
    RIGHT = 1  #: type-R move ``X -> X^+(b)``


@dataclass(frozen=True)
class RoutingStep:
    """One hop of a routing path: shift ``direction``, insert ``digit``.

    ``digit is None`` encodes the paper's wildcard ``*``: the forwarding
    site may insert any digit (choose any neighbor of the given type).
    """

    direction: Direction
    digit: Optional[int]

    @property
    def is_wildcard(self) -> bool:
        """True when the inserted digit is left to the forwarding site."""
        return self.digit is None

    def resolved(self, digit: int) -> "RoutingStep":
        """A concrete copy of this step with the wildcard filled in."""
        return RoutingStep(self.direction, digit)

    def __str__(self) -> str:
        symbol = "*" if self.digit is None else str(self.digit)
        arrow = "L" if self.direction == Direction.LEFT else "R"
        return f"{arrow}{symbol}"


Path = List[RoutingStep]

#: How to fill wildcard digits when applying a path: a fixed digit, or a
#: callable receiving (current word, step index) and returning a digit.
WildcardPolicy = Callable[[WordTuple, int], int]


def shortest_path_unidirectional(x: WordTuple, y: WordTuple) -> Path:
    """Algorithm 1: a shortest path in the uni-directional DN(d, k).

    Returns ``k - l`` left-shift steps carrying the digits
    ``y_{l+1} ... y_k`` where ``l`` is the longest suffix of ``x`` that is a
    prefix of ``y`` (empty path when ``x == y``).  O(k) time and space.

    >>> [str(s) for s in shortest_path_unidirectional((0, 1, 1), (1, 1, 0))]
    ['L0']
    """
    if len(x) != len(y):
        raise RoutingError(f"source {x!r} and destination {y!r} differ in length")
    if x == y:
        return []
    l = overlap_length(x, y)
    return [RoutingStep(Direction.LEFT, digit) for digit in y[l:]]


def shortest_path_undirected(
    x: WordTuple,
    y: WordTuple,
    method: Method = "auto",
    use_wildcards: bool = True,
    filler: int = 0,
) -> Path:
    """Algorithm 2 / Algorithm 4: a shortest path in the bi-directional DN(d, k).

    ``method`` selects how the Theorem-2 witness is computed (see
    :func:`repro.core.distance.undirected_witness`); the path construction
    itself (paper lines 6-9 of Algorithm 2) is shared.  When
    ``use_wildcards`` is true the "arbitrarily chosen digits" of the paper
    become wildcard steps; otherwise they are fixed to ``filler``.

    >>> path = shortest_path_undirected((0, 0, 1), (1, 1, 1))
    >>> len(path)
    2
    """
    if len(x) != len(y):
        raise RoutingError(f"source {x!r} and destination {y!r} differ in length")
    if x == y:
        return []
    witness = undirected_witness(x, y, method)
    return path_from_witness(witness, y, use_wildcards=use_wildcards, filler=filler)


def path_from_witness(
    witness: UndirectedWitness,
    y: WordTuple,
    use_wildcards: bool = True,
    filler: int = 0,
) -> Path:
    """Materialise Algorithm 2's lines 6-9 from a Theorem-2 witness."""
    k = len(y)
    arbitrary = None if use_wildcards else filler
    steps: Path = []
    if witness.case == "trivial":
        # Line 6: the diameter path of k left shifts spelling Y.
        return [RoutingStep(Direction.LEFT, digit) for digit in y]
    if witness.case == "l":
        # Line 8, with (i, j, theta) = (s_1, t_1, θ_1), all 1-based:
        #   (s1-1) arbitrary left shifts, then right shifts spelling
        #   y_{t1-θ1} .. y_1, then (k-t1) arbitrary right shifts, then left
        #   shifts spelling y_{t1+1} .. y_k.
        i, j, theta = witness.i, witness.j, witness.theta
        steps.extend(RoutingStep(Direction.LEFT, arbitrary) for _ in range(i - 1))
        for m in range(j - theta, 0, -1):  # digits y_m, 1-based, descending
            steps.append(RoutingStep(Direction.RIGHT, y[m - 1]))
        steps.extend(RoutingStep(Direction.RIGHT, arbitrary) for _ in range(k - j))
        for m in range(j + 1, k + 1):
            steps.append(RoutingStep(Direction.LEFT, y[m - 1]))
        return steps
    if witness.case == "r":
        # Line 9, with (i, j, theta) = (s_2, t_2, θ_2), all 1-based:
        #   (k-s2) arbitrary right shifts, then left shifts spelling
        #   y_{t2+θ2} .. y_k, then (t2-1) arbitrary left shifts, then right
        #   shifts spelling y_{t2-1} .. y_1.
        i, j, theta = witness.i, witness.j, witness.theta
        steps.extend(RoutingStep(Direction.RIGHT, arbitrary) for _ in range(k - i))
        for m in range(j + theta, k + 1):
            steps.append(RoutingStep(Direction.LEFT, y[m - 1]))
        steps.extend(RoutingStep(Direction.LEFT, arbitrary) for _ in range(j - 1))
        for m in range(j - 1, 0, -1):
            steps.append(RoutingStep(Direction.RIGHT, y[m - 1]))
        return steps
    raise RoutingError(f"unknown witness case {witness.case!r}")


def apply_step(
    word: WordTuple, step: RoutingStep, d: int, wildcard: WildcardPolicy | int = 0, index: int = 0
) -> WordTuple:
    """Apply one routing step to ``word``, resolving a wildcard via ``wildcard``."""
    digit = step.digit
    if digit is None:
        digit = wildcard(word, index) if callable(wildcard) else wildcard
    validate_word((digit,), d, 1)
    if step.direction == Direction.LEFT:
        return left_shift(word, digit)
    return right_shift(word, digit)


def apply_path(
    x: WordTuple, path: Iterable[RoutingStep], d: int, wildcard: WildcardPolicy | int = 0
) -> WordTuple:
    """Apply a whole routing path to ``x`` and return the final word."""
    word = x
    for index, step in enumerate(path):
        word = apply_step(word, step, d, wildcard, index)
    return word


def path_words(
    x: WordTuple, path: Iterable[RoutingStep], d: int, wildcard: WildcardPolicy | int = 0
) -> List[WordTuple]:
    """All intermediate vertices of a path, source first, destination last."""
    words = [x]
    for index, step in enumerate(path):
        words.append(apply_step(words[-1], step, d, wildcard, index))
    return words


def verify_path(
    x: WordTuple, y: WordTuple, path: Sequence[RoutingStep], d: int, wildcard: WildcardPolicy | int = 0
) -> bool:
    """True when applying ``path`` to ``x`` lands exactly on ``y``."""
    return apply_path(x, path, d, wildcard) == y


def step_from_action(action: int, d: int) -> RoutingStep:
    """Decode a compiled-table action byte into a :class:`RoutingStep`.

    Actions ``0..d-1`` are type-L steps inserting that digit; actions
    ``d..2d-1`` type-R steps inserting ``action - d`` (the one-byte
    next-hop encoding of :mod:`repro.core.tables`).  Sentinel bytes
    (at-destination, unreachable) are not steps and are rejected.
    """
    if 0 <= action < d:
        return RoutingStep(Direction.LEFT, action)
    if d <= action < 2 * d:
        return RoutingStep(Direction.RIGHT, action - d)
    raise RoutingError(f"action byte {action} is not a shift action for d = {d}")


def action_from_step(step: RoutingStep, d: int) -> int:
    """Inverse of :func:`step_from_action`; wildcards are not encodable."""
    if step.digit is None:
        raise RoutingError("wildcard steps have no one-byte action encoding")
    if not 0 <= step.digit < d:
        raise RoutingError(f"digit {step.digit} is not in 0..{d - 1}")
    if step.direction == Direction.LEFT:
        return step.digit
    return d + step.digit


#: Cache key: (source, destination, directed, method, use_wildcards).
RouteKey = Tuple[WordTuple, WordTuple, bool, str, bool]


class RouteCache:
    """A bounded LRU of planned routing paths, with hit/miss accounting.

    Route planning is a pure function of ``(x, y, method, use_wildcards)``
    — witnesses and paths are deterministic — so steady-state traffic
    with repeated (source, destination) pairs need not recompute them.
    Entries are stored as immutable tuples; :meth:`get` hands back a fresh
    list so callers may mutate their copy (the simulator pops steps off
    the routing-path field in flight).

    >>> cache = RouteCache(maxsize=2)
    >>> route((0, 1), (1, 0), d=2, cache=cache) == route((0, 1), (1, 0), d=2, cache=cache)
    True
    >>> cache.hits, cache.misses
    (1, 1)
    """

    __slots__ = ("maxsize", "hits", "misses", "_entries")

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[RouteKey, Tuple[RoutingStep, ...]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: RouteKey) -> Optional[Path]:
        """The cached path for ``key`` (as a fresh list), or ``None``."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return list(entry)

    def put(self, key: RouteKey, path: Sequence[RoutingStep]) -> None:
        """Store ``path`` under ``key``, evicting the LRU entry if full."""
        self._entries[key] = tuple(path)
        self._entries.move_to_end(key)
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """The flat counter row benches and simulator stats report."""
        return {
            "entries": float(len(self._entries)),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_rate": self.hit_rate,
        }


def route(
    x: WordTuple,
    y: WordTuple,
    d: int,
    directed: bool = False,
    method: Method = "auto",
    use_wildcards: bool = True,
    cache: Optional[RouteCache] = None,
) -> Path:
    """Validate the endpoints and produce a shortest routing path.

    The one-call public entry point: picks Algorithm 1 for the directed
    network and Algorithm 2/4 for the undirected one.  When ``cache`` is
    given, repeated calls with the same endpoints and options are served
    from it (see :class:`RouteCache`).
    """
    k = len(x)
    validate_word(x, d, k)
    validate_word(y, d, k)
    if cache is not None:
        key = (x, y, directed, str(method), use_wildcards)
        cached = cache.get(key)
        if cached is not None:
            return cached
    if directed:
        path = shortest_path_unidirectional(x, y)
    else:
        path = shortest_path_undirected(x, y, method=method, use_wildcards=use_wildcards)
    if cache is not None:
        cache.put(key, path)
    return path


def path_length_matches_distance(
    x: WordTuple, y: WordTuple, path: Sequence[RoutingStep], directed: bool = False
) -> bool:
    """True when ``len(path)`` equals the corresponding distance function."""
    if directed:
        return len(path) == directed_distance(x, y)
    from repro.core.distance import undirected_distance  # cycle-free local import

    return len(path) == undirected_distance(x, y)


def format_path(path: Sequence[RoutingStep]) -> str:
    """Human-readable rendering, e.g. ``"L0 R* R1 L1"``."""
    return " ".join(str(step) for step in path)


def parse_path(text: str, d: Optional[int] = None) -> Path:
    """Inverse of :func:`format_path` (used by the CLI).

    A step token is ``L`` or ``R`` followed by either ``*`` (a wildcard)
    or a plain decimal digit body — exactly what :func:`format_path`
    emits.  Anything else (``"Lx"``, ``"L+1"``, ``"L1_2"``, a bare
    ``"L"``) raises :class:`RoutingError` naming the offending token;
    ``int()``'s permissiveness (underscores, signs, surrounding space)
    is deliberately not inherited.  When ``d`` is given, digits are
    additionally range-checked against the alphabet, so e.g. ``"L12"``
    is rejected on a binary network but accepted for d >= 13.
    """
    steps: Path = []
    for token in text.split():
        if len(token) < 2 or token[0] not in "LR":
            raise RoutingError(f"malformed step token {token!r}")
        direction = Direction.LEFT if token[0] == "L" else Direction.RIGHT
        body = token[1:]
        if body == "*":
            digit: Optional[int] = None
        else:
            if not body.isascii() or not body.isdigit():
                raise RoutingError(
                    f"malformed digit body in step token {token!r} "
                    "(expected '*' or a decimal digit string)"
                )
            digit = int(body)
            if d is not None and digit >= d:
                raise RoutingError(
                    f"digit {digit} of step token {token!r} is not in 0..{d - 1}"
                )
        steps.append(RoutingStep(direction, digit))
    return steps
