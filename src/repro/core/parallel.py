"""Multiprocess sharded BFS: all-pairs structure at worker-count speed.

:mod:`repro.core.batch` made one BFS row cheap (packed ints, bytearray
rows); this module makes *all N rows* cheap by fanning row chunks across
worker processes.  The design is the classical shared-memory shard
pattern:

* the parent allocates flat ``N x N`` byte buffers in
  :mod:`multiprocessing.shared_memory`,
* a chunked work queue hands out ``[start, stop)`` row ranges (so slow
  and fast rows load-balance dynamically),
* each worker runs the packed BFS kernel of :mod:`repro.core.batch` (or
  the reverse-BFS next-hop kernel used by :mod:`repro.core.tables`) and
  writes its rows straight into the shared buffer — no pickling of
  results, no per-row IPC.

Workers are started with the ``fork`` start method so the shared-memory
views and the work queue are inherited directly.  Where ``fork`` is
unavailable (or only one worker is requested, or the shared segment
cannot be allocated) everything **falls back to the serial in-process
fill** — same kernels, same output bytes, just one process.  The
parallel and serial fills are asserted byte-identical in
``tests/test_parallel.py``.

Two row layouts are produced:

* ``"matrix"`` — source-major distance rows (``buf[src * N + dst]``),
  exactly :func:`repro.core.batch.distance_matrix` flattened;
* ``"table"`` — destination-major *routing* rows: for each destination a
  distance row **and** a next-hop action row (one byte per source; see
  :mod:`repro.core.tables` for the action encoding), built by BFS from
  the destination over in-neighbors so that following actions traces a
  shortest path.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import List, Optional, Sequence, Tuple

from repro.core import arraybfs
from repro.core.arraybfs import resolve_kernel
from repro.core.batch import _UNSEEN, _bfs_fill
from repro.core.packed import PackedSpace
from repro.core.word import validate_parameters
from repro.exceptions import InvalidParameterError, InvalidWordError

#: Rows per work-queue item; small enough to load-balance, large enough
#: that queue traffic is negligible next to the BFS work.
DEFAULT_CHUNK_ROWS = 64

#: Upper bound on the default worker count (explicit ``workers=`` may
#: exceed it; benches do, to measure oversubscription).
MAX_DEFAULT_WORKERS = 4

#: Refuse buffers beyond this many cells (2 GiB) — all-pairs structure
#: for larger graphs needs out-of-core compilation, not one mmap.
MAX_CELLS = 2**31

#: Next-hop action row sentinels (shared with :mod:`repro.core.tables`).
ACTION_AT_DESTINATION = 0xFE
ACTION_UNREACHABLE = 0xFF

_KINDS = ("matrix", "table")


def available_cpus() -> int:
    """CPUs this process may use (affinity-aware where supported)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def default_workers() -> int:
    """The worker count used when callers pass ``workers=None``."""
    return max(1, min(MAX_DEFAULT_WORKERS, available_cpus()))


def fork_available() -> bool:
    """True when the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def chunk_ranges(total: int, chunk_size: int) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into ``[start, stop)`` work-queue items.

    >>> chunk_ranges(10, 4)
    [(0, 4), (4, 8), (8, 10)]
    """
    if chunk_size < 1:
        raise InvalidParameterError(f"chunk_size must be >= 1, got {chunk_size}")
    return [(start, min(start + chunk_size, total))
            for start in range(0, total, chunk_size)]


def _check_buffer_size(d: int, k: int) -> int:
    """Validate (d, k) for flat all-pairs byte buffers; returns N."""
    validate_parameters(d, k)
    n = d**k
    if n * n > MAX_CELLS:
        raise InvalidParameterError(
            f"DG({d},{k}) needs {n}^2-byte flat buffers, beyond the "
            f"{MAX_CELLS}-cell ({MAX_CELLS >> 30} GiB) guard for one "
            f"all-pairs compile. Big k is served by the lazy sharded "
            f"tier instead: repro.core.shards.ShardedRouteTable compiles "
            f"per-destination-prefix shards on demand under a byte "
            f"budget (CLI: `serve --shards --shard-budget-mb ...`)."
        )
    if k >= _UNSEEN - 1:
        raise InvalidWordError(f"k = {k} overflows the byte distance rows")
    if 2 * d >= ACTION_AT_DESTINATION:
        raise InvalidParameterError(
            f"d = {d} overflows the one-byte action encoding"
        )
    return n


# ----------------------------------------------------------------------
# Row kernels (run in workers and in the serial fallback)
# ----------------------------------------------------------------------


#: Temporary in-row marker for vertices excluded from a blocked BFS;
#: distances never reach it (k <= 253 is enforced) and it differs from
#: the 0xFF "unseen" template, so blocked vertices are simply never
#: discovered.  Rows are cleaned back to 0xFF before returning.
_BLOCKED_MARK = 0xFE


def _table_fill(d: int, k: int, dest: int, directed: bool,
                dist_row: bytearray, act_row: bytearray,
                blocked=None) -> None:
    """Reverse BFS from ``dest``: distances *to* dest + next-hop actions.

    ``dist_row[src]`` becomes the length of a shortest path src -> dest;
    ``act_row[src]`` the one-byte action of its first hop (``a`` in
    ``0..d-1``: left shift inserting ``a``; ``d + a``: right shift
    inserting ``a``; ``0xFE``: already at the destination).  Both rows
    must be pre-set to ``0xFF`` (unreachable).

    The BFS runs over *in*-neighbors: when ``u`` is discovered from
    ``v``, the edge ``u -> v`` moves one step closer to ``dest``, and
    the action byte records how ``u`` reaches ``v`` (``v``'s tail digit
    for a left shift, ``v``'s head digit for a right shift).

    ``blocked`` (an iterable of packed vertices, not containing
    ``dest``) removes those vertices from the graph: they are neither
    discovered nor expanded, and their row entries stay ``0xFF``.  This
    is the kernel the fault-repair layer (:mod:`repro.network.resilience`)
    uses to recompute rows on the surviving topology; the marking trick
    keeps the unblocked hot loop untouched.
    """
    high = d ** (k - 1)
    if blocked:
        for u in blocked:
            dist_row[u] = _BLOCKED_MARK
    dist_row[dest] = 0
    act_row[dest] = ACTION_AT_DESTINATION
    frontier = [dest]
    level = 0
    while frontier:
        level += 1
        nxt: List[int] = []
        push = nxt.append
        for v in frontier:
            body = v // d
            left_act = v % d  # enter v by a left shift inserting its tail
            for b in range(d):
                u = b * high + body
                if dist_row[u] == 0xFF:
                    dist_row[u] = level
                    act_row[u] = left_act
                    push(u)
            if not directed:
                right_act = d + v // high  # right shift inserting v's head
                base = (v % high) * d
                for u in range(base, base + d):
                    if dist_row[u] == 0xFF:
                        dist_row[u] = level
                        act_row[u] = right_act
                        push(u)
        frontier = nxt
    if blocked:
        for u in blocked:
            dist_row[u] = ACTION_UNREACHABLE


def _fill_chunk(kind: str, d: int, k: int, directed: bool,
                start: int, stop: int, buffers: Sequence,
                kernel: str = "python") -> None:
    """Fill rows ``[start, stop)`` of the flat buffer(s) for ``kind``.

    ``kernel="array"`` hands the whole chunk to the numpy lockstep BFS
    of :mod:`repro.core.arraybfs` (byte-identical, ~6x on one core);
    ``kernel="python"`` computes rows in local bytearrays (the fastest
    mutable byte container in CPython) and blits each into the shared
    buffer in one slice assignment.
    """
    n = d**k
    if kernel == "array":
        if kind == "matrix":
            (dist_buf,) = buffers
            arraybfs.fill_matrix_rows(
                d, k, start, stop, directed,
                memoryview(dist_buf)[start * n:stop * n])
        elif kind == "table":
            dist_buf, act_buf = buffers
            arraybfs.fill_table_rows(
                d, k, start, stop, directed,
                memoryview(dist_buf)[start * n:stop * n],
                memoryview(act_buf)[start * n:stop * n])
        else:  # pragma: no cover - internal misuse
            raise InvalidParameterError(f"unknown fill kind {kind!r}")
        return
    template = bytes([_UNSEEN]) * n
    if kind == "matrix":
        (dist_buf,) = buffers
        space = PackedSpace(d, k)
        row = bytearray(template)
        for source in range(start, stop):
            row[:] = template
            _bfs_fill(space, source, directed, row)
            dist_buf[source * n:(source + 1) * n] = row
    elif kind == "table":
        dist_buf, act_buf = buffers
        dist_row = bytearray(template)
        act_row = bytearray(template)
        for dest in range(start, stop):
            dist_row[:] = template
            act_row[:] = template
            _table_fill(d, k, dest, directed, dist_row, act_row)
            dist_buf[dest * n:(dest + 1) * n] = dist_row
            act_buf[dest * n:(dest + 1) * n] = act_row
    else:  # pragma: no cover - internal misuse
        raise InvalidParameterError(f"unknown fill kind {kind!r}")


def _worker_main(kind: str, d: int, k: int, directed: bool,
                 buffers: Sequence, queue, kernel: str = "python") -> None:
    """Worker loop: drain ``[start, stop)`` chunks until the None sentinel.

    Runs in a forked child; ``buffers`` are the parent's shared-memory
    views inherited across the fork, so writes land directly in the
    parent's segments.
    """
    while True:
        task = queue.get()
        if task is None:
            return
        start, stop = task
        _fill_chunk(kind, d, k, directed, start, stop, buffers, kernel)


# ----------------------------------------------------------------------
# The sharded driver
# ----------------------------------------------------------------------


def sharded_rows(
    kind: str,
    d: int,
    k: int,
    directed: bool = False,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    kernel: Optional[str] = None,
) -> Tuple[bytearray, ...]:
    """Compute all rows of ``kind`` for DG(d, k), sharded across workers.

    Returns the flat ``N*N``-byte buffer(s) as bytearrays — one for
    ``kind="matrix"`` (distances, source-major), two for
    ``kind="table"`` (distances then next-hop actions, both
    destination-major).

    ``workers=None`` picks ``min(4, cpus)``; ``workers=1``, a platform
    without ``fork``, or a failed shared-memory allocation all take the
    serial in-process path, which produces byte-identical output.
    ``kernel`` picks the per-chunk BFS engine (``"array"`` /
    ``"python"`` / ``"auto"``, see :func:`repro.core.arraybfs.
    resolve_kernel`); all kernels produce identical bytes.
    """
    if kind not in _KINDS:
        raise InvalidParameterError(f"unknown fill kind {kind!r}")
    n = _check_buffer_size(d, k)
    resolved_kernel = resolve_kernel(kernel)
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise InvalidParameterError(f"workers must be >= 1, got {workers}")
    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK_ROWS
    chunks = chunk_ranges(n, chunk_size)
    n_buffers = 1 if kind == "matrix" else 2
    workers = min(workers, len(chunks))

    if workers <= 1 or not fork_available():
        return _serial_rows(kind, d, k, directed, n, n_buffers,
                            resolved_kernel)

    try:
        from multiprocessing import shared_memory
        segments = []
        for _ in range(n_buffers):
            segments.append(shared_memory.SharedMemory(create=True, size=n * n))
    except (ImportError, OSError, ValueError):  # pragma: no cover - no /dev/shm
        for segment in locals().get("segments", []):
            segment.close()
            segment.unlink()
        return _serial_rows(kind, d, k, directed, n, n_buffers,
                            resolved_kernel)

    try:
        context = multiprocessing.get_context("fork")
        queue = context.Queue()
        views = [segment.buf for segment in segments]
        processes = [
            context.Process(
                target=_worker_main,
                args=(kind, d, k, directed, views, queue, resolved_kernel),
                daemon=True,
            )
            for _ in range(workers)
        ]
        for process in processes:
            process.start()
        for chunk in chunks:
            queue.put(chunk)
        for _ in processes:
            queue.put(None)
        for process in processes:
            process.join()
        failed = [p.exitcode for p in processes if p.exitcode != 0]
        if failed:
            raise InvalidParameterError(
                f"{len(failed)} BFS shard worker(s) exited with "
                f"{failed}; shared buffers are incomplete"
            )
        result = tuple(bytearray(view) for view in views)
    finally:
        for view in locals().get("views", []):
            view.release()
        for segment in segments:
            segment.close()
            segment.unlink()
    return result


def _serial_rows(kind: str, d: int, k: int, directed: bool,
                 n: int, n_buffers: int,
                 kernel: str = "python") -> Tuple[bytearray, ...]:
    """The graceful fallback: one process, same kernels, same bytes."""
    buffers = tuple(bytearray(n * n) for _ in range(n_buffers))
    _fill_chunk(kind, d, k, directed, 0, n, buffers, kernel)
    return buffers


# ----------------------------------------------------------------------
# Public conveniences
# ----------------------------------------------------------------------


def distance_matrix_flat(
    d: int,
    k: int,
    directed: bool = False,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    kernel: Optional[str] = None,
) -> bytearray:
    """The N x N distance matrix as one flat source-major bytearray.

    ``buf[pack(x) * N + pack(y)]`` is D(X, Y) — the sharded analogue of
    :func:`repro.core.batch.distance_matrix` (byte-identical to it row
    by row, as the tests assert).
    """
    (dist,) = sharded_rows("matrix", d, k, directed, workers, chunk_size,
                           kernel)
    return dist


def parallel_distance_matrix(
    d: int,
    k: int,
    directed: bool = False,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    kernel: Optional[str] = None,
) -> List[bytearray]:
    """Row-list view of :func:`distance_matrix_flat` (drop-in for
    :func:`repro.core.batch.distance_matrix`)."""
    n = d**k
    flat = distance_matrix_flat(d, k, directed, workers, chunk_size, kernel)
    return [flat[i * n:(i + 1) * n] for i in range(n)]


def compile_table_buffers(
    d: int,
    k: int,
    directed: bool = False,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    kernel: Optional[str] = None,
) -> Tuple[bytearray, bytearray]:
    """(distances, next-hop actions), destination-major, for DG(d, k).

    The raw material of :class:`repro.core.tables.CompiledRouteTable`:
    ``dist[pack(y) * N + pack(x)]`` is D(X, Y) and
    ``act[pack(y) * N + pack(x)]`` the first-hop action of a shortest
    path from X to Y.
    """
    dist, act = sharded_rows("table", d, k, directed, workers, chunk_size,
                             kernel)
    return dist, act
