"""Compact suffix trees over integer sequences (the paper's "prefix trees").

The paper's Algorithm 4 uses Weiner's (1973) *compact prefix tree* — the
tree of shortest unique prefix identifiers of every position of a string,
with unary chains condensed.  That structure is exactly the compact suffix
tree; we build it with Ukkonen's online algorithm, which is equally linear
in time and space and considerably easier to implement correctly.  A naive
quadratic builder (:func:`build_naive`) plus a canonical-form comparator
back the property tests.

Symbols are arbitrary hashable, equality-comparable objects; the library
uses small non-negative ints for d-ary digits and negative ints for the
endmarkers (the paper's ``⊥`` and ``⊤``).

The routing application needs a *generalized* suffix tree of the two vertex
labels: :class:`GeneralizedSuffixTree` builds the tree of
``X · SEP1 · Y · SEP2`` and annotates every node with the minimum and
maximum start positions of the X- and Y-suffixes below it — the role played
by the paper's ``p(v)`` and ``q(v)`` leaf minima in Algorithm 4 lines
3.1/4.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

Symbol = int
Text = Sequence[Symbol]

#: Separator between X and Y in the generalized tree (the paper's ``⊥``).
SEPARATOR = -1
#: Terminal endmarker of the generalized tree (the paper's ``⊤``).
ENDMARKER = -2


class Node:
    """A node of a compact suffix tree.

    The incoming edge is labeled ``text[start:end]``.  The root has
    ``start == end == 0`` (empty label).  ``depth`` is the *string depth*:
    the total label length from the root; the paper calls this ``D(v)``.
    """

    __slots__ = ("children", "start", "end", "link", "depth", "suffix_index")

    def __init__(self, start: int, end: int) -> None:
        self.children: Dict[Symbol, "Node"] = {}
        self.start = start
        self.end = end
        self.link: Optional["Node"] = None
        self.depth = 0
        self.suffix_index = -1  # set on leaves after construction

    @property
    def is_leaf(self) -> bool:
        """True when the node has no children (a position of the string)."""
        return not self.children

    def edge_length(self) -> int:
        """Length of the incoming edge label."""
        return self.end - self.start


class SuffixTree:
    """Compact suffix tree of ``text``, built online with Ukkonen's algorithm.

    When ``add_sentinel`` is true (the default) a unique terminal symbol is
    appended so that every suffix ends at a leaf — the paper's endmarker
    trick ("the use of endmarker guarantees the existence of a unique prefix
    tree for any given string").

    >>> tree = SuffixTree((0, 1, 0, 0, 1))
    >>> tree.count_occurrences((0, 1))
    2
    >>> sorted(tree.occurrences((0,)))
    [0, 2, 3]
    """

    def __init__(self, text: Text, add_sentinel: bool = True) -> None:
        body = tuple(text)
        if add_sentinel:
            sentinel = min(body, default=0) - 1
            if ENDMARKER < sentinel:
                sentinel = ENDMARKER - 1
            body = body + (sentinel,)
        self.text: Tuple[Symbol, ...] = body
        self.root = Node(0, 0)
        self._build()
        self._annotate()

    # ------------------------------------------------------------------
    # Construction (Ukkonen 1995)
    # ------------------------------------------------------------------

    def _build(self) -> None:
        text = self.text
        n = len(text)
        root = self.root
        active_node = root
        active_edge = 0  # index into text of the active edge's first symbol
        active_length = 0
        remainder = 0
        for i in range(n):
            remainder += 1
            pending: Optional[Node] = None  # internal node awaiting a suffix link
            while remainder > 0:
                if active_length == 0:
                    active_edge = i
                child = active_node.children.get(text[active_edge])
                if child is None:
                    leaf = Node(i, n)
                    active_node.children[text[active_edge]] = leaf
                    if pending is not None:
                        pending.link = active_node
                        pending = None
                else:
                    edge_len = child.edge_length()
                    if active_length >= edge_len:
                        # Walk down: the active point lies past this edge.
                        active_edge += edge_len
                        active_length -= edge_len
                        active_node = child
                        continue
                    if text[child.start + active_length] == text[i]:
                        # The symbol is already present: rule 3, end phase.
                        active_length += 1
                        if pending is not None:
                            pending.link = active_node
                        break
                    split = Node(child.start, child.start + active_length)
                    active_node.children[text[active_edge]] = split
                    child.start += active_length
                    split.children[text[child.start]] = child
                    leaf = Node(i, n)
                    split.children[text[i]] = leaf
                    if pending is not None:
                        pending.link = split
                    pending = split
                remainder -= 1
                if active_node is root and active_length > 0:
                    active_length -= 1
                    active_edge = i - remainder + 1
                elif active_node is not root:
                    active_node = active_node.link if active_node.link is not None else root

    def _annotate(self) -> None:
        """Set string depths everywhere and suffix indices on leaves."""
        n = len(self.text)
        stack: List[Tuple[Node, int]] = [(self.root, 0)]
        while stack:
            node, depth = stack.pop()
            node.depth = depth
            if node.is_leaf:
                node.suffix_index = n - depth
            else:
                for child in node.children.values():
                    stack.append((child, depth + child.edge_length()))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def nodes(self) -> Iterator[Node]:
        """Iterate all nodes, parents before children (preorder DFS)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def postorder(self) -> Iterator[Node]:
        """Iterate all nodes, children before parents."""
        out: List[Node] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(node.children.values())
        return reversed(out)

    def _locate(self, pattern: Text) -> Optional[Tuple[Node, int]]:
        """Walk ``pattern`` from the root; return (node, symbols matched on
        its incoming edge) or None when the pattern does not occur."""
        node = self.root
        pos = 0
        m = len(pattern)
        while pos < m:
            child = node.children.get(pattern[pos])
            if child is None:
                return None
            take = min(child.edge_length(), m - pos)
            if tuple(self.text[child.start : child.start + take]) != tuple(pattern[pos : pos + take]):
                return None
            pos += take
            node = child
        return node, 0

    def contains(self, pattern: Text) -> bool:
        """True when ``pattern`` occurs as a substring of the text."""
        return self._locate(tuple(pattern)) is not None

    def occurrences(self, pattern: Text) -> List[int]:
        """Start positions of every occurrence of ``pattern``."""
        located = self._locate(tuple(pattern))
        if located is None:
            return []
        node, _ = located
        result = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                result.append(current.suffix_index)
            else:
                stack.extend(current.children.values())
        return result

    def count_occurrences(self, pattern: Text) -> int:
        """Number of occurrences of ``pattern`` in the text."""
        return len(self.occurrences(pattern))

    def leaf_count(self) -> int:
        """Number of leaves (== number of suffixes, text length)."""
        return sum(1 for node in self.nodes() if node.is_leaf)

    def node_count(self) -> int:
        """Total number of nodes; O(n) for a compact tree (paper Section 3.3)."""
        return sum(1 for _ in self.nodes())

    def suffix_array(self) -> List[int]:
        """Suffix start positions in lexicographic order (sentinel included).

        Read off a symbol-ordered DFS of the compact tree — O(n log σ) for
        the sorting of child symbols.
        """
        return self.suffix_array_with_lcp()[0]

    def suffix_array_with_lcp(self) -> Tuple[List[int], List[int]]:
        """The suffix array plus the LCP of each consecutive suffix pair.

        ``lcp[i]`` is the longest common prefix length of the suffixes at
        ``sa[i]`` and ``sa[i+1]`` — the string depth of their LCA, captured
        at the deepest node whose child iteration advances between them.
        """
        sa: List[int] = []
        lcp: List[int] = []
        next_lcp = 0
        boundary_set = True  # nothing emitted yet; first leaf has no LCP
        stack: List[Tuple[Node, List[Node], int]] = [
            (self.root, self._sorted_children(self.root), 0)
        ]
        while stack:
            node, children, index = stack.pop()
            if node.is_leaf and node is not self.root:
                if sa:
                    lcp.append(next_lcp)
                sa.append(node.suffix_index)
                boundary_set = False
                continue
            if index < len(children):
                if index > 0 and not boundary_set:
                    next_lcp = node.depth
                    boundary_set = True
                stack.append((node, children, index + 1))
                child = children[index]
                stack.append((child, self._sorted_children(child), 0))
        return sa, lcp

    def _sorted_children(self, node: Node) -> List[Node]:
        return [node.children[symbol] for symbol in sorted(node.children)]

    def longest_repeated_substring(self) -> Tuple[Symbol, ...]:
        """Deepest internal node's path string (the paper's worked example
        of what prefix trees are good for)."""
        best: Optional[Node] = None
        parents: Dict[int, Node] = {}
        for node in self.nodes():
            for child in node.children.values():
                parents[id(child)] = node
            if not node.is_leaf and node is not self.root:
                if best is None or node.depth > best.depth:
                    best = node
        if best is None:
            return ()
        # Reconstruct the path string by climbing to the root.
        pieces: List[Tuple[Symbol, ...]] = []
        node = best
        while node is not self.root:
            pieces.append(tuple(self.text[node.start : node.end]))
            node = parents[id(node)]
        return tuple(sym for piece in reversed(pieces) for sym in piece)


def build_naive(text: Text, add_sentinel: bool = True) -> SuffixTree:
    """Quadratic-time compact suffix tree used as a test oracle.

    Builds an empty :class:`SuffixTree` shell and inserts every suffix by
    direct descent, splitting edges as needed.  The resulting structure is
    compared against Ukkonen's via :func:`canonical_form`.
    """
    tree = SuffixTree.__new__(SuffixTree)
    body = tuple(text)
    if add_sentinel:
        sentinel = min(body, default=0) - 1
        if ENDMARKER < sentinel:
            sentinel = ENDMARKER - 1
        body = body + (sentinel,)
    tree.text = body
    tree.root = Node(0, 0)
    n = len(body)
    for start in range(n):
        node = tree.root
        pos = start
        while True:
            child = node.children.get(body[pos])
            if child is None:
                node.children[body[pos]] = Node(pos, n)
                break
            matched = 0
            edge_len = child.edge_length()
            while (
                matched < edge_len
                and pos + matched < n
                and body[child.start + matched] == body[pos + matched]
            ):
                matched += 1
            if matched == edge_len:
                node = child
                pos += matched
                continue
            # Split the edge after `matched` symbols.
            split = Node(child.start, child.start + matched)
            node.children[body[pos]] = split
            child.start += matched
            split.children[body[child.start]] = child
            split.children[body[pos + matched]] = Node(pos + matched, n)
            break
    tree._annotate()
    return tree


def canonical_form(tree: SuffixTree, node: Optional[Node] = None):
    """A nested-tuple canonical form for structural tree comparison.

    Two compact suffix trees of the same string are identical iff their
    canonical forms compare equal (children sorted by first edge symbol,
    edges compared by label content rather than by index).
    """
    if node is None:
        node = tree.root
    children = []
    for symbol in sorted(node.children):
        child = node.children[symbol]
        label = tuple(tree.text[child.start : child.end])
        children.append((label, canonical_form(tree, child)))
    return tuple(children)


@dataclass(frozen=True)
class Alignment:
    """A forward common substring witness ``x[a : a + s] == y[b : b + s]``."""

    a: int
    b: int
    s: int


class GeneralizedSuffixTree:
    """Suffix tree of ``X · ⊥ · Y · ⊤`` with per-node leaf aggregates.

    For every node ``v`` the constructor records the minimum and maximum
    start positions of X-suffixes and Y-suffixes among the leaves below
    ``v`` (``-1`` when absent).  These are the linear-time analogue of the
    paper's ``p(v)``/``q(v)`` computations (Algorithm 4, lines 3.1 and 4.1)
    and suffice to optimise any function of
    ``(depth, min/max X position, min/max Y position)`` in one traversal.
    """

    def __init__(self, x: Text, y: Text) -> None:
        self.x = tuple(x)
        self.y = tuple(y)
        combined = self.x + (SEPARATOR,) + self.y + (ENDMARKER,)
        self.tree = SuffixTree(combined, add_sentinel=False)
        self._min_x: Dict[int, int] = {}
        self._max_x: Dict[int, int] = {}
        self._min_y: Dict[int, int] = {}
        self._max_y: Dict[int, int] = {}
        self._aggregate()

    def _classify(self, suffix_index: int) -> Tuple[Optional[int], Optional[int]]:
        """Map a combined-text suffix start to an (X position, Y position)."""
        kx = len(self.x)
        ky = len(self.y)
        if suffix_index < kx:
            return suffix_index, None
        if kx < suffix_index < kx + 1 + ky:
            return None, suffix_index - kx - 1
        return None, None  # the ⊥... or ⊤ suffix itself

    def _aggregate(self) -> None:
        for node in self.tree.postorder():
            key = id(node)
            if node.is_leaf:
                xpos, ypos = self._classify(node.suffix_index)
                self._min_x[key] = self._max_x[key] = xpos if xpos is not None else -1
                self._min_y[key] = self._max_y[key] = ypos if ypos is not None else -1
                continue
            min_x = max_x = min_y = max_y = -1
            for child in node.children.values():
                ckey = id(child)
                cmin_x, cmax_x = self._min_x[ckey], self._max_x[ckey]
                cmin_y, cmax_y = self._min_y[ckey], self._max_y[ckey]
                if cmin_x >= 0 and (min_x < 0 or cmin_x < min_x):
                    min_x = cmin_x
                if cmax_x >= 0 and cmax_x > max_x:
                    max_x = cmax_x
                if cmin_y >= 0 and (min_y < 0 or cmin_y < min_y):
                    min_y = cmin_y
                if cmax_y >= 0 and cmax_y > max_y:
                    max_y = cmax_y
            self._min_x[key], self._max_x[key] = min_x, max_x
            self._min_y[key], self._max_y[key] = min_y, max_y

    def longest_common_substring(self) -> Alignment:
        """The deepest node covering both strings — an LCS witness.

        Returns the :class:`Alignment` with maximal ``s`` (``s == 0`` with
        ``a == b == 0`` when the strings share no symbol).
        """
        best = Alignment(0, 0, 0)
        for node in self.tree.nodes():
            if node.is_leaf or node is self.tree.root:
                continue
            key = id(node)
            if self._min_x[key] >= 0 and self._min_y[key] >= 0 and node.depth > best.s:
                best = Alignment(self._min_x[key], self._min_y[key], node.depth)
        return best

    def best_alignments(self) -> Tuple[Optional[Alignment], Optional[Alignment]]:
        """Witnesses maximising ``2s + (b - a)`` and ``2s + (a - b)``.

        These are exactly the quantities the undirected distance function
        minimises over (Theorem 2 re-parametrised; see DESIGN.md Section 2):
        the first drives the paper's ``l``-case (route ``L^p R^q L^r``), the
        second the ``r``-case (route ``R^p L^q R^r``).  Either is ``None``
        when the strings share no symbol at all.  O(k) time.
        """
        best_l: Optional[Alignment] = None
        best_l_score = None
        best_r: Optional[Alignment] = None
        best_r_score = None
        for node in self.tree.nodes():
            if node.is_leaf or node is self.tree.root:
                continue
            key = id(node)
            min_x, max_x = self._min_x[key], self._max_x[key]
            min_y, max_y = self._min_y[key], self._max_y[key]
            if min_x < 0 or min_y < 0:
                continue
            depth = node.depth
            score_l = 2 * depth + (max_y - min_x)
            if best_l_score is None or score_l > best_l_score:
                best_l_score = score_l
                best_l = Alignment(min_x, max_y, depth)
            score_r = 2 * depth + (max_x - min_y)
            if best_r_score is None or score_r > best_r_score:
                best_r_score = score_r
                best_r = Alignment(max_x, min_y, depth)
        return best_l, best_r
