"""Enumerating, counting and sampling *all* shortest paths.

The paper's algorithms produce one canonical optimal route per pair.  In
the undirected network there are usually several, and spreading traffic
over them is the natural continuation of the paper's wildcard remark.
This module walks the shortest-path DAG implied by the distance function
(a neighbor ``n`` of ``c`` is on some shortest path to ``y`` iff
``D(n, y) == D(c, y) − 1``), giving:

* :func:`all_shortest_paths` — full enumeration with a safety cap,
* :func:`count_shortest_paths` — memoised counting without enumeration,
* :func:`random_shortest_path` — uniform-at-random sampling by counting.

In the *directed* graph the shortest path is always unique — a length-t
walk from X must spell ``Y = x_{t+1..k} a_1..a_t``, which pins every
digit — a fact the tests pin down and the spectral module
(:mod:`repro.analysis.spectral`) re-derives as ``A^k = J``.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.distance import undirected_distance
from repro.core.routing import Direction, Path, RoutingStep
from repro.core.word import WordTuple, left_shift, right_shift
from repro.exceptions import RoutingError

#: Default cap on enumation size; shortest-path counts grow quickly.
DEFAULT_MAX_PATHS = 10_000

Move = Tuple[Direction, int, WordTuple]  # (shift type, digit, landing vertex)


def _optimal_moves(current: WordTuple, target: WordTuple, d: int, remaining: int) -> List[Move]:
    """Moves from ``current`` that stay on a shortest path to ``target``."""
    moves: List[Move] = []
    seen = set()
    for digit in range(d):
        landing = left_shift(current, digit)
        if landing not in seen and undirected_distance(landing, target) == remaining - 1:
            seen.add(landing)
            moves.append((Direction.LEFT, digit, landing))
    for digit in range(d):
        landing = right_shift(current, digit)
        if landing not in seen and undirected_distance(landing, target) == remaining - 1:
            seen.add(landing)
            moves.append((Direction.RIGHT, digit, landing))
    return moves


def all_shortest_paths(
    x: WordTuple, y: WordTuple, d: int, max_paths: int = DEFAULT_MAX_PATHS
) -> List[Path]:
    """Every shortest routing path from ``x`` to ``y`` (undirected network).

    Paths that reach the same vertex by coincident L/R edges are counted
    once (per distinct vertex sequence).  Raises :class:`RoutingError` when
    more than ``max_paths`` exist.
    """
    distance = undirected_distance(x, y)
    results: List[Path] = []

    def extend(current: WordTuple, remaining: int, prefix: Path) -> None:
        if remaining == 0:
            results.append(list(prefix))
            if len(results) > max_paths:
                raise RoutingError(
                    f"more than {max_paths} shortest paths from {x!r} to {y!r}"
                )
            return
        for direction, digit, landing in _optimal_moves(current, y, d, remaining):
            prefix.append(RoutingStep(direction, digit))
            extend(landing, remaining - 1, prefix)
            prefix.pop()

    extend(x, distance, [])
    return results


def count_shortest_paths(x: WordTuple, y: WordTuple, d: int) -> int:
    """Number of distinct shortest vertex sequences from ``x`` to ``y``."""
    distance = undirected_distance(x, y)
    memo: Dict[Tuple[WordTuple, int], int] = {}

    def count(current: WordTuple, remaining: int) -> int:
        if remaining == 0:
            return 1
        key = (current, remaining)
        cached = memo.get(key)
        if cached is not None:
            return cached
        total = sum(
            count(landing, remaining - 1)
            for _, _, landing in _optimal_moves(current, y, d, remaining)
        )
        memo[key] = total
        return total

    return count(x, distance)


def random_shortest_path(
    x: WordTuple, y: WordTuple, d: int, rng: Optional[random.Random] = None
) -> Path:
    """A uniformly random shortest path, by proportional sampling.

    Each optimal move is taken with probability proportional to the number
    of shortest completions through it, which makes the resulting path
    uniform over all shortest vertex sequences.
    """
    generator = rng if rng is not None else random.Random()
    distance = undirected_distance(x, y)
    memo: Dict[Tuple[WordTuple, int], int] = {}

    def count(current: WordTuple, remaining: int) -> int:
        if remaining == 0:
            return 1
        key = (current, remaining)
        cached = memo.get(key)
        if cached is not None:
            return cached
        total = sum(
            count(landing, remaining - 1)
            for _, _, landing in _optimal_moves(current, y, d, remaining)
        )
        memo[key] = total
        return total

    path: Path = []
    current = x
    remaining = distance
    while remaining > 0:
        moves = _optimal_moves(current, y, d, remaining)
        weights = [count(landing, remaining - 1) for _, _, landing in moves]
        pick = generator.randrange(sum(weights))
        cumulative = 0
        for (direction, digit, landing), weight in zip(moves, weights):
            cumulative += weight
            if pick < cumulative:
                path.append(RoutingStep(direction, digit))
                current = landing
                remaining -= 1
                break
    return path


def iter_shortest_path_vertices(
    x: WordTuple, y: WordTuple, d: int, max_paths: int = DEFAULT_MAX_PATHS
) -> Iterator[List[WordTuple]]:
    """Vertex sequences of every shortest path (for analysis/tests)."""
    from repro.core.routing import path_words

    for path in all_shortest_paths(x, y, d, max_paths):
        yield path_words(x, path, d)


def directed_shortest_path_is_unique(x: WordTuple, y: WordTuple) -> bool:
    """Always True: the directed shortest walk's digits are forced.

    Kept as an executable statement of the uniqueness fact (tested against
    exhaustive walk enumeration in the test suite).
    """
    return True
