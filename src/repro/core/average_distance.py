"""Average inter-vertex distances (paper Equation (5) and Figure 2).

The paper derives a closed form for the directed graph's average distance,

    δ(d, k) = Σ_{i=1..k} i · α^{k-i} · (1-α),   α = 1/d
            = k − (1 − α^k) · α / (1 − α),                          (5)

by assigning probability ``α^{k-i}(1-α)`` to distance ``i``.  That model
treats "overlap ≥ s" as the single event "suffix_s(X) == prefix_s(Y)" of
probability ``α^s``; the events are in fact not nested (an overlap of
length 2 does not require one of length 1), so (5) is an *upper bound* that
exceeds the exact average slightly.  This module provides both the paper's
closed form and exact/sampled ground truth, and the benches record the gap
(see EXPERIMENTS.md, experiment E2).

For the undirected graph the paper gives no formula — Figure 2 plots
numerical averages.  :func:`undirected_average_distance_exact` regenerates
the exact values by full enumeration (feasible for d^k up to a few
thousand) and :func:`undirected_average_distance_sampled` extends the
series by uniform pair sampling.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.core.distance import directed_distance, undirected_distance
from repro.core.word import iter_words, random_word, validate_parameters


def directed_average_distance_closed_form(d: int, k: int) -> float:
    """The paper's Equation (5): ``δ(d, k) = k − (1 − α^k)·α/(1 − α)``.

    >>> directed_average_distance_closed_form(2, 3)  # k - 1 + 1/2^k
    2.125
    """
    validate_parameters(d, k)
    alpha = 1.0 / d
    return k - (1.0 - alpha**k) * alpha / (1.0 - alpha)


def directed_distance_distribution_model(d: int, k: int) -> Dict[int, float]:
    """The distance distribution the paper's Eq. (5) sums: P(D=i)=α^{k-i}(1-α).

    Includes the mass ``P(D=0) = α^k`` (the probability ``X == Y``); the
    masses sum to 1 exactly.
    """
    validate_parameters(d, k)
    alpha = 1.0 / d
    dist = {0: alpha**k}
    for i in range(1, k + 1):
        dist[i] = alpha ** (k - i) * (1.0 - alpha)
    return dist


def directed_average_distance_exact(d: int, k: int) -> float:
    """Exact mean of D(X, Y) over all ordered pairs, by full enumeration.

    O(N² k) time with N = d^k — intended for small graphs; the numpy path
    in :mod:`repro.analysis.exact` scales further.
    """
    validate_parameters(d, k)
    total = 0
    count = 0
    words = list(iter_words(d, k))
    for x in words:
        for y in words:
            total += directed_distance(x, y)
            count += 1
    return total / count


def directed_distance_distribution_exact(d: int, k: int) -> Dict[int, float]:
    """Exact distribution of D(X, Y) over uniform ordered pairs."""
    validate_parameters(d, k)
    counts: Dict[int, int] = {}
    words = list(iter_words(d, k))
    for x in words:
        for y in words:
            dist = directed_distance(x, y)
            counts[dist] = counts.get(dist, 0) + 1
    n_pairs = len(words) ** 2
    return {dist: cnt / n_pairs for dist, cnt in sorted(counts.items())}


def undirected_average_distance_exact(d: int, k: int) -> float:
    """Exact mean undirected distance over all ordered pairs (Figure 2).

    Enumerates all N² pairs with the O(k) suffix-tree distance when
    profitable; practical up to N = d^k of a few thousand.
    """
    validate_parameters(d, k)
    total = 0
    count = 0
    words = list(iter_words(d, k))
    for x in words:
        for y in words:
            total += undirected_distance(x, y)
            count += 1
    return total / count


def undirected_distance_distribution_exact(d: int, k: int) -> Dict[int, float]:
    """Exact distribution of the undirected distance over uniform pairs."""
    validate_parameters(d, k)
    counts: Dict[int, int] = {}
    words = list(iter_words(d, k))
    for x in words:
        for y in words:
            dist = undirected_distance(x, y)
            counts[dist] = counts.get(dist, 0) + 1
    n_pairs = len(words) ** 2
    return {dist: cnt / n_pairs for dist, cnt in sorted(counts.items())}


def undirected_average_distance_sampled(
    d: int, k: int, samples: int = 10_000, rng: Optional[random.Random] = None
) -> float:
    """Monte-Carlo estimate of the undirected average distance.

    Draws ``samples`` independent uniform ordered pairs; the standard error
    is at most ``k / (2 · sqrt(samples))`` since distances lie in [0, k].
    """
    validate_parameters(d, k)
    generator = rng if rng is not None else random.Random()
    total = 0
    for _ in range(samples):
        x = random_word(d, k, generator)
        y = random_word(d, k, generator)
        total += undirected_distance(x, y)
    return total / samples


def directed_average_distance_sampled(
    d: int, k: int, samples: int = 10_000, rng: Optional[random.Random] = None
) -> float:
    """Monte-Carlo estimate of the directed average distance."""
    validate_parameters(d, k)
    generator = rng if rng is not None else random.Random()
    total = 0
    for _ in range(samples):
        x = random_word(d, k, generator)
        y = random_word(d, k, generator)
        total += directed_distance(x, y)
    return total / samples
