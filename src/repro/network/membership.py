"""Distributed failure detection: per-site membership views (E20/E25).

Everything the resilience stack did until now — local detours,
incremental table repair, the chaos campaign's self-healing strategy —
consulted the simulator's *oracle* liveness set, knowledge no real site
possesses.  This module closes that gap with a SWIM-style failure
detector (Das–Gupta–Motivala, DSN 2002):

* **Direct probing** — every live site periodically pings one uniformly
  random neighbor (its de Bruijn adjacency) and expects an ack within a
  timeout.
* **Indirect probing** — on timeout the prober asks ``indirect_probes``
  other neighbors to ping the silent target on its behalf, so one lossy
  or congested link cannot convict a healthy site by itself.
* **Suspicion state machine** — a target that stays silent becomes
  SUSPECT (not dead!) and is only confirmed DEAD after
  ``suspicion_timeout`` more time units pass without refutation.
* **Incarnation refutation** — a site that learns it is suspected bumps
  its own incarnation number and disseminates a fresher ALIVE record,
  which overrides the suspicion everywhere (the SWIM ordering rules:
  higher incarnation wins; at equal incarnations SUSPECT > ALIVE and
  DEAD > both).  A recovered site likewise rejoins by bumping its
  incarnation, so confirmed deaths heal after the outage ends.
* **Piggybacked dissemination** — state updates ride on the protocol's
  own probe/ack traffic (each update re-transmitted O(log N) times, the
  epidemic budget), and optionally on the simulator's ordinary routed
  traffic via :meth:`SwimDetector.piggyback_on_traffic`.

The protocol state machine itself lives in :class:`SwimMember`, one
instance per participant, and talks to the world only through two small
seams: a :class:`Clock` (``now`` + ``call_later``) and a
:class:`Transport` (``send(source, destination, packet)`` of symbolic
:class:`SwimPacket` records).  :class:`SwimDetector` binds members to
the discrete-event simulator (timers via ``Simulator.call_at``, packets
over a latency/liveness/loss-modelled control channel), while
``repro.cluster.swim`` binds the *same* members to wall-clock asyncio
timers and real UDP datagrams — same state machine, different
transport, so simulator results and real-process results are directly
comparable.

Every site ends up with its **own** :class:`SiteView` — possibly stale,
possibly wrong — and the resilience layer consumes those views through
the small :class:`MembershipView` protocol.  The omniscient behaviour
is preserved as one trivial implementation (:class:`OracleMembership`)
so oracle-driven and detection-driven strategies are directly
comparable (``benchmarks/bench_detection.py``).

Measurement (never protocol) uses ground truth: the detector watches
FAIL/RECOVER events to score detection latency, false positives and
false negatives into :class:`repro.network.stats.SimulationStats`.

Determinism contract: all randomness (probe targets, tick phases,
indirect-helper choices) comes from per-site ``random.Random`` streams
seeded from ``config.seed``, so a campaign replays bit-for-bit.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, FrozenSet, Hashable, List, Optional,
                    Sequence, Set, Tuple)

from repro.core.packed import PackedSpace
from repro.core.word import WordTuple
from repro.exceptions import InvalidParameterError
from repro.network.events import EventKind
from repro.network.message import Message
from repro.network.simulator import Simulator

#: Member states, ordered by "badness" at equal incarnation.
ALIVE, SUSPECT, DEAD = 0, 1, 2

_STATE_NAMES = {ALIVE: "alive", SUSPECT: "suspect", DEAD: "dead"}

#: A protocol participant's identity.  The simulator uses de Bruijn
#: words (:class:`WordTuple`); the real-process cluster uses small ints.
Site = Hashable

#: One disseminated record: (state, subject, incarnation).
Update = Tuple[int, Any, int]

#: Estimated wire cost of one protocol packet: header + addresses.
_PACKET_BYTES = 8
#: Estimated wire cost of one piggybacked update.
_UPDATE_BYTES = 5


@dataclass(frozen=True)
class SwimConfig:
    """The detector's knobs (times in simulated units — or seconds).

    The defaults suit the chaos campaign's clock (link latency 1,
    MTTR ~120): a probe round-trip is ~2, so ``probe_timeout=3``
    tolerates one queued hop, and the full detection budget —
    ~``probe_interval/2`` until the next probe lands, plus the timeout,
    plus ``suspicion_timeout`` for refutation — stays well under a
    typical outage.  The real-process cluster reuses the same dataclass
    with sub-second wall-clock values.
    """

    probe_interval: float = 10.0
    probe_timeout: float = 3.0
    #: How many other neighbors are asked to probe a silent target.
    indirect_probes: int = 2
    #: Grace period between SUSPECT and DEAD (the refutation window).
    suspicion_timeout: float = 20.0
    #: Max updates piggybacked on one protocol packet.
    piggyback_limit: int = 8
    #: Each update is piggybacked ~``retransmit_mult * log2(N)`` times.
    retransmit_mult: float = 3.0
    seed: str = "swim"

    def __post_init__(self) -> None:
        if self.probe_interval <= 0 or self.probe_timeout <= 0:
            raise InvalidParameterError(
                "probe_interval and probe_timeout must be positive")
        if self.suspicion_timeout <= 0:
            raise InvalidParameterError("suspicion_timeout must be positive")
        if self.indirect_probes < 0:
            raise InvalidParameterError("indirect_probes must be >= 0")
        if self.piggyback_limit < 1:
            raise InvalidParameterError("piggyback_limit must be >= 1")


# ----------------------------------------------------------------------
# The transport seam: symbolic packets, a clock, a wire
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SwimPacket:
    """One symbolic protocol packet, transport-agnostic.

    ``kind`` is one of ``"ping"``, ``"ping-req"``, ``"ack"`` or
    ``"relayed-ack"``; the remaining fields are interpreted per kind:

    * ``ping``: ``source`` probes the destination; ``relay_to`` names
      the probe's origin when the ping travels the indirect leg (the
      destination acks toward ``source``, who relays).
    * ``ping-req``: ``source`` asks the destination (a helper) to ping
      ``target`` on its behalf.
    * ``ack``: ``source`` (== ``target``, the probed site) answers with
      its own ``incarnation``; ``relay_to`` is passed through from the
      ping so the helper knows where to forward the good news.
    * ``relayed-ack``: the helper forwards the probed ``target``'s
      ``incarnation`` back to the probe's origin.

    ``updates`` carries the piggybacked dissemination records.  The
    simulator delivers these records verbatim; the cluster runtime
    serializes them through ``repro.cluster.codec``.
    """

    kind: str
    source: Site
    probe_id: int
    target: Optional[Site] = None
    incarnation: int = 0
    relay_to: Optional[Site] = None
    updates: Tuple[Update, ...] = ()


class Clock:
    """Scheduling seam: simulated time or the asyncio event loop."""

    def now(self) -> float:  # pragma: no cover - protocol
        """The current time in this clock's domain."""
        raise NotImplementedError

    def call_later(self, delay: float,
                   fn: Callable[[], None]) -> None:  # pragma: no cover
        """Run ``fn`` after ``delay`` time units."""
        raise NotImplementedError


class Transport:
    """Wire seam: deliver one :class:`SwimPacket` (or drop it).

    Implementations own every wire property — latency, loss, liveness
    gating, serialization, byte accounting.  The member never learns
    whether a send succeeded; silence is what the protocol detects.
    """

    def send(self, source: Site, destination: Site,
             packet: SwimPacket) -> None:  # pragma: no cover - protocol
        """Deliver (or silently drop) one packet."""
        raise NotImplementedError


class SwimListener:
    """Who a member tells about verdict-relevant transitions.

    The simulator's :class:`SwimDetector` aggregates these into the
    cluster-level verdict and scores detection latency against ground
    truth; the real-process agent recomputes its local dead set and
    triggers table repair.
    """

    def on_dead_marked(self, observer: Site, subject: Site,
                       incarnation: int) -> None:  # pragma: no cover
        """``observer`` convicted ``subject`` DEAD."""
        raise NotImplementedError

    def on_cleared(self, observer: Site, subject: Site, incarnation: int,
                   firsthand: bool) -> None:  # pragma: no cover
        """``observer`` acquitted ``subject`` (refutation or ack)."""
        raise NotImplementedError


# ----------------------------------------------------------------------
# The view protocol and its trivial (oracle) implementation
# ----------------------------------------------------------------------


class MembershipView:
    """What one observer believes about everyone else.

    The protocol the resilience stack consumes; implementations answer
    from whatever knowledge they actually have — ground truth for
    :class:`OracleMembership`, the SWIM state machine for
    :class:`SiteView`.
    """

    def state(self, site: Site) -> int:  # pragma: no cover - protocol
        """The observer's belief about ``site``: ALIVE, SUSPECT or DEAD."""
        raise NotImplementedError

    def is_alive(self, site: Site) -> bool:
        """False only for sites this view has *confirmed* dead."""
        return self.state(site) != DEAD

    def trusts(self, site: Site) -> bool:
        """True when the view holds the site fully alive (not suspected).

        The detour policy routes around everything it does not trust:
        suspects are probably down (detection lag), so waiting out the
        refutation window before using them again costs little.
        """
        return self.state(site) == ALIVE

    def dead_sites(self) -> FrozenSet:  # pragma: no cover
        """Every site this view has confirmed dead."""
        raise NotImplementedError


class OracleMembership(MembershipView):
    """Ground truth dressed up as a membership view.

    The omniscient behaviour the resilience stack had before E20, kept
    as the trivial protocol implementation: every observer shares one
    perfect, instantly-updated view.  ``view_at`` returns ``self`` for
    any observer, so the oracle also satisfies the provider protocol
    the detour policy uses.
    """

    def __init__(self, simulator: Simulator) -> None:
        self.simulator = simulator

    def state(self, site: WordTuple) -> int:
        """DEAD exactly when the simulator says the site is down now."""
        return DEAD if self.simulator.is_failed(site) else ALIVE

    def dead_sites(self) -> FrozenSet[WordTuple]:
        """The simulator's ground-truth failed set."""
        return self.simulator.failed_sites

    def view_at(self, observer: WordTuple) -> "OracleMembership":
        """Every observer shares the one omniscient view."""
        return self


# ----------------------------------------------------------------------
# Per-site SWIM state
# ----------------------------------------------------------------------


class SiteView(MembershipView):
    """One site's (possibly stale, possibly wrong) membership table.

    Stores only deviations from the bootstrap state (everyone ALIVE at
    incarnation 0), so an all-healthy network costs O(1) per view.
    State transitions follow the SWIM ordering rules — see
    :meth:`apply` — and every accepted transition is queued for
    piggybacked re-dissemination with a fresh epidemic budget.

    ``host`` supplies the epidemic ``update_budget`` and receives the
    ``on_dead_marked``/``on_cleared`` notifications (the
    :class:`SwimListener` surface) — normally the owning
    :class:`SwimMember`.
    """

    __slots__ = ("observer", "incarnation", "_host", "_states",
                 "_incarnations", "_updates")

    def __init__(self, observer: Site, host) -> None:
        self.observer = observer
        #: The observer's *own* incarnation number (bumped to refute).
        self.incarnation = 0
        self._host = host
        self._states: Dict[Site, int] = {}
        self._incarnations: Dict[Site, int] = {}
        #: Dissemination buffer: subject -> [state, incarnation, budget].
        self._updates: Dict[Site, List] = {}

    # -- MembershipView -------------------------------------------------

    def state(self, site: Site) -> int:
        """This observer's current belief about ``site``."""
        return self._states.get(site, ALIVE)

    def incarnation_of(self, site: Site) -> int:
        """The freshest incarnation number this view has seen for ``site``."""
        if site == self.observer:
            return self.incarnation
        return self._incarnations.get(site, 0)

    def dead_sites(self) -> FrozenSet:
        """Sites this view has confirmed dead."""
        return frozenset(site for site, state in self._states.items()
                         if state == DEAD)

    def suspected_sites(self) -> FrozenSet:
        """Sites currently inside their suspicion (refutation) window."""
        return frozenset(site for site, state in self._states.items()
                         if state == SUSPECT)

    # -- the SWIM merge rule --------------------------------------------

    def apply(self, state: int, subject: Site, incarnation: int,
              firsthand: bool = False) -> bool:
        """Merge one record; True when it changed this view.

        Ordering (SWIM §4.2, plus the rejoin extension): a higher
        incarnation always wins; at equal incarnations SUSPECT overrides
        ALIVE and DEAD overrides both.  A record *about the observer
        itself* that is not ALIVE is refuted instead of applied: the
        observer bumps its incarnation past the accusation and
        disseminates the fresher ALIVE.

        ``firsthand`` marks direct evidence — an ack the observer just
        received from the subject itself.  Firsthand ALIVE clears a
        same-incarnation SUSPECT or DEAD (hearsay never can): the
        subject demonstrably answered *after* whatever silence earned
        the accusation, so the accusation is stale here even before the
        subject learns of it and refutes with a fresh incarnation.
        Firsthand clears are local only (not re-disseminated — other
        observers would reject the equal-incarnation ALIVE anyway).
        """
        if subject == self.observer:
            if state != ALIVE and incarnation >= self.incarnation:
                self.incarnation = incarnation + 1
                self._enqueue(ALIVE, subject, self.incarnation)
                self._host.on_cleared(self.observer, subject,
                                      self.incarnation, firsthand=True)
                return True
            return False
        current_state = self._states.get(subject, ALIVE)
        current_inc = self._incarnations.get(subject, 0)
        if incarnation < current_inc:
            return False
        was_dead = current_state == DEAD
        if incarnation == current_inc and state <= current_state:
            if firsthand and state == ALIVE and current_state != ALIVE:
                self._states.pop(subject, None)
                self._host.on_cleared(self.observer, subject,
                                      incarnation, firsthand=True)
                return True
            return False
        if state == ALIVE and incarnation == current_inc:
            return False  # same-incarnation hearsay ALIVE never overrides
        self._incarnations[subject] = incarnation
        if state == ALIVE:
            self._states.pop(subject, None)
        else:
            self._states[subject] = state
        self._enqueue(state, subject, incarnation)
        if state == DEAD and not was_dead:
            self._host.on_dead_marked(self.observer, subject, incarnation)
        elif state == ALIVE:
            self._host.on_cleared(self.observer, subject, incarnation,
                                  firsthand=firsthand)
        return True

    def _enqueue(self, state: int, subject: Site,
                 incarnation: int) -> None:
        self._updates[subject] = [state, incarnation,
                                  self._host.update_budget]

    # -- piggybacking ---------------------------------------------------

    def collect_piggyback(self, limit: int) -> List[Update]:
        """Up to ``limit`` buffered updates, freshest budgets first.

        Decrements each chosen update's remaining budget and drops
        exhausted entries — the standard SWIM infection-style
        dissemination schedule.
        """
        if not self._updates:
            return []
        chosen = sorted(self._updates.items(),
                        key=lambda item: (-item[1][2], item[0]))[:limit]
        out: List[Update] = []
        for subject, record in chosen:
            out.append((record[0], subject, record[1]))
            record[2] -= 1
            if record[2] <= 0:
                del self._updates[subject]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        summary = {_STATE_NAMES[s]: sum(1 for v in self._states.values()
                                        if v == s)
                   for s in (SUSPECT, DEAD)}
        return (f"SiteView({self.observer!r}, inc={self.incarnation}, "
                f"{summary})")


# ----------------------------------------------------------------------
# One protocol participant, transport-agnostic
# ----------------------------------------------------------------------


class SwimMember:
    """One SWIM participant: the whole per-site state machine.

    Drives probing, indirect probing, suspicion and dissemination for a
    single site, speaking only through its :class:`Clock` and
    :class:`Transport` — it never imports a simulator or a socket.  The
    discrete-event detector and the real-process cluster agent both run
    verbatim instances of this class; only the seams differ.

    ``down_check`` (optional) reports whether the member's own host is
    currently down — the simulator models crashed sites this way so a
    failed site's timers go quiet and its rejoin bumps the incarnation.
    A real process has no such oracle (a dead process simply stops), so
    the cluster leaves it ``None``.

    ``horizon`` (optional) stops the probe loop from rescheduling past
    a fixed time — required under the simulator (an immortal timer
    would keep ``run()`` alive forever), meaningless on a wall clock.
    """

    __slots__ = ("site", "config", "clock", "transport", "rng", "listener",
                 "update_budget", "down_check", "horizon", "neighbors",
                 "view", "_probe_seq", "_pending_probes", "_probe_order",
                 "_probe_cursor", "_was_down")

    def __init__(
        self,
        site: Site,
        neighbors: Sequence[Site],
        config: SwimConfig,
        *,
        clock: Clock,
        transport: Transport,
        rng: random.Random,
        listener: SwimListener,
        update_budget: int,
        down_check: Optional[Callable[[], bool]] = None,
        horizon: Optional[float] = None,
    ) -> None:
        self.site = site
        self.neighbors = list(neighbors)
        self.config = config
        self.clock = clock
        self.transport = transport
        self.rng = rng
        self.listener = listener
        #: Piggyback budget handed to the view on every enqueue.
        self.update_budget = update_budget
        self.down_check = down_check
        self.horizon = horizon
        self.view = SiteView(site, self)
        self._probe_seq = 0
        #: Outstanding probes: probe id -> still waiting for an ack.
        #: Probe ids are member-local; every ack (direct or relayed)
        #: returns to the member that minted the id, so local sets are
        #: equivalent to a global registry.
        self._pending_probes: Set[int] = set()
        #: Shuffled round-robin permutation + cursor (SWIM §4.3:
        #: random-permutation round-robin bounds worst-case first-probe
        #: time at ``2 * |neighbors| - 1`` intervals, where uniform
        #: random sampling has an unbounded tail).
        self._probe_order: Optional[List[Site]] = None
        self._probe_cursor = 0
        self._was_down = False

    # -- SwimListener surface for the owned SiteView --------------------

    def on_dead_marked(self, observer: Site, subject: Site,
                       incarnation: int) -> None:
        """Forward the owned view's conviction to the outer listener."""
        self.listener.on_dead_marked(observer, subject, incarnation)

    def on_cleared(self, observer: Site, subject: Site, incarnation: int,
                   firsthand: bool) -> None:
        """Forward the owned view's acquittal to the outer listener."""
        self.listener.on_cleared(observer, subject, incarnation, firsthand)

    # -- the probe loop -------------------------------------------------

    def start(self) -> None:
        """Arm the probe loop at a random phase (de-synchronised ticks)."""
        phase = self.rng.uniform(0.0, self.config.probe_interval)
        self.clock.call_later(phase, self._tick)

    def _tick(self) -> None:
        now = self.clock.now()
        interval = self.config.probe_interval
        if self.horizon is None or now + interval <= self.horizon:
            self.clock.call_later(interval, self._tick)
        if self.down_check is not None and self.down_check():
            self._was_down = True
            return
        view = self.view
        if self._was_down:
            # Rejoin after an outage: refute any standing death verdict
            # with a fresher incarnation and announce it.  The rejoiner
            # is itself a live observer, so its announcement also
            # acquits it in the cluster-level verdict immediately.
            self._was_down = False
            view.incarnation += 1
            view._enqueue(ALIVE, self.site, view.incarnation)
            self.listener.on_cleared(self.site, self.site, view.incarnation,
                                     firsthand=True)
        neighbors = self.neighbors
        if not neighbors:  # pragma: no cover - k >= 1 graphs have neighbors
            return
        rng = self.rng
        # A suspect's refutation window is ticking: re-probing it beats
        # scanning a healthy neighbor, both for clearing a wrong
        # suspicion fast and for confirming a right one with evidence.
        suspects = [n for n in neighbors if view.state(n) == SUSPECT]
        if suspects:
            target = suspects[rng.randrange(len(suspects))]
        else:
            target = self._next_round_robin()
        self._probe(target)

    def _next_round_robin(self) -> Site:
        """The next probe target: shuffled round-robin."""
        order = self._probe_order
        cursor = self._probe_cursor
        if order is None or cursor >= len(order):
            order = list(self.neighbors)
            self.rng.shuffle(order)
            self._probe_order = order
            cursor = 0
        self._probe_cursor = cursor + 1
        return order[cursor]

    def _probe(self, target: Site) -> None:
        probe_id = self._probe_seq = self._probe_seq + 1
        self._pending_probes.add(probe_id)
        self._send_ping(target, probe_id)
        self.clock.call_later(
            self.config.probe_timeout,
            lambda: self._direct_timeout(target, probe_id))

    def _direct_timeout(self, target: Site, probe_id: int) -> None:
        if probe_id not in self._pending_probes:
            return  # acked in time
        if self.down_check is not None and self.down_check():
            self._pending_probes.discard(probe_id)
            return
        config = self.config
        helpers = [n for n in self.neighbors if n != target]
        count = min(config.indirect_probes, len(helpers))
        if count > 0:
            for helper in self.rng.sample(helpers, count):
                self.transport.send(self.site, helper, SwimPacket(
                    "ping-req", self.site, probe_id, target=target))
        self.clock.call_later(
            config.probe_timeout,
            lambda: self._indirect_timeout(target, probe_id))

    def _indirect_timeout(self, target: Site, probe_id: int) -> None:
        if probe_id not in self._pending_probes:
            return
        self._pending_probes.discard(probe_id)
        if self.down_check is not None and self.down_check():
            return
        self._start_suspicion(target)

    # -- suspicion ------------------------------------------------------

    def _start_suspicion(self, subject: Site) -> None:
        view = self.view
        if view.state(subject) != ALIVE:
            return  # already suspected or confirmed
        incarnation = view.incarnation_of(subject)
        if not view.apply(SUSPECT, subject, incarnation):
            return  # pragma: no cover - guarded by the ALIVE check above
        self.clock.call_later(
            self.config.suspicion_timeout,
            lambda: self._confirm(subject, incarnation))

    def _confirm(self, subject: Site, incarnation: int) -> None:
        if self.down_check is not None and self.down_check():
            return
        view = self.view
        if view.state(subject) != SUSPECT:
            return  # refuted (ALIVE) or already confirmed elsewhere
        if view.incarnation_of(subject) != incarnation:
            return  # a newer incarnation superseded this suspicion
        view.apply(DEAD, subject, incarnation)

    # -- packet I/O -----------------------------------------------------

    def _send_ping(self, target: Site, probe_id: int,
                   relay_to: Optional[Site] = None) -> None:
        updates = self.view.collect_piggyback(self.config.piggyback_limit)
        self.transport.send(self.site, target, SwimPacket(
            "ping", self.site, probe_id, relay_to=relay_to,
            updates=tuple(updates)))

    def on_packet(self, packet: SwimPacket) -> None:
        """Deliver one packet to this member (the transport's upcall)."""
        kind = packet.kind
        if kind == "ping":
            self._handle_ping(packet)
        elif kind == "ack":
            self._handle_ack(packet)
        elif kind == "ping-req":
            self._send_ping(packet.target, packet.probe_id,
                            relay_to=packet.source)
        elif kind == "relayed-ack":
            self._handle_relayed_ack(packet)
        # Unknown kinds are dropped: a codec/version mismatch must never
        # crash a member or fabricate evidence.

    def _handle_ping(self, packet: SwimPacket) -> None:
        view = self.view
        for state, subject, inc in packet.updates:
            view.apply(state, subject, inc)
        # Receiving the ping is itself firsthand evidence the prober is
        # alive (applied after the piggyback so a refutation-triggering
        # SUSPECT about the prober cannot immediately re-shadow it).
        view.apply(ALIVE, packet.source,
                   view.incarnation_of(packet.source), firsthand=True)
        # Ack back to the prober (or to the indirect helper, who relays).
        ack_updates = view.collect_piggyback(self.config.piggyback_limit)
        self.transport.send(self.site, packet.source, SwimPacket(
            "ack", self.site, packet.probe_id, target=self.site,
            incarnation=view.incarnation, relay_to=packet.relay_to,
            updates=tuple(ack_updates)))

    def _handle_ack(self, packet: SwimPacket) -> None:
        view = self.view
        for state, subject, inc in packet.updates:
            view.apply(state, subject, inc)
        # The ack is firsthand evidence: the target answered *after*
        # whatever silence earned any standing accusation at this
        # incarnation, so it clears a same-incarnation SUSPECT/DEAD.
        view.apply(ALIVE, packet.target,
                   max(packet.incarnation,
                       view.incarnation_of(packet.target)),
                   firsthand=True)
        if packet.relay_to is not None:
            # Indirect leg: pass the good news back to the origin.
            self.transport.send(self.site, packet.relay_to, SwimPacket(
                "relayed-ack", self.site, packet.probe_id,
                target=packet.target, incarnation=packet.incarnation))
            return
        self._pending_probes.discard(packet.probe_id)

    def _handle_relayed_ack(self, packet: SwimPacket) -> None:
        self.view.apply(ALIVE, packet.target, packet.incarnation)
        self._pending_probes.discard(packet.probe_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SwimMember({self.site!r}, {len(self.neighbors)} "
                f"neighbors, inc={self.view.incarnation})")


@dataclass
class DetectionReport:
    """What one detector run measured (mirrors the stats fields)."""

    outages: int = 0
    detected: int = 0
    false_positives: int = 0
    false_negatives: int = 0
    messages: int = 0
    bytes: int = 0
    latencies: List[float] = field(default_factory=list)

    @property
    def mean_latency(self) -> float:
        return (sum(self.latencies) / len(self.latencies)
                if self.latencies else 0.0)


# ----------------------------------------------------------------------
# Simulator bindings for the seams
# ----------------------------------------------------------------------


class _SimulatorClock(Clock):
    """Member timers on the discrete-event heap."""

    def __init__(self, simulator: Simulator) -> None:
        self.simulator = simulator

    def now(self) -> float:
        return self.simulator.now

    def call_later(self, delay: float, fn: Callable[[], None]) -> None:
        self.simulator.call_at(self.simulator.now + delay,
                               lambda sim, _fn=fn: _fn())


class _SimulatorTransport(Transport):
    """The out-of-band control channel: latency, liveness, loss — no queue.

    Every packet costs one ``link_latency`` per leg, is dropped when the
    sender is down at send time, the connecting link is cut, the
    simulator's ``loss_fn`` loses it, or the receiver is down at arrival
    time — but control packets do not occupy data-link bandwidth, so
    installing the detector never perturbs data-traffic latency
    statistics.
    """

    def __init__(self, detector: "SwimDetector") -> None:
        self._detector = detector

    def send(self, source: WordTuple, destination: WordTuple,
             packet: SwimPacket) -> None:
        detector = self._detector
        simulator = detector.simulator
        stats = simulator.stats
        stats.membership_messages += 1
        stats.membership_bytes += _PACKET_BYTES + 2 * simulator.k \
            + _UPDATE_BYTES * len(packet.updates)
        if simulator.is_failed(source):
            return
        if simulator.is_link_failed(source, destination):
            return
        if simulator.loss_fn is not None \
                and simulator.loss_fn(source, destination):
            return
        member = detector._members[destination]

        def arrive(sim: Simulator) -> None:
            if sim.is_failed(destination):
                return
            member.on_packet(packet)

        simulator.call_at(simulator.now + simulator.link_latency, arrive)


# ----------------------------------------------------------------------
# The detector
# ----------------------------------------------------------------------


class SwimDetector(SwimListener):
    """SWIM failure detection for every site of one simulator.

    Owns one :class:`SwimMember` per site, bound to the simulator
    through :class:`_SimulatorClock` and :class:`_SimulatorTransport`,
    so :meth:`start` then ``simulator.run()`` is the whole integration.

    ``view_at(site)`` is the per-site :class:`SiteView`;
    ``detected_dead()`` aggregates the confirmed-dead sets of currently
    *live* observers (the converged cluster view a shared self-healing
    table repairs from).
    """

    def __init__(
        self,
        simulator: Simulator,
        config: Optional[SwimConfig] = None,
        horizon: Optional[float] = None,
    ) -> None:
        self.simulator = simulator
        self.config = config or SwimConfig()
        #: Ticks stop rescheduling at this simulated time (a detector
        #: with no horizon would keep ``run()`` alive forever).
        self.horizon = horizon if horizon is not None else 0.0
        if self.horizon <= 0:
            raise InvalidParameterError(
                "SwimDetector needs a positive horizon (when to stop "
                "scheduling probe ticks)")
        space = PackedSpace(simulator.d, simulator.k)
        self.space = space
        self.sites: List[WordTuple] = [space.unpack(v)
                                       for v in range(space.order)]
        #: Piggyback budget: ~retransmit_mult * log2(N) sends per update.
        self.update_budget = max(
            3, math.ceil(self.config.retransmit_mult
                         * math.log2(space.order + 1)))
        self._neighbors: Dict[WordTuple, List[WordTuple]] = {
            site: self._adjacency(site) for site in self.sites}
        clock = _SimulatorClock(simulator)
        transport = _SimulatorTransport(self)
        self._members: Dict[WordTuple, SwimMember] = {
            site: SwimMember(
                site, self._neighbors[site], self.config,
                clock=clock, transport=transport,
                rng=random.Random(f"{self.config.seed}:site:{site}"),
                listener=self, update_budget=self.update_budget,
                down_check=(lambda _s=site: simulator.is_failed(_s)),
                horizon=self.horizon)
            for site in self.sites}
        self._views: Dict[WordTuple, SiteView] = {
            site: member.view for site, member in self._members.items()}
        #: Measurement-only fault bookkeeping (ground truth, stats only).
        self._down_since: Dict[WordTuple, float] = {}
        self._credited: Set[WordTuple] = set()
        #: The cluster-level verdict the shared healer repairs from:
        #: subject -> incarnation of its standing DEAD record.  Follows
        #: the freshest evidence anywhere — the first confirmation from
        #: any observer convicts, the first refutation (a fresher or
        #: firsthand ALIVE at any live observer) acquits — rather than
        #: waiting for every individual view to converge.
        self._global_dead: Dict[WordTuple, int] = {}
        #: Last acquittal per subject: (incarnation, time).  Guards the
        #: verdict against stale convictions still in the pipeline — a
        #: suspicion that started before the acquittal confirms at an
        #: older-or-equal incarnation within one refutation window.
        self._acquit: Dict[WordTuple, Tuple[int, float]] = {}
        #: Fired whenever the aggregated detected-dead set may have
        #: changed (detection-driven repair hangs its sync here).
        self.on_dead_change: Optional[Callable[["SwimDetector"], None]] = None
        self._started = False
        self._finalized = False

    def _adjacency(self, site: WordTuple) -> List[WordTuple]:
        """The site's probe targets: its de Bruijn neighbors, sans self."""
        space = self.space
        value = space.pack(site)
        packed: Set[int] = set(space.left_neighbors(value))
        if self.simulator.bidirectional:
            packed.update(space.right_neighbors(value))
        packed.discard(value)
        return [space.unpack(v) for v in sorted(packed)]

    # -- public API -----------------------------------------------------

    def view_at(self, observer: WordTuple) -> SiteView:
        """The observer's own membership view (the provider protocol)."""
        return self._views[observer]

    def detected_dead(self) -> FrozenSet[WordTuple]:
        """The cluster-level confirmed-dead set.

        The aggregation a *shared* self-healing table repairs from:
        the first confirmation from any observer convicts a site, the
        first refutation anywhere (a fresher-incarnation or firsthand
        ALIVE) acquits it.  Individual :class:`SiteView`\\ s converge to
        the same verdicts through dissemination, but the shared healer
        should not wait for the slowest view.
        """
        return frozenset(self._global_dead)

    def start(self) -> None:
        """Arm every site's probe loop and the fault observer."""
        if self._started:
            return
        self._started = True
        self.simulator.add_event_hook(self._observe_event)
        for site in self.sites:
            self._members[site].start()

    def piggyback_on_traffic(self) -> None:
        """Also disseminate on the simulator's ordinary routed traffic.

        Installs a delivery hook: whenever a data message is delivered,
        updates buffered at its *source* are applied at its destination,
        as if they had ridden along — the "piggyback on existing
        routing flow" channel.  Slightly optimistic (the updates are
        read at delivery time, not injection time), which matters only
        when the in-flight time exceeds the dissemination budget.
        """
        limit = self.config.piggyback_limit

        def relay(message: Message, simulator: Simulator) -> None:
            source_view = self._views.get(message.source)
            target_view = self._views.get(message.destination)
            if source_view is None or target_view is None:
                return
            if simulator.is_failed(message.destination):
                return
            for state, subject, inc in source_view.collect_piggyback(limit):
                target_view.apply(state, subject, inc)

        self.simulator.add_deliver_hook(relay)

    def finalize(self) -> DetectionReport:
        """Close the books: score still-undetected outages, report.

        Call after ``simulator.run()`` returns.  Outages that outlived
        the run without any confirmation count as false negatives
        (the detector had its chance and missed).
        """
        stats = self.simulator.stats
        if not self._finalized:
            self._finalized = True
            for site in list(self._down_since):
                if site not in self._credited:
                    stats.false_negatives += 1
        return DetectionReport(
            outages=self._outages,
            detected=len(stats.detection_latencies),
            false_positives=stats.false_positives,
            false_negatives=stats.false_negatives,
            messages=stats.membership_messages,
            bytes=stats.membership_bytes,
            latencies=list(stats.detection_latencies),
        )

    # -- measurement hooks (ground truth, stats only) -------------------

    _outages = 0

    def _observe_event(self, event, simulator: Simulator) -> None:
        kind = event.kind
        if kind == EventKind.FAIL:
            if event.node not in self._down_since:
                self._down_since[event.node] = event.time
                self._outages += 1
        elif kind == EventKind.RECOVER:
            started = self._down_since.pop(event.node, None)
            if started is not None and event.node not in self._credited:
                simulator.stats.false_negatives += 1
            self._credited.discard(event.node)

    def on_dead_marked(self, observer: WordTuple, subject: WordTuple,
                       incarnation: int) -> None:
        """An observer confirmed ``subject`` dead at ``incarnation``."""
        stats = self.simulator.stats
        standing = self._global_dead.get(subject)
        if standing is not None and standing >= incarnation:
            return  # already convicted at this (or fresher) evidence
        acquit = self._acquit.get(subject)
        if acquit is not None:
            acquit_inc, acquit_time = acquit
            if incarnation < acquit_inc:
                return  # conviction predates the subject's refutation
            if incarnation == acquit_inc and self.simulator.now \
                    < acquit_time + self.config.suspicion_timeout:
                # Within one refutation window of a same-incarnation
                # acquittal this can only be a suspicion that started
                # before the acquitting evidence — stale, not new.
                return
        self._global_dead[subject] = incarnation
        if standing is None:
            # A new conviction (not a fresher re-confirmation): score it.
            if subject in self._down_since:
                if subject not in self._credited:
                    self._credited.add(subject)
                    stats.detection_latencies.append(
                        self.simulator.now - self._down_since[subject])
            else:
                # Confirmed dead while actually alive: a false
                # conviction, counted once per episode to match the
                # once-per-outage detection credit.
                stats.false_positives += 1
        if self.on_dead_change is not None:
            self.on_dead_change(self)

    def on_cleared(self, observer: WordTuple, subject: WordTuple,
                   incarnation: int, firsthand: bool) -> None:
        """An observer saw ALIVE evidence against a standing verdict.

        Fresher-incarnation ALIVE (the subject's own refutation, so
        ``incarnation`` exceeds any accusation it answers) always
        acquits; firsthand equal-incarnation ALIVE (the subject just
        answered a probe) acquits the same incarnation's conviction.
        """
        standing = self._global_dead.get(subject)
        if standing is None:
            return
        if incarnation > standing or (firsthand and
                                      incarnation >= standing):
            del self._global_dead[subject]
            self._acquit[subject] = (incarnation, self.simulator.now)
            if self.on_dead_change is not None:
                self.on_dead_change(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SwimDetector(DG({self.simulator.d},{self.simulator.k}), "
                f"{len(self.sites)} sites, horizon={self.horizon})")
