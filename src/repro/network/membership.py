"""Distributed failure detection: per-site membership views (E20).

Everything the resilience stack did until now — local detours,
incremental table repair, the chaos campaign's self-healing strategy —
consulted the simulator's *oracle* liveness set, knowledge no real site
possesses.  This module closes that gap with a SWIM-style failure
detector (Das–Gupta–Motivala, DSN 2002) running *inside* the
discrete-event simulator:

* **Direct probing** — every live site periodically pings one uniformly
  random neighbor (its de Bruijn adjacency) and expects an ack within a
  timeout.
* **Indirect probing** — on timeout the prober asks ``indirect_probes``
  other neighbors to ping the silent target on its behalf, so one lossy
  or congested link cannot convict a healthy site by itself.
* **Suspicion state machine** — a target that stays silent becomes
  SUSPECT (not dead!) and is only confirmed DEAD after
  ``suspicion_timeout`` more time units pass without refutation.
* **Incarnation refutation** — a site that learns it is suspected bumps
  its own incarnation number and disseminates a fresher ALIVE record,
  which overrides the suspicion everywhere (the SWIM ordering rules:
  higher incarnation wins; at equal incarnations SUSPECT > ALIVE and
  DEAD > both).  A recovered site likewise rejoins by bumping its
  incarnation, so confirmed deaths heal after the outage ends.
* **Piggybacked dissemination** — state updates ride on the protocol's
  own probe/ack traffic (each update re-transmitted O(log N) times, the
  epidemic budget), and optionally on the simulator's ordinary routed
  traffic via :meth:`SwimDetector.piggyback_on_traffic`.

Every site ends up with its **own** :class:`SiteView` — possibly stale,
possibly wrong — and the resilience layer consumes those views through
the small :class:`MembershipView` protocol.  The omniscient behaviour
is preserved as one trivial implementation (:class:`OracleMembership`)
so oracle-driven and detection-driven strategies are directly
comparable (``benchmarks/bench_detection.py``).

Measurement (never protocol) uses ground truth: the detector watches
FAIL/RECOVER events to score detection latency, false positives and
false negatives into :class:`repro.network.stats.SimulationStats`.

Determinism contract: all randomness (probe targets, tick phases,
indirect-helper choices) comes from per-site ``random.Random`` streams
seeded from ``config.seed``, so a campaign replays bit-for-bit.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.packed import PackedSpace
from repro.core.word import WordTuple
from repro.exceptions import InvalidParameterError
from repro.network.events import EventKind
from repro.network.message import Message
from repro.network.simulator import Simulator

#: Member states, ordered by "badness" at equal incarnation.
ALIVE, SUSPECT, DEAD = 0, 1, 2

_STATE_NAMES = {ALIVE: "alive", SUSPECT: "suspect", DEAD: "dead"}

#: One disseminated record: (state, subject, incarnation).
Update = Tuple[int, WordTuple, int]

#: Estimated wire cost of one protocol packet: header + addresses.
_PACKET_BYTES = 8
#: Estimated wire cost of one piggybacked update.
_UPDATE_BYTES = 5


@dataclass(frozen=True)
class SwimConfig:
    """The detector's knobs (times in simulated units).

    The defaults suit the chaos campaign's clock (link latency 1,
    MTTR ~120): a probe round-trip is ~2, so ``probe_timeout=3``
    tolerates one queued hop, and the full detection budget —
    ~``probe_interval/2`` until the next probe lands, plus the timeout,
    plus ``suspicion_timeout`` for refutation — stays well under a
    typical outage.
    """

    probe_interval: float = 10.0
    probe_timeout: float = 3.0
    #: How many other neighbors are asked to probe a silent target.
    indirect_probes: int = 2
    #: Grace period between SUSPECT and DEAD (the refutation window).
    suspicion_timeout: float = 20.0
    #: Max updates piggybacked on one protocol packet.
    piggyback_limit: int = 8
    #: Each update is piggybacked ~``retransmit_mult * log2(N)`` times.
    retransmit_mult: float = 3.0
    seed: str = "swim"

    def __post_init__(self) -> None:
        if self.probe_interval <= 0 or self.probe_timeout <= 0:
            raise InvalidParameterError(
                "probe_interval and probe_timeout must be positive")
        if self.suspicion_timeout <= 0:
            raise InvalidParameterError("suspicion_timeout must be positive")
        if self.indirect_probes < 0:
            raise InvalidParameterError("indirect_probes must be >= 0")
        if self.piggyback_limit < 1:
            raise InvalidParameterError("piggyback_limit must be >= 1")


# ----------------------------------------------------------------------
# The view protocol and its trivial (oracle) implementation
# ----------------------------------------------------------------------


class MembershipView:
    """What one observer believes about everyone else.

    The protocol the resilience stack consumes; implementations answer
    from whatever knowledge they actually have — ground truth for
    :class:`OracleMembership`, the SWIM state machine for
    :class:`SiteView`.
    """

    def state(self, site: WordTuple) -> int:  # pragma: no cover - protocol
        """The observer's belief about ``site``: ALIVE, SUSPECT or DEAD."""
        raise NotImplementedError

    def is_alive(self, site: WordTuple) -> bool:
        """False only for sites this view has *confirmed* dead."""
        return self.state(site) != DEAD

    def trusts(self, site: WordTuple) -> bool:
        """True when the view holds the site fully alive (not suspected).

        The detour policy routes around everything it does not trust:
        suspects are probably down (detection lag), so waiting out the
        refutation window before using them again costs little.
        """
        return self.state(site) == ALIVE

    def dead_sites(self) -> FrozenSet[WordTuple]:  # pragma: no cover
        """Every site this view has confirmed dead."""
        raise NotImplementedError


class OracleMembership(MembershipView):
    """Ground truth dressed up as a membership view.

    The omniscient behaviour the resilience stack had before E20, kept
    as the trivial protocol implementation: every observer shares one
    perfect, instantly-updated view.  ``view_at`` returns ``self`` for
    any observer, so the oracle also satisfies the provider protocol
    the detour policy uses.
    """

    def __init__(self, simulator: Simulator) -> None:
        self.simulator = simulator

    def state(self, site: WordTuple) -> int:
        """DEAD exactly when the simulator says the site is down now."""
        return DEAD if self.simulator.is_failed(site) else ALIVE

    def dead_sites(self) -> FrozenSet[WordTuple]:
        """The simulator's ground-truth failed set."""
        return self.simulator.failed_sites

    def view_at(self, observer: WordTuple) -> "OracleMembership":
        """Every observer shares the one omniscient view."""
        return self


# ----------------------------------------------------------------------
# Per-site SWIM state
# ----------------------------------------------------------------------


class SiteView(MembershipView):
    """One site's (possibly stale, possibly wrong) membership table.

    Stores only deviations from the bootstrap state (everyone ALIVE at
    incarnation 0), so an all-healthy network costs O(1) per view.
    State transitions follow the SWIM ordering rules — see
    :meth:`apply` — and every accepted transition is queued for
    piggybacked re-dissemination with a fresh epidemic budget.
    """

    __slots__ = ("observer", "incarnation", "_detector", "_states",
                 "_incarnations", "_updates")

    def __init__(self, observer: WordTuple, detector: "SwimDetector") -> None:
        self.observer = observer
        #: The observer's *own* incarnation number (bumped to refute).
        self.incarnation = 0
        self._detector = detector
        self._states: Dict[WordTuple, int] = {}
        self._incarnations: Dict[WordTuple, int] = {}
        #: Dissemination buffer: subject -> [state, incarnation, budget].
        self._updates: Dict[WordTuple, List] = {}

    # -- MembershipView -------------------------------------------------

    def state(self, site: WordTuple) -> int:
        """This observer's current belief about ``site``."""
        return self._states.get(site, ALIVE)

    def incarnation_of(self, site: WordTuple) -> int:
        """The freshest incarnation number this view has seen for ``site``."""
        if site == self.observer:
            return self.incarnation
        return self._incarnations.get(site, 0)

    def dead_sites(self) -> FrozenSet[WordTuple]:
        """Sites this view has confirmed dead."""
        return frozenset(site for site, state in self._states.items()
                         if state == DEAD)

    def suspected_sites(self) -> FrozenSet[WordTuple]:
        """Sites currently inside their suspicion (refutation) window."""
        return frozenset(site for site, state in self._states.items()
                         if state == SUSPECT)

    # -- the SWIM merge rule --------------------------------------------

    def apply(self, state: int, subject: WordTuple, incarnation: int,
              firsthand: bool = False) -> bool:
        """Merge one record; True when it changed this view.

        Ordering (SWIM §4.2, plus the rejoin extension): a higher
        incarnation always wins; at equal incarnations SUSPECT overrides
        ALIVE and DEAD overrides both.  A record *about the observer
        itself* that is not ALIVE is refuted instead of applied: the
        observer bumps its incarnation past the accusation and
        disseminates the fresher ALIVE.

        ``firsthand`` marks direct evidence — an ack the observer just
        received from the subject itself.  Firsthand ALIVE clears a
        same-incarnation SUSPECT or DEAD (hearsay never can): the
        subject demonstrably answered *after* whatever silence earned
        the accusation, so the accusation is stale here even before the
        subject learns of it and refutes with a fresh incarnation.
        Firsthand clears are local only (not re-disseminated — other
        observers would reject the equal-incarnation ALIVE anyway).
        """
        if subject == self.observer:
            if state != ALIVE and incarnation >= self.incarnation:
                self.incarnation = incarnation + 1
                self._enqueue(ALIVE, subject, self.incarnation)
                self._detector._on_cleared(self.observer, subject,
                                           self.incarnation, firsthand=True)
                return True
            return False
        current_state = self._states.get(subject, ALIVE)
        current_inc = self._incarnations.get(subject, 0)
        if incarnation < current_inc:
            return False
        was_dead = current_state == DEAD
        if incarnation == current_inc and state <= current_state:
            if firsthand and state == ALIVE and current_state != ALIVE:
                self._states.pop(subject, None)
                self._detector._on_cleared(self.observer, subject,
                                           incarnation, firsthand=True)
                return True
            return False
        if state == ALIVE and incarnation == current_inc:
            return False  # same-incarnation hearsay ALIVE never overrides
        self._incarnations[subject] = incarnation
        if state == ALIVE:
            self._states.pop(subject, None)
        else:
            self._states[subject] = state
        self._enqueue(state, subject, incarnation)
        if state == DEAD and not was_dead:
            self._detector._on_dead_marked(self.observer, subject,
                                           incarnation)
        elif state == ALIVE:
            self._detector._on_cleared(self.observer, subject, incarnation,
                                       firsthand=firsthand)
        return True

    def _enqueue(self, state: int, subject: WordTuple,
                 incarnation: int) -> None:
        self._updates[subject] = [state, incarnation,
                                  self._detector.update_budget]

    # -- piggybacking ---------------------------------------------------

    def collect_piggyback(self, limit: int) -> List[Update]:
        """Up to ``limit`` buffered updates, freshest budgets first.

        Decrements each chosen update's remaining budget and drops
        exhausted entries — the standard SWIM infection-style
        dissemination schedule.
        """
        if not self._updates:
            return []
        chosen = sorted(self._updates.items(),
                        key=lambda item: (-item[1][2], item[0]))[:limit]
        out: List[Update] = []
        for subject, record in chosen:
            out.append((record[0], subject, record[1]))
            record[2] -= 1
            if record[2] <= 0:
                del self._updates[subject]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        summary = {_STATE_NAMES[s]: sum(1 for v in self._states.values()
                                        if v == s)
                   for s in (SUSPECT, DEAD)}
        return (f"SiteView({self.observer!r}, inc={self.incarnation}, "
                f"{summary})")


@dataclass
class DetectionReport:
    """What one detector run measured (mirrors the stats fields)."""

    outages: int = 0
    detected: int = 0
    false_positives: int = 0
    false_negatives: int = 0
    messages: int = 0
    bytes: int = 0
    latencies: List[float] = field(default_factory=list)

    @property
    def mean_latency(self) -> float:
        return (sum(self.latencies) / len(self.latencies)
                if self.latencies else 0.0)


# ----------------------------------------------------------------------
# The detector
# ----------------------------------------------------------------------


class SwimDetector:
    """SWIM failure detection for every site of one simulator.

    Drives itself entirely through :meth:`Simulator.call_at` timers, so
    :meth:`start` then ``simulator.run()`` is the whole integration.
    Protocol packets travel an out-of-band control channel: one
    ``link_latency`` per leg, dropped when the receiver is down, the
    connecting link is cut, or the simulator's ``loss_fn`` loses them —
    but they do not occupy data-link bandwidth, so installing the
    detector never perturbs data-traffic latency statistics.

    ``view_at(site)`` is the per-site :class:`SiteView`;
    ``detected_dead()`` aggregates the confirmed-dead sets of currently
    *live* observers (the converged cluster view a shared self-healing
    table repairs from).
    """

    def __init__(
        self,
        simulator: Simulator,
        config: Optional[SwimConfig] = None,
        horizon: Optional[float] = None,
    ) -> None:
        self.simulator = simulator
        self.config = config or SwimConfig()
        #: Ticks stop rescheduling at this simulated time (a detector
        #: with no horizon would keep ``run()`` alive forever).
        self.horizon = horizon if horizon is not None else 0.0
        if self.horizon <= 0:
            raise InvalidParameterError(
                "SwimDetector needs a positive horizon (when to stop "
                "scheduling probe ticks)")
        space = PackedSpace(simulator.d, simulator.k)
        self.space = space
        self.sites: List[WordTuple] = [space.unpack(v)
                                       for v in range(space.order)]
        #: Piggyback budget: ~retransmit_mult * log2(N) sends per update.
        self.update_budget = max(
            3, math.ceil(self.config.retransmit_mult
                         * math.log2(space.order + 1)))
        self._views: Dict[WordTuple, SiteView] = {
            site: SiteView(site, self) for site in self.sites}
        self._neighbors: Dict[WordTuple, List[WordTuple]] = {
            site: self._adjacency(site) for site in self.sites}
        self._rngs: Dict[WordTuple, random.Random] = {
            site: random.Random(f"{self.config.seed}:site:{site}")
            for site in self.sites}
        self._probe_seq = 0
        #: Round-robin probe schedules: per site, a shuffled permutation
        #: of its neighbors and a cursor (SWIM §4.3: random-permutation
        #: round-robin bounds worst-case first-probe time at
        #: ``2 * |neighbors| - 1`` intervals, where uniform random
        #: sampling has an unbounded tail).
        self._probe_order: Dict[WordTuple, List[WordTuple]] = {}
        self._probe_cursor: Dict[WordTuple, int] = {}
        #: Outstanding probes: probe id -> still waiting for an ack.
        self._pending_probes: Set[int] = set()
        self._was_down: Dict[WordTuple, bool] = {}
        #: Measurement-only fault bookkeeping (ground truth, stats only).
        self._down_since: Dict[WordTuple, float] = {}
        self._credited: Set[WordTuple] = set()
        #: The cluster-level verdict the shared healer repairs from:
        #: subject -> incarnation of its standing DEAD record.  Follows
        #: the freshest evidence anywhere — the first confirmation from
        #: any observer convicts, the first refutation (a fresher or
        #: firsthand ALIVE at any live observer) acquits — rather than
        #: waiting for every individual view to converge.
        self._global_dead: Dict[WordTuple, int] = {}
        #: Last acquittal per subject: (incarnation, time).  Guards the
        #: verdict against stale convictions still in the pipeline — a
        #: suspicion that started before the acquittal confirms at an
        #: older-or-equal incarnation within one refutation window.
        self._acquit: Dict[WordTuple, Tuple[int, float]] = {}
        #: Fired whenever the aggregated detected-dead set may have
        #: changed (detection-driven repair hangs its sync here).
        self.on_dead_change: Optional[Callable[["SwimDetector"], None]] = None
        self._started = False
        self._finalized = False

    def _adjacency(self, site: WordTuple) -> List[WordTuple]:
        """The site's probe targets: its de Bruijn neighbors, sans self."""
        space = self.space
        value = space.pack(site)
        packed: Set[int] = set(space.left_neighbors(value))
        if self.simulator.bidirectional:
            packed.update(space.right_neighbors(value))
        packed.discard(value)
        return [space.unpack(v) for v in sorted(packed)]

    # -- public API -----------------------------------------------------

    def view_at(self, observer: WordTuple) -> SiteView:
        """The observer's own membership view (the provider protocol)."""
        return self._views[observer]

    def detected_dead(self) -> FrozenSet[WordTuple]:
        """The cluster-level confirmed-dead set.

        The aggregation a *shared* self-healing table repairs from:
        the first confirmation from any observer convicts a site, the
        first refutation anywhere (a fresher-incarnation or firsthand
        ALIVE) acquits it.  Individual :class:`SiteView`\\ s converge to
        the same verdicts through dissemination, but the shared healer
        should not wait for the slowest view.
        """
        return frozenset(self._global_dead)

    def start(self) -> None:
        """Arm every site's probe loop and the fault observer."""
        if self._started:
            return
        self._started = True
        self.simulator.add_event_hook(self._observe_event)
        interval = self.config.probe_interval
        for site in self.sites:
            # De-synchronised first ticks: a random phase per site.
            phase = self._rngs[site].uniform(0.0, interval)
            self.simulator.call_at(phase, self._make_tick(site))

    def piggyback_on_traffic(self) -> None:
        """Also disseminate on the simulator's ordinary routed traffic.

        Installs a delivery hook: whenever a data message is delivered,
        updates buffered at its *source* are applied at its destination,
        as if they had ridden along — the "piggyback on existing
        routing flow" channel.  Slightly optimistic (the updates are
        read at delivery time, not injection time), which matters only
        when the in-flight time exceeds the dissemination budget.
        """
        limit = self.config.piggyback_limit

        def relay(message: Message, simulator: Simulator) -> None:
            source_view = self._views.get(message.source)
            target_view = self._views.get(message.destination)
            if source_view is None or target_view is None:
                return
            if simulator.is_failed(message.destination):
                return
            for state, subject, inc in source_view.collect_piggyback(limit):
                target_view.apply(state, subject, inc)

        self.simulator.add_deliver_hook(relay)

    def finalize(self) -> DetectionReport:
        """Close the books: score still-undetected outages, report.

        Call after ``simulator.run()`` returns.  Outages that outlived
        the run without any confirmation count as false negatives
        (the detector had its chance and missed).
        """
        stats = self.simulator.stats
        if not self._finalized:
            self._finalized = True
            for site in list(self._down_since):
                if site not in self._credited:
                    stats.false_negatives += 1
        return DetectionReport(
            outages=self._outages,
            detected=len(stats.detection_latencies),
            false_positives=stats.false_positives,
            false_negatives=stats.false_negatives,
            messages=stats.membership_messages,
            bytes=stats.membership_bytes,
            latencies=list(stats.detection_latencies),
        )

    # -- the probe loop -------------------------------------------------

    def _make_tick(self, site: WordTuple) -> Callable[[Simulator], None]:
        def tick(simulator: Simulator, _site=site) -> None:
            self._tick(_site)
        return tick

    def _tick(self, site: WordTuple) -> None:
        simulator = self.simulator
        now = simulator.now
        if now + self.config.probe_interval <= self.horizon:
            simulator.call_at(now + self.config.probe_interval,
                              self._make_tick(site))
        if simulator.is_failed(site):
            self._was_down[site] = True
            return
        view = self._views[site]
        if self._was_down.pop(site, False):
            # Rejoin after an outage: refute any standing death verdict
            # with a fresher incarnation and announce it.  The rejoiner
            # is itself a live observer, so its announcement also
            # acquits it in the cluster-level verdict immediately.
            view.incarnation += 1
            view._enqueue(ALIVE, site, view.incarnation)
            self._on_cleared(site, site, view.incarnation, firsthand=True)
        neighbors = self._neighbors[site]
        if not neighbors:  # pragma: no cover - k >= 1 graphs have neighbors
            return
        rng = self._rngs[site]
        # A suspect's refutation window is ticking: re-probing it beats
        # scanning a healthy neighbor, both for clearing a wrong
        # suspicion fast and for confirming a right one with evidence.
        suspects = [n for n in neighbors if view.state(n) == SUSPECT]
        if suspects:
            target = suspects[rng.randrange(len(suspects))]
        else:
            target = self._next_round_robin(site, rng)
        self._probe(site, target)

    def _next_round_robin(self, site: WordTuple,
                          rng: random.Random) -> WordTuple:
        """The site's next probe target: shuffled round-robin."""
        order = self._probe_order.get(site)
        cursor = self._probe_cursor.get(site, 0)
        if order is None or cursor >= len(order):
            order = list(self._neighbors[site])
            rng.shuffle(order)
            self._probe_order[site] = order
            cursor = 0
        self._probe_cursor[site] = cursor + 1
        return order[cursor]

    def _probe(self, prober: WordTuple, target: WordTuple) -> None:
        config = self.config
        simulator = self.simulator
        probe_id = self._probe_seq = self._probe_seq + 1
        self._pending_probes.add(probe_id)
        self._send_ping(prober, target, probe_id)
        simulator.call_at(simulator.now + config.probe_timeout,
                          lambda sim: self._direct_timeout(
                              prober, target, probe_id))

    def _direct_timeout(self, prober: WordTuple, target: WordTuple,
                        probe_id: int) -> None:
        if probe_id not in self._pending_probes:
            return  # acked in time
        simulator = self.simulator
        if simulator.is_failed(prober):
            self._pending_probes.discard(probe_id)
            return
        config = self.config
        helpers = [n for n in self._neighbors[prober] if n != target]
        rng = self._rngs[prober]
        count = min(config.indirect_probes, len(helpers))
        if count > 0:
            for helper in rng.sample(helpers, count):
                self._send_packet(
                    prober, helper,
                    lambda sim, _h=helper: self._handle_ping_req(
                        prober, _h, target, probe_id))
        simulator.call_at(
            simulator.now + config.probe_timeout,
            lambda sim: self._indirect_timeout(prober, target, probe_id))

    def _indirect_timeout(self, prober: WordTuple, target: WordTuple,
                          probe_id: int) -> None:
        if probe_id not in self._pending_probes:
            return
        self._pending_probes.discard(probe_id)
        if self.simulator.is_failed(prober):
            return
        self._start_suspicion(prober, target)

    # -- suspicion ------------------------------------------------------

    def _start_suspicion(self, observer: WordTuple,
                         subject: WordTuple) -> None:
        view = self._views[observer]
        if view.state(subject) != ALIVE:
            return  # already suspected or confirmed
        incarnation = view.incarnation_of(subject)
        if not view.apply(SUSPECT, subject, incarnation):
            return  # pragma: no cover - guarded by the ALIVE check above
        self.simulator.call_at(
            self.simulator.now + self.config.suspicion_timeout,
            lambda sim: self._confirm(observer, subject, incarnation))

    def _confirm(self, observer: WordTuple, subject: WordTuple,
                 incarnation: int) -> None:
        view = self._views[observer]
        if self.simulator.is_failed(observer):
            return
        if view.state(subject) != SUSPECT:
            return  # refuted (ALIVE) or already confirmed elsewhere
        if view.incarnation_of(subject) != incarnation:
            return  # a newer incarnation superseded this suspicion
        view.apply(DEAD, subject, incarnation)

    # -- the control channel --------------------------------------------

    def _send_packet(self, source: WordTuple, destination: WordTuple,
                     deliver: Callable[[Simulator], None],
                     extra_bytes: int = 0) -> None:
        """One control-channel packet: latency, liveness, loss — no queue."""
        simulator = self.simulator
        stats = simulator.stats
        stats.membership_messages += 1
        stats.membership_bytes += _PACKET_BYTES + 2 * simulator.k \
            + extra_bytes
        if simulator.is_failed(source):
            return
        if simulator.is_link_failed(source, destination):
            return
        if simulator.loss_fn is not None \
                and simulator.loss_fn(source, destination):
            return

        def arrive(sim: Simulator) -> None:
            if sim.is_failed(destination):
                return
            deliver(sim)

        simulator.call_at(simulator.now + simulator.link_latency, arrive)

    def _send_ping(self, source: WordTuple, target: WordTuple,
                   probe_id: int,
                   relay_to: Optional[WordTuple] = None) -> None:
        updates = self._views[source].collect_piggyback(
            self.config.piggyback_limit)
        self._send_packet(
            source, target,
            lambda sim: self._handle_ping(source, target, probe_id,
                                          updates, relay_to),
            extra_bytes=_UPDATE_BYTES * len(updates))

    def _handle_ping(self, source: WordTuple, target: WordTuple,
                     probe_id: int, updates: List[Update],
                     relay_to: Optional[WordTuple]) -> None:
        view = self._views[target]
        for state, subject, inc in updates:
            view.apply(state, subject, inc)
        # Receiving the ping is itself firsthand evidence the prober is
        # alive (applied after the piggyback so a refutation-triggering
        # SUSPECT about the prober cannot immediately re-shadow it).
        view.apply(ALIVE, source, view.incarnation_of(source),
                   firsthand=True)
        # Ack back to the prober (or to the indirect helper, who relays).
        ack_updates = view.collect_piggyback(self.config.piggyback_limit)
        incarnation = view.incarnation
        self._send_packet(
            target, source,
            lambda sim: self._handle_ack(source, target, probe_id,
                                         incarnation, ack_updates,
                                         relay_to),
            extra_bytes=_UPDATE_BYTES * len(ack_updates))

    def _handle_ack(self, receiver: WordTuple, target: WordTuple,
                    probe_id: int, target_incarnation: int,
                    updates: List[Update],
                    relay_to: Optional[WordTuple]) -> None:
        view = self._views[receiver]
        for state, subject, inc in updates:
            view.apply(state, subject, inc)
        # The ack is firsthand evidence: the target answered *after*
        # whatever silence earned any standing accusation at this
        # incarnation, so it clears a same-incarnation SUSPECT/DEAD.
        view.apply(ALIVE, target,
                   max(target_incarnation, view.incarnation_of(target)),
                   firsthand=True)
        if relay_to is not None:
            # Indirect leg: pass the good news back to the origin.
            self._send_packet(
                receiver, relay_to,
                lambda sim: self._handle_relayed_ack(
                    relay_to, target, probe_id, target_incarnation))
            return
        self._pending_probes.discard(probe_id)

    def _handle_relayed_ack(self, origin: WordTuple, target: WordTuple,
                            probe_id: int,
                            target_incarnation: int) -> None:
        self._views[origin].apply(ALIVE, target, target_incarnation)
        self._pending_probes.discard(probe_id)

    def _handle_ping_req(self, origin: WordTuple, helper: WordTuple,
                         target: WordTuple, probe_id: int) -> None:
        self._send_ping(helper, target, probe_id, relay_to=origin)

    # -- measurement hooks (ground truth, stats only) -------------------

    _outages = 0

    def _observe_event(self, event, simulator: Simulator) -> None:
        kind = event.kind
        if kind == EventKind.FAIL:
            if event.node not in self._down_since:
                self._down_since[event.node] = event.time
                self._outages += 1
        elif kind == EventKind.RECOVER:
            started = self._down_since.pop(event.node, None)
            if started is not None and event.node not in self._credited:
                simulator.stats.false_negatives += 1
            self._credited.discard(event.node)

    def _on_dead_marked(self, observer: WordTuple, subject: WordTuple,
                        incarnation: int) -> None:
        """An observer confirmed ``subject`` dead at ``incarnation``."""
        stats = self.simulator.stats
        standing = self._global_dead.get(subject)
        if standing is not None and standing >= incarnation:
            return  # already convicted at this (or fresher) evidence
        acquit = self._acquit.get(subject)
        if acquit is not None:
            acquit_inc, acquit_time = acquit
            if incarnation < acquit_inc:
                return  # conviction predates the subject's refutation
            if incarnation == acquit_inc and self.simulator.now \
                    < acquit_time + self.config.suspicion_timeout:
                # Within one refutation window of a same-incarnation
                # acquittal this can only be a suspicion that started
                # before the acquitting evidence — stale, not new.
                return
        self._global_dead[subject] = incarnation
        if standing is None:
            # A new conviction (not a fresher re-confirmation): score it.
            if subject in self._down_since:
                if subject not in self._credited:
                    self._credited.add(subject)
                    stats.detection_latencies.append(
                        self.simulator.now - self._down_since[subject])
            else:
                # Confirmed dead while actually alive: a false
                # conviction, counted once per episode to match the
                # once-per-outage detection credit.
                stats.false_positives += 1
        if self.on_dead_change is not None:
            self.on_dead_change(self)

    def _on_cleared(self, observer: WordTuple, subject: WordTuple,
                    incarnation: int, firsthand: bool) -> None:
        """An observer saw ALIVE evidence against a standing verdict.

        Fresher-incarnation ALIVE (the subject's own refutation, so
        ``incarnation`` exceeds any accusation it answers) always
        acquits; firsthand equal-incarnation ALIVE (the subject just
        answered a probe) acquits the same incarnation's conviction.
        """
        standing = self._global_dead.get(subject)
        if standing is None:
            return
        if incarnation > standing or (firsthand and
                                      incarnation >= standing):
            del self._global_dead[subject]
            self._acquit[subject] = (incarnation, self.simulator.now)
            if self.on_dead_change is not None:
                self.on_dead_change(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SwimDetector(DG({self.simulator.d},{self.simulator.k}), "
                f"{len(self.sites)} sites, horizon={self.horizon})")
