"""Distributed sorting on DN(d, k) — the Samatham–Pradhan claim, executed.

Paper §1 cites Samatham–Pradhan: the binary de Bruijn network is "a
versatile parallel processing and sorting network".  The simplest
constructive witness is odd–even transposition sort on the dilation-1
linear-array embedding (:func:`repro.graphs.embeddings.embed_linear_array`):
every compare–exchange partner is one hop away, so each round costs one
cycle of neighbor messages and N rounds sort any input of N keys.

The model here is synchronous and message-counting (each compare–exchange
is two one-hop messages); the correctness statement — sorted after at most
N rounds, with the classic 0-1-principle backing — is what the tests pin
down, and :func:`sort_trace` exposes the full round-by-round history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.word import WordTuple, validate_parameters
from repro.exceptions import InvalidParameterError
from repro.graphs.embeddings import embed_linear_array


@dataclass(frozen=True)
class SortResult:
    """Outcome of a distributed sort."""

    rounds_used: int
    messages: int
    final_keys: Tuple[int, ...]
    placement: Dict[WordTuple, int]


def _compare_exchange(keys: List, left: int, right: int) -> bool:
    """Order keys[left] <= keys[right]; True when a swap happened."""
    if keys[left] > keys[right]:
        keys[left], keys[right] = keys[right], keys[left]
        return True
    return False


def odd_even_transposition_sort(
    d: int, k: int, keys: Sequence, max_rounds: int = 0
) -> SortResult:
    """Sort ``keys`` (one per site) over the embedded linear array.

    Round r compares array positions ``(i, i+1)`` with ``i ≡ r (mod 2)``.
    Runs until a clean sweep (no exchanges in two consecutive rounds) or
    ``max_rounds`` (default N).  Every compare–exchange costs 2 messages
    (the neighbors swap their keys); compares without a swap cost 2 probe
    messages as well — the full handshake is counted.
    """
    validate_parameters(d, k)
    array = embed_linear_array(d, k)
    n = len(array)
    if len(keys) != n:
        raise InvalidParameterError(f"need exactly {n} keys, got {len(keys)}")
    working = list(keys)
    limit = max_rounds if max_rounds > 0 else n
    messages = 0
    rounds_used = 0
    quiet_streak = 0
    for round_index in range(limit):
        swapped_any = False
        start = round_index % 2
        for i in range(start, n - 1, 2):
            messages += 2  # the handshake between the two sites
            if _compare_exchange(working, i, i + 1):
                swapped_any = True
        rounds_used += 1
        quiet_streak = 0 if swapped_any else quiet_streak + 1
        if quiet_streak >= 2:
            break
    placement = {site: key for site, key in zip(array, working)}
    return SortResult(rounds_used, messages, tuple(working), placement)


def sort_trace(d: int, k: int, keys: Sequence) -> List[Tuple[int, ...]]:
    """Round-by-round key vectors (for teaching/debugging)."""
    validate_parameters(d, k)
    array = embed_linear_array(d, k)
    n = len(array)
    if len(keys) != n:
        raise InvalidParameterError(f"need exactly {n} keys, got {len(keys)}")
    working = list(keys)
    history = [tuple(working)]
    for round_index in range(n):
        for i in range(round_index % 2, n - 1, 2):
            _compare_exchange(working, i, i + 1)
        history.append(tuple(working))
    return history


def is_sorted(values: Sequence) -> bool:
    """True when ``values`` is non-decreasing."""
    return all(a <= b for a, b in zip(values, values[1:]))


def worst_case_rounds(n: int) -> int:
    """Odd–even transposition sorts any input of n keys in n rounds."""
    if n < 1:
        raise InvalidParameterError("need at least one key")
    return n
