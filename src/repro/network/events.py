"""The discrete-event core: a time-ordered queue of simulator events."""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.word import WordTuple
from repro.network.message import Message


class EventKind(enum.IntEnum):
    """What happens when an event fires."""

    INJECT = 0  #: a message enters the network at its source site
    ARRIVE = 1  #: a message arrives at a site and is processed
    FAIL = 2  #: a site goes down
    RECOVER = 3  #: a site comes back up


@dataclass(order=True)
class Event:
    """One scheduled occurrence; ordering is (time, sequence number)."""

    time: float
    seq: int
    kind: EventKind = field(compare=False)
    node: WordTuple = field(compare=False)
    message: Optional[Message] = field(compare=False, default=None)


class EventQueue:
    """A heap of :class:`Event` with FIFO tie-breaking at equal times."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()

    def push(
        self, time: float, kind: EventKind, node: WordTuple, message: Optional[Message] = None
    ) -> Event:
        """Schedule and return a new event."""
        event = Event(time, next(self._counter), kind, node, message)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        return heapq.heappop(self._heap)

    def peek_time(self) -> Optional[float]:
        """Earliest scheduled time, or None when empty."""
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
