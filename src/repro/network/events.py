"""The discrete-event core: a time-ordered queue of simulator events."""

from __future__ import annotations

import enum
import heapq
import itertools
from typing import List, Optional, Tuple

from repro.core.word import WordTuple
from repro.network.message import Message


class EventKind(enum.IntEnum):
    """What happens when an event fires."""

    INJECT = 0  #: a message enters the network at its source site
    ARRIVE = 1  #: a message arrives at a site and is processed
    FAIL = 2  #: a site goes down
    RECOVER = 3  #: a site comes back up
    TIMER = 4  #: a scheduled callback fires (protocol layers, see call_at)


class Event:
    """One scheduled occurrence; ordering is (time, sequence number).

    A plain ``__slots__`` class on the simulator's hottest path: the heap
    orders raw ``(time, seq)`` tuples (compared in C), so events carry no
    comparison methods and no per-instance dict.
    """

    __slots__ = ("time", "seq", "kind", "node", "message")

    def __init__(
        self,
        time: float,
        seq: int,
        kind: EventKind,
        node: WordTuple,
        message: Optional[Message] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.kind = kind
        self.node = node
        self.message = message

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event(time={self.time!r}, seq={self.seq!r}, kind={self.kind!r}, "
            f"node={self.node!r}, message={self.message!r})"
        )


class EventQueue:
    """A heap of scheduled events with FIFO tie-breaking at equal times.

    Entries are either ``(time, seq, event)`` triples (the :meth:`push`
    API, which returns the :class:`Event` so callers can hold on to it)
    or raw ``(time, seq, kind, node, message)`` tuples (the :meth:`schedule`
    fast path, which defers building the Event object until someone —
    :meth:`pop` or an observer — actually needs one).  Either way heap
    sifting compares machine floats and ints directly instead of calling
    back into Python; ``seq`` is unique so comparisons never reach the
    payload.  Both choices are measurably faster under heavy traffic (E17).
    """

    def __init__(self) -> None:
        self._heap: List[Tuple] = []
        self._counter = itertools.count()

    def push(
        self, time: float, kind: EventKind, node: WordTuple, message: Optional[Message] = None
    ) -> Event:
        """Schedule and return a new event (the same object comes back
        out of :meth:`pop`)."""
        seq = next(self._counter)
        event = Event(time, seq, kind, node, message)
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def schedule(
        self, time: float, kind: EventKind, node: WordTuple, message: Optional[Message] = None
    ) -> None:
        """Schedule without materialising an :class:`Event` (hot path)."""
        heapq.heappush(self._heap, (time, next(self._counter), kind, node, message))

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        entry = heapq.heappop(self._heap)
        if len(entry) == 3:
            return entry[2]
        return Event(*entry)

    def peek_time(self) -> Optional[float]:
        """Earliest scheduled time, or None when empty."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
