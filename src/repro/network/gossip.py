"""Epidemic (gossip) dissemination on the de Bruijn network.

The unstructured cousin of the spanning-tree broadcast: in every
synchronous round each informed site pushes the rumor to one uniformly
random neighbor.  No tree, no coordination, naturally fault-tolerant —
at the cost of redundant messages.  On expander-like graphs (de Bruijn
graphs qualify) push gossip informs everyone in Θ(log N) rounds w.h.p.;
the tests and the E9 extension measure exactly that, plus the robustness
edge over tree broadcast when sites die mid-dissemination.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Set

from repro.core.word import WordTuple
from repro.exceptions import InvalidParameterError
from repro.graphs.debruijn import DeBruijnGraph


@dataclass(frozen=True)
class GossipResult:
    """Outcome of one gossip run."""

    rounds: int
    messages: int
    informed: int
    population: int
    coverage_by_round: tuple

    @property
    def coverage(self) -> float:
        """Fraction of live sites informed at the end."""
        if self.population == 0:
            return 1.0
        return self.informed / self.population


def push_gossip(
    d: int,
    k: int,
    source: WordTuple,
    rng: Optional[random.Random] = None,
    failed: Optional[Iterable[WordTuple]] = None,
    max_rounds: int = 0,
) -> GossipResult:
    """Synchronous push gossip from ``source`` until full coverage.

    Each round, every informed live site sends to one uniformly random
    (undirected) neighbor; dead sites neither relay nor count toward
    coverage.  Stops at full coverage of the source's surviving component
    or after ``max_rounds`` (default ``8·k + 16``, far beyond the
    logarithmic expectation).
    """
    graph = DeBruijnGraph(d, k, directed=False)
    dead: Set[WordTuple] = set(failed) if failed is not None else set()
    if source in dead:
        raise InvalidParameterError("the gossip source is dead")
    generator = rng if rng is not None else random.Random()

    # Coverage target: the source's surviving component (unreachable
    # survivors can never be informed, with any protocol).
    from repro.graphs.traversal import bfs_distances

    component = set(
        bfs_distances(graph, source,
                      neighbor_fn=lambda v: (u for u in graph.neighbors(v) if u not in dead))
    )
    population = len(component)

    informed: Set[WordTuple] = {source}
    limit = max_rounds if max_rounds > 0 else 8 * k + 16
    messages = 0
    coverage = [1]
    rounds = 0
    while len(informed) < population and rounds < limit:
        rounds += 1
        newly: Set[WordTuple] = set()
        for site in informed:
            neighbors = sorted(graph.neighbors(site))
            if not neighbors:
                continue
            target = neighbors[generator.randrange(len(neighbors))]
            messages += 1
            if target not in dead and target not in informed:
                newly.add(target)
        informed |= newly
        coverage.append(len(informed))
    return GossipResult(
        rounds=rounds,
        messages=messages,
        informed=len(informed),
        population=population,
        coverage_by_round=tuple(coverage),
    )


def mean_rounds_to_cover(
    d: int, k: int, trials: int, seed: int = 0, failed: Optional[Iterable[WordTuple]] = None
) -> float:
    """Average full-coverage round count over independent trials."""
    source = (0,) * k
    total = 0
    for trial in range(trials):
        result = push_gossip(d, k, source, rng=random.Random(seed + trial), failed=failed)
        if result.coverage < 1.0:
            raise InvalidParameterError("gossip failed to cover within the round limit")
        total += result.rounds
    return total / trials
