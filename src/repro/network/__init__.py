"""Discrete-event simulation of the de Bruijn network DN(d, k)."""

from repro.network.broadcast import (
    broadcast_lower_bound,
    broadcast_tree,
    simulate_tree_broadcast,
    simulate_unicast_broadcast,
    tree_depth,
)
from repro.network.deflection import (
    DeflectionNetwork,
    DeflectionStats,
    preferred_port,
    uniform_deflection_workload,
)
from repro.network.chaos import (
    ChaosConfig,
    ChaosSchedule,
    FaultEvent,
    generate_schedule,
    install_link_loss,
    run_campaign,
)
from repro.network.gossip import GossipResult, mean_rounds_to_cover, push_gossip
from repro.network.membership import (
    DetectionReport,
    MembershipView,
    OracleMembership,
    SiteView,
    SwimConfig,
    SwimDetector,
)
from repro.network.faults import (
    FaultAwareRouter,
    is_connected_after_failures,
    survives_failures,
    vertex_disjoint_paths,
)
from repro.network.message import ControlCode, Message, decode_message, encode_message
from repro.network.node import Node
from repro.network.link import Link
from repro.network.router import (
    AdaptiveGreedyRouter,
    BidirectionalOptimalRouter,
    RandomMinimalRouter,
    Router,
    StatelessRouter,
    TableDrivenRouter,
    TrivialRouter,
    UnidirectionalOptimalRouter,
    ValiantRouter,
)
from repro.network.reliable import ReliableTransport, Transfer, TransportStats
from repro.network.resilience import (
    LocalDetourPolicy,
    RepairReport,
    SelfHealingRouteTable,
    compile_with_failures,
    repair_route_table,
)
from repro.network.simulator import Simulator, run_workload
from repro.network.sorting import odd_even_transposition_sort, sort_trace
from repro.network.tracing import TraceRecorder
from repro.network.stats import SimulationStats, jain_fairness, percentile
from repro.network.traffic import (
    all_pairs_once,
    all_to_all,
    bit_reversal,
    complement_traffic,
    hotspot,
    permutation_traffic,
    random_pairs,
    uniform_random,
)

__all__ = [
    "AdaptiveGreedyRouter",
    "BidirectionalOptimalRouter",
    "ChaosConfig",
    "ChaosSchedule",
    "ControlCode",
    "FaultEvent",
    "LocalDetourPolicy",
    "RepairReport",
    "SelfHealingRouteTable",
    "compile_with_failures",
    "generate_schedule",
    "install_link_loss",
    "repair_route_table",
    "run_campaign",
    "DeflectionNetwork",
    "DeflectionStats",
    "DetectionReport",
    "MembershipView",
    "OracleMembership",
    "SiteView",
    "SwimConfig",
    "SwimDetector",
    "GossipResult",
    "mean_rounds_to_cover",
    "push_gossip",
    "preferred_port",
    "uniform_deflection_workload",
    "FaultAwareRouter",
    "Link",
    "Message",
    "Node",
    "RandomMinimalRouter",
    "ReliableTransport",
    "Transfer",
    "TransportStats",
    "odd_even_transposition_sort",
    "sort_trace",
    "Router",
    "SimulationStats",
    "Simulator",
    "StatelessRouter",
    "TableDrivenRouter",
    "TraceRecorder",
    "TrivialRouter",
    "UnidirectionalOptimalRouter",
    "ValiantRouter",
    "all_pairs_once",
    "all_to_all",
    "bit_reversal",
    "broadcast_lower_bound",
    "broadcast_tree",
    "simulate_tree_broadcast",
    "simulate_unicast_broadcast",
    "tree_depth",
    "complement_traffic",
    "decode_message",
    "encode_message",
    "hotspot",
    "is_connected_after_failures",
    "jain_fairness",
    "percentile",
    "permutation_traffic",
    "random_pairs",
    "run_workload",
    "survives_failures",
    "uniform_random",
    "vertex_disjoint_paths",
]
