"""Deflection (hot-potato) routing on the uni-directional DN(d, k).

The de Bruijn graph is the classical substrate for bufferless routing:
every node has in-degree = out-degree = d, so if every resident packet is
forwarded every cycle, no node can ever hold more than d packets — no
buffers needed.  Packets that lose the arbitration for their preferred
output port are *deflected* onto any free port and pay extra hops.

This module implements the synchronous model:

* time advances in lock-step cycles;
* each node holds at most d packets (one per output port);
* each packet prefers the port given by Algorithm 1 — the digit
  ``y_{l+1}`` past the maximal overlap, which is the unique distance-
  decreasing move in the directed graph;
* arbitration is by age (oldest first, the standard livelock-resistant
  policy) or by remaining distance (closest first);
* a node may inject a new packet whenever it holds fewer than d packets
  at the start of a cycle.

Everything the store-and-forward simulator measures has an analogue here,
and benchmark E11 puts the two models side by side.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Literal, Optional, Tuple

from repro.core.word import WordTuple, left_shift, overlap_length, validate_parameters, validate_word
from repro.exceptions import SimulationError

Priority = Literal["oldest", "closest"]

_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """One hot-potato packet."""

    destination: WordTuple
    injected_at: int
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    hops: int = 0
    deflections: int = 0
    delivered_at: Optional[int] = None

    @property
    def latency(self) -> Optional[int]:
        """Cycles from injection to delivery, or None in flight."""
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.injected_at


def preferred_port(current: WordTuple, destination: WordTuple) -> int:
    """The unique distance-decreasing output digit (Algorithm 1's move).

    For ``current == destination`` any port works; 0 is returned.
    """
    if current == destination:
        return 0
    overlap = overlap_length(current, destination)
    return destination[overlap]


@dataclass
class DeflectionStats:
    """Aggregate results of a deflection run."""

    delivered: List[Packet] = field(default_factory=list)
    injected: int = 0
    rejected_injections: int = 0
    cycles: int = 0
    total_deflections: int = 0

    def mean_latency(self) -> float:
        """Mean delivery latency in cycles."""
        values = [p.latency for p in self.delivered if p.latency is not None]
        return sum(values) / len(values) if values else 0.0

    def mean_deflections(self) -> float:
        """Average number of deflections per delivered packet."""
        if not self.delivered:
            return 0.0
        return sum(p.deflections for p in self.delivered) / len(self.delivered)

    def max_latency(self) -> int:
        """Worst delivery latency in cycles."""
        values = [p.latency for p in self.delivered if p.latency is not None]
        return max(values) if values else 0

    def deflection_rate(self) -> float:
        """Deflections per hop taken across all delivered packets."""
        hops = sum(p.hops for p in self.delivered)
        if hops == 0:
            return 0.0
        return sum(p.deflections for p in self.delivered) / hops


class DeflectionNetwork:
    """The synchronous bufferless DN(d, k)."""

    def __init__(self, d: int, k: int, priority: Priority = "oldest") -> None:
        validate_parameters(d, k)
        if priority not in ("oldest", "closest"):
            raise SimulationError(f"unknown arbitration priority {priority!r}")
        self.d = d
        self.k = k
        self.priority = priority
        self.cycle = 0
        self._resident: Dict[WordTuple, List[Packet]] = {}
        self.stats = DeflectionStats()

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------

    def occupancy(self, node: WordTuple) -> int:
        """Packets currently parked at ``node``."""
        return len(self._resident.get(node, []))

    def try_inject(self, source: WordTuple, destination: WordTuple) -> Optional[Packet]:
        """Inject if an output port is free; returns the packet or None."""
        validate_word(source, self.d, self.k)
        validate_word(destination, self.d, self.k)
        if self.occupancy(source) >= self.d:
            self.stats.rejected_injections += 1
            return None
        packet = Packet(destination, self.cycle)
        self._resident.setdefault(source, []).append(packet)
        self.stats.injected += 1
        return packet

    # ------------------------------------------------------------------
    # The synchronous cycle
    # ------------------------------------------------------------------

    def _arbitration_key(self, node: WordTuple):
        if self.priority == "oldest":
            return lambda p: (p.injected_at, p.packet_id)
        return lambda p: (
            self.k - overlap_length(node, p.destination),
            p.injected_at,
            p.packet_id,
        )

    def step(self) -> None:
        """Advance one cycle: deliver, arbitrate, forward everything."""
        next_resident: Dict[WordTuple, List[Packet]] = {}
        for node, packets in self._resident.items():
            in_flight: List[Packet] = []
            for packet in packets:
                if packet.destination == node:
                    packet.delivered_at = self.cycle
                    self.stats.delivered.append(packet)
                else:
                    in_flight.append(packet)
            if len(in_flight) > self.d:  # pragma: no cover - invariant
                raise SimulationError(f"node {node!r} exceeded its {self.d} ports")
            in_flight.sort(key=self._arbitration_key(node))
            free_ports = set(range(self.d))
            for packet in in_flight:
                wanted = preferred_port(node, packet.destination)
                if wanted in free_ports:
                    port = wanted
                else:
                    port = min(free_ports)
                    packet.deflections += 1
                    self.stats.total_deflections += 1
                free_ports.remove(port)
                packet.hops += 1
                landing = left_shift(node, port)
                next_resident.setdefault(landing, []).append(packet)
        self._resident = next_resident
        self.cycle += 1
        self.stats.cycles = self.cycle

    @property
    def in_flight(self) -> int:
        """Packets still travelling."""
        return sum(len(packets) for packets in self._resident.values())

    def drain(self, max_cycles: int = 100_000) -> None:
        """Step until every packet is delivered (no further injections)."""
        while self.in_flight:
            if self.cycle >= max_cycles:
                raise SimulationError(
                    f"{self.in_flight} packets still in flight after {max_cycles} cycles"
                )
            self.step()

    # ------------------------------------------------------------------
    # Workload driver
    # ------------------------------------------------------------------

    def run(
        self,
        workload: Iterable[Tuple[int, WordTuple, WordTuple]],
        drain: bool = True,
    ) -> DeflectionStats:
        """Inject a (cycle, source, destination) stream, then drain.

        Injections scheduled for a cycle the network has already passed
        are attempted immediately (the stream must be sorted by cycle for
        faithful timing).
        """
        pending = sorted(workload, key=lambda item: item[0])
        index = 0
        while index < len(pending) or (drain and self.in_flight):
            while index < len(pending) and pending[index][0] <= self.cycle:
                _, source, destination = pending[index]
                self.try_inject(source, destination)
                index += 1
            self.step()
            if self.cycle > 1_000_000:  # pragma: no cover - runaway guard
                raise SimulationError("deflection run exceeded one million cycles")
        return self.stats


def uniform_deflection_workload(
    d: int,
    k: int,
    cycles: int,
    injection_rate: float,
    rng: Optional[random.Random] = None,
) -> List[Tuple[int, WordTuple, WordTuple]]:
    """Bernoulli per-node injections for the synchronous model."""
    from repro.core.word import iter_words

    generator = rng if rng is not None else random.Random()
    words = list(iter_words(d, k))
    events: List[Tuple[int, WordTuple, WordTuple]] = []
    for cycle in range(cycles):
        for source in words:
            if generator.random() < injection_rate:
                destination = words[generator.randrange(len(words))]
                if destination != source:
                    events.append((cycle, source, destination))
    return events
