"""Graceful degradation for the routing stack (experiment E19).

Three layers make the simulator survive the chaos engine
(:mod:`repro.network.chaos`) instead of dropping traffic:

* **Local detours** — :class:`LocalDetourPolicy` redirects a message
  whose next hop is down using *local* knowledge only: the forwarding
  site's own adjacency (which of its neighbors/incident links are up)
  plus precomputed healthy-topology structure.  In compiled-table mode
  the candidates are the site's neighbors ranked by the table's
  distance-to-destination bytes — the distance-layer deflection rule of
  Fàbrega–Martí-Farré–Muñoz (arXiv:2203.09918).  In planned-path mode
  the candidates are the alternate first hops of a Pradhan–Reddy
  vertex-disjoint path family computed on the *intact* graph.  Both are
  bounded to ``d - 1`` alternatives per blocked hop — the paper's
  tolerance bound — and a per-message detour budget rules out
  deflection livelock.  The global failed set is never consulted.

* **Incremental table repair** — :func:`repair_route_table` patches a
  mutable :class:`repro.core.tables.CompiledRouteTable` in place after
  site failures.  Only the rows whose shortest-path trees actually
  route a surviving source through a failed site are re-BFS'd (with the
  blocked-vertex kernel of :mod:`repro.core.parallel`); rows where the
  failed sites are leaves only get their failed-source cells cleared.
  The result is **byte-identical** to a full recompile on the surviving
  topology (:func:`compile_with_failures`, asserted on randomized fault
  sets in the tests) at a fraction of the work.

* **Self-healing tables** — :class:`SelfHealingRouteTable` keeps the
  pristine healthy buffers alongside the working ones and re-syncs the
  working table whenever the failed set changes (fault *or* recovery),
  restoring previously patched rows first so repeated churn never
  accumulates drift.

The module is deliberately simulator-agnostic: the simulator only knows
the ``detour(simulator, address, blocked_target, message)`` protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple, Union

from repro.core.parallel import (
    ACTION_AT_DESTINATION,
    ACTION_UNREACHABLE,
    _table_fill,
)
from repro.core.tables import CompiledRouteTable
from repro.core.word import WordTuple
from repro.exceptions import InvalidParameterError
from repro.network.faults import vertex_disjoint_paths
from repro.network.message import Message
from repro.network.router import vertex_path_to_steps

#: Either representation of a failed site: a packed integer or a word
#: tuple (normalised internally via the table's PackedSpace).
FailedSite = Union[int, WordTuple]


def _normalize_failed(table: CompiledRouteTable,
                      failed: Iterable[FailedSite]) -> FrozenSet[int]:
    """Failed sites as a frozenset of packed values in the table's space."""
    space = table.space
    out: Set[int] = set()
    for site in failed:
        if isinstance(site, int):
            if not 0 <= site < table.order:
                raise InvalidParameterError(
                    f"packed failed site {site} outside 0..{table.order - 1}"
                )
            out.add(site)
        else:
            out.add(space.pack_checked(site))
    return frozenset(out)


# ----------------------------------------------------------------------
# Full recompile on the surviving topology (the repair reference)
# ----------------------------------------------------------------------


def compile_with_failures(
    d: int,
    k: int,
    directed: bool = False,
    failed: Iterable[FailedSite] = (),
) -> CompiledRouteTable:
    """Compile an all-pairs table for DG(d, k) minus the failed sites.

    Semantics: failed vertices are removed from the graph entirely —
    their rows (as destinations) and cells (as sources) read ``0xFF``
    unreachable, and no surviving route traverses them.  This serial
    compile is the ground truth :func:`repair_route_table` is asserted
    byte-identical against; production code should repair incrementally
    instead of calling this.
    """
    space_table = _empty_table(d, k, directed)
    blocked = _normalize_failed(space_table, failed)
    n = space_table.order
    template = bytes([ACTION_UNREACHABLE]) * n
    actions = space_table.actions
    distances = space_table.distances
    dist_row = bytearray(template)
    act_row = bytearray(template)
    for dest in range(n):
        if dest in blocked:
            continue  # the whole row stays unreachable
        dist_row[:] = template
        act_row[:] = template
        _table_fill(d, k, dest, directed, dist_row, act_row, blocked=blocked)
        base = dest * n
        distances[base:base + n] = dist_row
        actions[base:base + n] = act_row
    return space_table


def _empty_table(d: int, k: int, directed: bool) -> CompiledRouteTable:
    """An all-unreachable mutable table for DG(d, k)."""
    n = d ** k
    cells = n * n
    return CompiledRouteTable(
        d, k, directed,
        bytearray(b"\xff" * cells), bytearray(b"\xff" * cells),
    )


# ----------------------------------------------------------------------
# Incremental in-place repair
# ----------------------------------------------------------------------


@dataclass
class RepairReport:
    """What one :func:`repair_route_table` pass actually did."""

    failed_sites: int = 0
    rows_scanned: int = 0
    #: Rows fully re-BFS'd because a surviving source routed through a
    #: failed site.
    rows_repaired: int = 0
    #: Rows where only the failed-source cells needed clearing (the
    #: failed sites were leaves of the row's shortest-path tree).
    rows_patched: int = 0
    #: Rows left completely untouched.
    rows_untouched: int = 0
    #: Row indices (packed destinations) whose bytes changed.
    touched_rows: List[int] = field(default_factory=list)

    @property
    def rows_rewritten(self) -> int:
        return self.rows_repaired + self.rows_patched


def repair_route_table(
    table: CompiledRouteTable,
    failed: Iterable[FailedSite],
) -> RepairReport:
    """Patch ``table`` in place so it routes around ``failed`` sites.

    ``table`` must hold mutable buffers (``thaw()`` a compiled table or
    ``load(..., writable=True)`` an mmap'd one) and must currently
    describe the **intact** topology — repair is a healthy-to-failed
    delta, not an arbitrary diff (use :class:`SelfHealingRouteTable`
    for churn).  The repaired bytes are identical to
    :func:`compile_with_failures` on the same fault set.

    Per destination row the work is:

    1. O(|F|) reachability pre-check — rows no failed site can reach
       are provably untouched;
    2. one early-exit O(N) scan over the action bytes: a surviving
       source's route traverses a failed site iff *some* surviving
       source's recorded next hop is a failed site (the first failed
       node on any affected chain has a surviving tree-predecessor), so
       one predecessor-of-a-failure sighting decides the row;
    3. rows with a sighting get a single-row blocked re-BFS (same
       kernel as the compiler, so tie-breaking — and therefore every
       byte — matches the full recompile); rows without keep their
       bytes except for the failed-source cells, which are cleared.
    """
    if not table.mutable:
        raise InvalidParameterError(
            "repair needs mutable table buffers; call table.thaw() or "
            "load(..., writable=True) first"
        )
    blocked = _normalize_failed(table, failed)
    report = RepairReport(failed_sites=len(blocked))
    if not blocked:
        return report
    n = table.order
    d = table.d
    k = table.k
    directed = table.directed
    actions = table.actions
    distances = table.distances
    space = table.space
    template = bytes([ACTION_UNREACHABLE]) * n
    unreachable_row = template
    blocked_list = list(blocked)
    blocked_mask = bytearray(n)
    for f in blocked_list:
        blocked_mask[f] = 1
    apply_action = space.apply_action

    for y in range(n):
        report.rows_scanned += 1
        base = y * n
        if y in blocked:
            # A dead destination: everything about this row is gone.
            if bytes(actions[base:base + n]) != unreachable_row or \
                    bytes(distances[base:base + n]) != unreachable_row:
                actions[base:base + n] = unreachable_row
                distances[base:base + n] = unreachable_row
                report.rows_repaired += 1
                report.touched_rows.append(y)
            else:  # pragma: no cover - already-unreachable row
                report.rows_untouched += 1
            continue

        if all(distances[base + f] == ACTION_UNREACHABLE
               for f in blocked_list):
            # No failed site reaches y at all; nothing in this row can
            # route through one.
            report.rows_untouched += 1
            continue

        # Early-exit scan: does any *surviving* source hop straight into
        # a failed site?  If a survivor's route traverses a failure at
        # all, the chain's first failed node has a surviving
        # predecessor whose action byte points at it — so one sighting
        # decides the row, usually within a few cells.
        needs_rebfs = False
        for x in range(n):
            if blocked_mask[x]:
                continue
            a = actions[base + x]
            if a >= ACTION_AT_DESTINATION:
                continue
            if blocked_mask[apply_action(x, a)]:
                needs_rebfs = True
                break

        if not needs_rebfs:
            # The failed sites are leaves of this row's tree: clearing
            # their own cells is the entire repair.
            changed = False
            for f in blocked_list:
                if actions[base + f] != ACTION_UNREACHABLE or \
                        distances[base + f] != ACTION_UNREACHABLE:
                    actions[base + f] = ACTION_UNREACHABLE
                    distances[base + f] = ACTION_UNREACHABLE
                    changed = True
            if changed:
                report.rows_patched += 1
                report.touched_rows.append(y)
            else:  # pragma: no cover - pre-check makes this rare
                report.rows_untouched += 1
            continue

        dist_row = bytearray(template)
        act_row = bytearray(template)
        _table_fill(d, k, y, directed, dist_row, act_row, blocked=blocked)
        distances[base:base + n] = dist_row
        actions[base:base + n] = act_row
        report.rows_repaired += 1
        report.touched_rows.append(y)
    return report


class SelfHealingRouteTable:
    """A mutable route table that tracks a changing failed set.

    Keeps the pristine healthy bytes alongside the working buffers; on
    every :meth:`sync` the rows touched by the previous repair are
    restored from pristine first, then :func:`repair_route_table` runs
    against the new failed set.  In-flight messages holding a reference
    to :attr:`table` see the patched action bytes immediately — the
    "self-healing" the chaos campaign's ``repair`` strategy measures.
    """

    def __init__(self, table: CompiledRouteTable) -> None:
        if not table.mutable:
            table = table.thaw()
        self.table = table
        self._pristine_actions = bytes(table.actions)
        self._pristine_distances = bytes(table.distances)
        self._dirty_rows: List[int] = []
        self.failed: FrozenSet[int] = frozenset()
        #: Cumulative accounting across syncs.
        self.repairs = 0
        self.rows_repaired = 0
        self.rows_patched = 0

    def sync(self, failed: Iterable[FailedSite]) -> Optional[RepairReport]:
        """Bring the working table in line with ``failed``; None if no-op."""
        target = _normalize_failed(self.table, failed)
        if target == self.failed:
            return None
        n = self.table.order
        actions = self.table.actions
        distances = self.table.distances
        for row in self._dirty_rows:
            base = row * n
            actions[base:base + n] = self._pristine_actions[base:base + n]
            distances[base:base + n] = self._pristine_distances[base:base + n]
        self._dirty_rows = []
        self.failed = target
        report = repair_route_table(self.table, target)
        self._dirty_rows = list(report.touched_rows)
        self.repairs += 1
        self.rows_repaired += report.rows_repaired
        self.rows_patched += report.rows_patched
        return report


# ----------------------------------------------------------------------
# Local detour routing
# ----------------------------------------------------------------------


class LocalDetourPolicy:
    """Redirect blocked hops from local knowledge only.

    Plugged into :attr:`repro.network.simulator.Simulator.detour_policy`;
    the simulator calls :meth:`detour` when a message's next hop is
    down.  Decisions use only

    * the forwarding site's adjacency (its neighbors' liveness and its
      incident links — the information a real site gets from keepalives),
    * precomputed *healthy*-topology structure: the compiled table's
      distance bytes (table mode) or a Pradhan–Reddy vertex-disjoint
      path family (planned-path mode).

    At most ``max_alternatives`` candidates (default ``d - 1``, the
    Pradhan–Reddy tolerance bound) are considered per blocked hop, and
    a message that has already detoured ``max_detours`` times is given
    up rather than deflected forever.

    With a ``membership`` provider (E20, any object with
    ``view_at(observer)`` returning a
    :class:`repro.network.membership.MembershipView` — a
    :class:`~repro.network.membership.SwimDetector` or the trivial
    :class:`~repro.network.membership.OracleMembership`) candidate
    liveness is judged by the *forwarding site's own detected view*
    instead of the simulator's oracle set: a stale view may deflect
    onto a dead neighbor (the hop is then lost in flight, exactly as a
    real router's would be) or shun a live-but-suspected one.  Link
    state stays local knowledge either way.
    """

    def __init__(
        self,
        table: CompiledRouteTable,
        max_alternatives: Optional[int] = None,
        max_detours: Optional[int] = None,
        family_cache_size: int = 256,
        membership: Optional[object] = None,
    ) -> None:
        self.table = table
        self.space = table.space
        d = table.d
        self.max_alternatives = (
            max(1, d - 1) if max_alternatives is None else max_alternatives)
        self.max_detours = (
            2 * table.k + d if max_detours is None else max_detours)
        self._families: Dict[Tuple[WordTuple, WordTuple],
                             List[List[WordTuple]]] = {}
        self._family_cache_size = family_cache_size
        #: Optional view provider; None keeps the oracle behaviour.
        self.membership = membership

    def _distrusts(self, simulator, observer: WordTuple,
                   site: WordTuple) -> bool:
        """Whether ``observer`` should avoid ``site`` as a next hop."""
        if self.membership is not None:
            return not self.membership.view_at(observer).trusts(site)
        return simulator.is_failed(site)

    # -- the simulator protocol -----------------------------------------

    def detour(self, simulator, address: WordTuple, blocked: WordTuple,
               message: Message) -> Optional[WordTuple]:
        """A live replacement next hop, or None to fall through.

        Updates the message's routing state (packed coordinate or
        remaining path) to match the returned hop.
        """
        if message.detours_used >= self.max_detours:
            return None
        if message.route_table is not None:
            return self._detour_table(simulator, address, blocked, message)
        return self._detour_path(simulator, address, blocked, message)

    # -- table mode: distance-layer deflection --------------------------

    def ranked_alternatives(self, table: CompiledRouteTable, current: int,
                            blocked: int, destination: int
                            ) -> List[Tuple[int, int]]:
        """Detour candidates from ``current`` as ``(neighbor, action)``.

        The distance-layer deflection rule shared by the simulator's
        detour hook and the cluster engine's liveness-checked table
        walk: every neighbor of ``current`` except itself and the
        ``blocked`` next hop, ranked by the table's distance-to-
        ``destination`` byte (ties by packed id), unreachable neighbors
        dropped.  All coordinates are packed; the paired action byte is
        the shift that moves ``current`` onto the neighbor, so callers
        can extend a path, not just pick an address.
        """
        space = self.space
        d = space.d
        dest_base = destination * space.order
        distances = table.distances
        actions_of: Dict[int, int] = {}
        for action in range(d if table.directed else 2 * d):
            nbr = space.apply_action(current, action)
            if nbr != current and nbr != blocked and nbr not in actions_of:
                actions_of[nbr] = action
        return sorted(
            ((nbr, action) for nbr, action in actions_of.items()
             if distances[dest_base + nbr] != ACTION_UNREACHABLE),
            key=lambda pair: (distances[dest_base + pair[0]], pair[0]),
        )

    def _detour_table(self, simulator, address: WordTuple,
                      blocked: WordTuple, message: Message
                      ) -> Optional[WordTuple]:
        space = self.space
        table = message.route_table
        current = space.pack(address)
        blocked_packed = space.pack(blocked)
        dest_base = message.packed_dest_base
        ranked = self.ranked_alternatives(
            table, current, blocked_packed, dest_base // space.order)
        for nbr, _action in ranked[:self.max_alternatives]:
            neighbor_address = space.unpack(nbr)
            if self._distrusts(simulator, address, neighbor_address) or \
                    simulator.is_link_failed(address, neighbor_address):
                continue  # adjacent liveness / the site's detected view
            message.packed_current = nbr
            message.detours_used += 1
            return neighbor_address
        return None

    # -- path mode: disjoint-family alternates --------------------------

    def _detour_path(self, simulator, address: WordTuple,
                     blocked: WordTuple, message: Message
                     ) -> Optional[WordTuple]:
        destination = message.destination
        if address == destination:  # pragma: no cover - defensive
            return None
        family = self._family(simulator.graph, address, destination)
        considered = 0
        for path in family:
            if considered >= self.max_alternatives:
                break
            next_hop = path[1]
            if next_hop == blocked:
                continue  # the primary we already know is down
            considered += 1
            if self._distrusts(simulator, address, next_hop) or \
                    simulator.is_link_failed(address, next_hop):
                continue
            if message.hop_router is None:
                # Planned mode: splice the alternate's remaining steps in.
                message.routing_path = vertex_path_to_steps(
                    path, simulator.d)[1:]
            # Stateless mode needs no splice: the next site re-plans.
            message.detours_used += 1
            return next_hop
        return None

    def _family(self, graph, source: WordTuple,
                destination: WordTuple) -> List[List[WordTuple]]:
        """The (cached) healthy-topology disjoint path family."""
        key = (source, destination)
        family = self._families.get(key)
        if family is None:
            family = vertex_disjoint_paths(
                graph, source, destination,
                max_paths=self.max_alternatives + 1,
            )
            if len(self._families) >= self._family_cache_size:
                self._families.pop(next(iter(self._families)))
            self._families[key] = family
        return family
