"""Reliable delivery over the (lossy) de Bruijn network: ACKs + retransmit.

The paper's message format reserves a control-code field; this module
puts it to work as a minimal stop-and-wait transport on top of the
datagram simulator:

* every DATA message carries a transfer id in its payload;
* the receiving site answers with an ACK routed back to the source;
* the sender re-transmits any transfer whose ACK has not arrived in
  time, up to ``max_attempts`` tries, waiting ``timeout *
  backoff_factor**(attempt-1)`` between tries (optionally jittered) —
  under chaos-engine churn (E19) exponential backoff stops a down
  receiver from eating every attempt while the outage lasts.

Losses come from the simulator's fault model (failed sites/links and
Bernoulli link loss drop messages).  With rerouting enabled, the first
retransmission after the routing layer converges normally succeeds; the
tests and the E7/E19 experiments measure exactly that.

The transport installs its delivery hook with
:meth:`Simulator.add_deliver_hook`, so it composes with tracing,
broadcast relays, or other protocols sharing the simulator — each layer
ignores payloads it does not recognise.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.word import WordTuple
from repro.exceptions import SimulationError
from repro.network.message import ControlCode, Message
from repro.network.router import Router
from repro.network.simulator import Simulator

_transfer_ids = itertools.count(1)


@dataclass
class Transfer:
    """One reliable send and its delivery state."""

    transfer_id: int
    source: WordTuple
    destination: WordTuple
    payload: object
    attempts: int = 0
    acked_at: Optional[float] = None
    data_delivered_at: Optional[float] = None
    gave_up: bool = False
    #: When each DATA copy left the source (one entry per attempt); the
    #: gaps between entries are the realised backoff schedule.
    attempt_times: List[float] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        """True once the source has the ACK in hand."""
        return self.acked_at is not None


@dataclass
class TransportStats:
    """Aggregate outcome of a reliable session."""

    transfers: List[Transfer] = field(default_factory=list)
    data_sent: int = 0
    acks_sent: int = 0
    #: DATA copies that arrived for an already-delivered transfer: each
    #: was re-ACKed (stop-and-wait must) but *not* handed to the
    #: application again — exactly-once delivery over at-least-once
    #: transmission.
    duplicates_suppressed: int = 0

    @property
    def completed(self) -> int:
        return sum(1 for t in self.transfers if t.completed)

    @property
    def abandoned(self) -> int:
        return sum(1 for t in self.transfers if t.gave_up)

    def retransmissions(self) -> int:
        """Total extra DATA copies beyond first attempts."""
        return sum(max(t.attempts - 1, 0) for t in self.transfers)

    def mean_completion_time(self) -> float:
        """Mean time from first send to ACK receipt."""
        values = [t.acked_at for t in self.transfers if t.acked_at is not None]
        return sum(values) / len(values) if values else 0.0


class ReliableTransport:
    """Stop-and-wait acknowledgement protocol over a :class:`Simulator`.

    Drive it with :meth:`send` calls, then :meth:`run`; the transport
    schedules its own retransmission checks through the simulator clock.

    ``backoff_factor`` multiplies the wait before each successive
    retransmission (1.0, the default, keeps the classic fixed-timeout
    behaviour); ``jitter`` widens each wait by a uniform random factor
    in ``[0, jitter]`` drawn from a seeded stream (reproducible), which
    de-synchronises retransmission storms when many transfers share a
    failed region; ``max_backoff`` caps a single wait.

    ``on_payload`` is the application hook: called exactly once per
    transfer — ``on_payload(transfer_id, payload, destination)`` — the
    first time its DATA arrives.  Retransmitted copies that land after
    the first are re-ACKed (the sender may have missed the earlier ACK)
    but never re-delivered; they are counted in
    ``stats.duplicates_suppressed``.
    """

    def __init__(
        self,
        simulator: Simulator,
        router: Router,
        timeout: float = 32.0,
        max_attempts: int = 4,
        backoff_factor: float = 1.0,
        jitter: float = 0.0,
        max_backoff: Optional[float] = None,
        seed: str = "reliable",
        on_payload: Optional[Callable[[int, object, WordTuple], None]] = None,
    ) -> None:
        if timeout <= 0 or max_attempts < 1:
            raise SimulationError("need a positive timeout and at least one attempt")
        if backoff_factor < 1.0:
            raise SimulationError("backoff_factor must be >= 1.0")
        if jitter < 0:
            raise SimulationError("jitter must be >= 0")
        self.simulator = simulator
        self.router = router
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.backoff_factor = backoff_factor
        self.jitter = jitter
        self.max_backoff = max_backoff
        self._jitter_rng = random.Random(f"{seed}:jitter")
        self.stats = TransportStats()
        self.on_payload = on_payload
        self._pending: Dict[int, Transfer] = {}
        #: Transfer ids whose DATA already reached the application once;
        #: survives ACK completion so late retransmitted copies are
        #: still recognised as duplicates.
        self._delivered_ids: Set[int] = set()
        #: Min-heap of (due_time, transfer_id) retransmission checks.
        #: Entries for already-acked transfers go stale in place and are
        #: discarded on pop — O(log n) per check instead of the former
        #: sort-and-pop(0) full rescan.
        self._retry_heap: List[Tuple[float, int]] = []
        simulator.add_deliver_hook(self._on_deliver)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(self, source: WordTuple, destination: WordTuple,
             payload: object = None, at: float = 0.0) -> Transfer:
        """Start a reliable transfer; returns its tracking object."""
        transfer = Transfer(next(_transfer_ids), source, destination, payload)
        self.stats.transfers.append(transfer)
        self._pending[transfer.transfer_id] = transfer
        self._transmit(transfer, at)
        return transfer

    def _backoff_delay(self, attempt: int) -> float:
        """The wait after the ``attempt``-th DATA copy (1-based)."""
        delay = self.timeout * self.backoff_factor ** (attempt - 1)
        if self.max_backoff is not None and delay > self.max_backoff:
            delay = self.max_backoff
        if self.jitter:
            delay *= 1.0 + self.jitter * self._jitter_rng.random()
        return delay

    def _transmit(self, transfer: Transfer, at: float) -> None:
        transfer.attempts += 1
        transfer.attempt_times.append(at)
        self.stats.data_sent += 1
        if transfer.attempts > 1:
            self.simulator.stats.backoff_retries += 1
        self.simulator.send(
            transfer.source,
            transfer.destination,
            self.router,
            at=at,
            payload=("DATA", transfer.transfer_id, transfer.payload),
            control=ControlCode.DATA,
        )
        heappush(self._retry_heap,
                 (at + self._backoff_delay(transfer.attempts),
                  transfer.transfer_id))

    # ------------------------------------------------------------------
    # Delivery handling
    # ------------------------------------------------------------------

    def _on_deliver(self, message: Message, simulator: Simulator) -> None:
        payload = message.payload
        if not isinstance(payload, tuple) or len(payload) != 3:
            return  # unrelated traffic sharing the simulator
        kind, transfer_id, body = payload
        if kind == "DATA":
            transfer = self._pending.get(transfer_id)
            if transfer is not None and transfer.data_delivered_at is None:
                transfer.data_delivered_at = simulator.now
            if transfer_id in self._delivered_ids:
                # A retransmitted copy of something already handed to
                # the application: suppress the re-delivery, keep the
                # re-ACK below (the sender evidently missed our ACK).
                self.stats.duplicates_suppressed += 1
            else:
                self._delivered_ids.add(transfer_id)
                if self.on_payload is not None:
                    self.on_payload(transfer_id, body, message.destination)
            # Always acknowledge (duplicates re-ACK, as stop-and-wait must).
            self.stats.acks_sent += 1
            simulator.send(
                message.destination,
                message.source,
                self.router,
                at=simulator.now,
                payload=("ACK", transfer_id, None),
                control=ControlCode.ACK,
            )
        elif kind == "ACK":
            transfer = self._pending.pop(transfer_id, None)
            if transfer is not None:
                transfer.acked_at = simulator.now

    # ------------------------------------------------------------------
    # Driving the clock
    # ------------------------------------------------------------------

    def run(self) -> TransportStats:
        """Interleave simulation with timeout checks, in time order.

        The simulator is advanced only up to the next pending timeout, so
        an impatient timeout genuinely fires while the original copy (or
        its ACK) is still in flight — exactly stop-and-wait's behaviour.
        Checks whose transfer was acknowledged meanwhile are popped and
        discarded without advancing the clock.
        """
        heap = self._retry_heap
        while heap or self.simulator.queue:
            if not heap:
                self.simulator.run()
                continue
            due_time, transfer_id = heap[0]
            if transfer_id not in self._pending:
                heappop(heap)  # stale: acked (or abandoned) already
                continue
            heappop(heap)
            self.simulator.run(until=due_time)
            transfer = self._pending.get(transfer_id)
            if transfer is None:
                continue  # acknowledged while we advanced the clock
            if transfer.attempts >= self.max_attempts:
                transfer.gave_up = True
                self._pending.pop(transfer_id, None)
                continue
            self._transmit(transfer, max(due_time, self.simulator.now))
        return self.stats
