"""Reliable delivery over the (lossy) de Bruijn network: ACKs + retransmit.

The paper's message format reserves a control-code field; this module
puts it to work as a minimal stop-and-wait transport on top of the
datagram simulator:

* every DATA message carries a transfer id in its payload;
* the receiving site answers with an ACK routed back to the source;
* the sender re-transmits any transfer whose ACK has not arrived within
  ``timeout`` cycles, up to ``max_attempts`` tries.

Losses come from the simulator's fault model (failed sites or links drop
messages).  With rerouting enabled, the first retransmission after the
routing layer converges normally succeeds; the tests and the E7 extension
measure exactly that.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.word import WordTuple
from repro.exceptions import SimulationError
from repro.network.message import ControlCode, Message
from repro.network.router import Router
from repro.network.simulator import Simulator

_transfer_ids = itertools.count(1)


@dataclass
class Transfer:
    """One reliable send and its delivery state."""

    transfer_id: int
    source: WordTuple
    destination: WordTuple
    payload: object
    attempts: int = 0
    acked_at: Optional[float] = None
    data_delivered_at: Optional[float] = None
    gave_up: bool = False

    @property
    def completed(self) -> bool:
        """True once the source has the ACK in hand."""
        return self.acked_at is not None


@dataclass
class TransportStats:
    """Aggregate outcome of a reliable session."""

    transfers: List[Transfer] = field(default_factory=list)
    data_sent: int = 0
    acks_sent: int = 0

    @property
    def completed(self) -> int:
        return sum(1 for t in self.transfers if t.completed)

    @property
    def abandoned(self) -> int:
        return sum(1 for t in self.transfers if t.gave_up)

    def retransmissions(self) -> int:
        """Total extra DATA copies beyond first attempts."""
        return sum(max(t.attempts - 1, 0) for t in self.transfers)

    def mean_completion_time(self) -> float:
        """Mean time from first send to ACK receipt."""
        values = [t.acked_at for t in self.transfers if t.acked_at is not None]
        return sum(values) / len(values) if values else 0.0


class ReliableTransport:
    """Stop-and-wait acknowledgement protocol over a :class:`Simulator`.

    Drive it with :meth:`send` calls, then :meth:`run`; the transport
    schedules its own retransmission checks through the simulator clock.
    """

    def __init__(
        self,
        simulator: Simulator,
        router: Router,
        timeout: float = 32.0,
        max_attempts: int = 4,
    ) -> None:
        if timeout <= 0 or max_attempts < 1:
            raise SimulationError("need a positive timeout and at least one attempt")
        self.simulator = simulator
        self.router = router
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.stats = TransportStats()
        self._pending: Dict[int, Transfer] = {}
        self._retry_checks: List[Tuple[float, int]] = []
        previous_hook = simulator.on_deliver
        if previous_hook is not None:
            raise SimulationError("simulator already has a delivery hook installed")
        simulator.on_deliver = self._on_deliver

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(self, source: WordTuple, destination: WordTuple,
             payload: object = None, at: float = 0.0) -> Transfer:
        """Start a reliable transfer; returns its tracking object."""
        transfer = Transfer(next(_transfer_ids), source, destination, payload)
        self.stats.transfers.append(transfer)
        self._pending[transfer.transfer_id] = transfer
        self._transmit(transfer, at)
        return transfer

    def _transmit(self, transfer: Transfer, at: float) -> None:
        transfer.attempts += 1
        self.stats.data_sent += 1
        self.simulator.send(
            transfer.source,
            transfer.destination,
            self.router,
            at=at,
            payload=("DATA", transfer.transfer_id, transfer.payload),
            control=ControlCode.DATA,
        )
        self._retry_checks.append((at + self.timeout, transfer.transfer_id))

    # ------------------------------------------------------------------
    # Delivery handling
    # ------------------------------------------------------------------

    def _on_deliver(self, message: Message, simulator: Simulator) -> None:
        payload = message.payload
        if not isinstance(payload, tuple) or len(payload) != 3:
            return  # unrelated traffic sharing the simulator
        kind, transfer_id, body = payload
        if kind == "DATA":
            transfer = self._pending.get(transfer_id)
            if transfer is not None and transfer.data_delivered_at is None:
                transfer.data_delivered_at = simulator.now
            # Always acknowledge (duplicates re-ACK, as stop-and-wait must).
            self.stats.acks_sent += 1
            simulator.send(
                message.destination,
                message.source,
                self.router,
                at=simulator.now,
                payload=("ACK", transfer_id, None),
                control=ControlCode.ACK,
            )
        elif kind == "ACK":
            transfer = self._pending.pop(transfer_id, None)
            if transfer is not None:
                transfer.acked_at = simulator.now

    # ------------------------------------------------------------------
    # Driving the clock
    # ------------------------------------------------------------------

    def run(self) -> TransportStats:
        """Interleave simulation with timeout checks, in time order.

        The simulator is advanced only up to the next pending timeout, so
        an impatient timeout genuinely fires while the original copy (or
        its ACK) is still in flight — exactly stop-and-wait's behaviour.
        """
        while self._retry_checks or self.simulator.queue:
            if not self._retry_checks:
                self.simulator.run()
                continue
            self._retry_checks.sort()
            due_time, transfer_id = self._retry_checks.pop(0)
            self.simulator.run(until=due_time)
            transfer = self._pending.get(transfer_id)
            if transfer is None:
                continue  # already acknowledged
            if transfer.attempts >= self.max_attempts:
                transfer.gave_up = True
                self._pending.pop(transfer_id, None)
                continue
            self._transmit(transfer, max(due_time, self.simulator.now))
        return self.stats
