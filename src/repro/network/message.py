"""The paper's five-field message and its wire encoding (Section 3).

"When a message is generated, it is composed of five fields: control code,
source address, destination address, routing path, and the message
content."  The routing-path field is the list of ``(a_i, b_i)`` pairs that
:mod:`repro.core.routing` produces; forwarding sites pop pairs off the
front (see :mod:`repro.network.node`).

The wire format is a compact byte encoding used by the codec round-trip
tests and the protocol example; the simulator itself passes
:class:`Message` objects around directly.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.routing import Direction, Path, RoutingStep
from repro.core.word import WordTuple
from repro.exceptions import WirePathError

#: Wire byte marking a wildcard digit (the paper's ``*``).
WILDCARD_BYTE = 0xFF

_message_ids = itertools.count(1)


class ControlCode(enum.IntEnum):
    """The message's control-code field."""

    DATA = 0  #: ordinary payload delivery
    ACK = 1  #: delivery acknowledgement
    PING = 2  #: liveness probe (used by the fault-tolerance experiment)
    BROADCAST = 3  #: one hop of a tree broadcast


@dataclass
class Message:
    """One in-flight message plus simulator bookkeeping.

    The first five attributes are the paper's five fields; the rest record
    the journey for the statistics module (injection/delivery times, the
    sequence of sites visited, and the number of wildcard digits resolved
    en route).
    """

    control: ControlCode
    source: WordTuple
    destination: WordTuple
    routing_path: Path
    payload: object = None

    message_id: int = field(default_factory=lambda: next(_message_ids))
    injected_at: float = 0.0
    delivered_at: Optional[float] = None
    trace: List[WordTuple] = field(default_factory=list)
    wildcards_resolved: int = 0
    #: Hop-by-hop mode: when set, the routing-path field stays empty and
    #: every site asks this router for one locally computed step.
    hop_router: Optional[object] = None
    #: Compiled-table mode (see :mod:`repro.core.tables`): the routing
    #: path stays empty and every hop is one O(1) action-byte lookup in
    #: this table.  ``packed_current`` tracks the packed address of the
    #: site the message sits at; ``packed_dest_base`` is the precomputed
    #: row offset ``pack(destination) * N`` into the flat table.
    route_table: Optional[object] = None
    packed_current: int = -1
    packed_dest_base: int = -1
    #: Local detours taken so far (see repro.network.resilience); the
    #: detour policy's budget caps this to rule out deflection livelock.
    detours_used: int = 0

    @property
    def hop_count(self) -> int:
        """Hops taken so far (trace length minus the source entry)."""
        return max(len(self.trace) - 1, 0)

    @property
    def latency(self) -> Optional[float]:
        """End-to-end latency, or None while still in flight."""
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.injected_at

    @property
    def remaining_hops(self) -> int:
        """Routing-path pairs not yet consumed."""
        return len(self.routing_path)


def encode_word(word: WordTuple) -> bytes:
    """One byte per digit; digits must fit in 0..254."""
    if any(not 0 <= digit < WILDCARD_BYTE for digit in word):
        raise WirePathError(f"digits of {word!r} do not fit the wire format")
    return bytes(word)


def decode_word(blob: bytes) -> WordTuple:
    """Inverse of :func:`encode_word`."""
    return tuple(blob)


def encode_path(path: Path) -> bytes:
    """Two bytes per step: shift type, then digit (0xFF for ``*``)."""
    out = bytearray()
    for step in path:
        out.append(int(step.direction))
        if step.digit is None:
            out.append(WILDCARD_BYTE)
        else:
            if not 0 <= step.digit < WILDCARD_BYTE:
                raise WirePathError(f"digit {step.digit!r} does not fit the wire format")
            out.append(step.digit)
    return bytes(out)


def decode_path(blob: bytes) -> Path:
    """Inverse of :func:`encode_path`."""
    if len(blob) % 2 != 0:
        raise WirePathError("routing-path field has odd length")
    steps: Path = []
    for i in range(0, len(blob), 2):
        type_byte, digit_byte = blob[i], blob[i + 1]
        if type_byte not in (0, 1):
            raise WirePathError(f"bad shift-type byte {type_byte}")
        digit = None if digit_byte == WILDCARD_BYTE else digit_byte
        steps.append(RoutingStep(Direction(type_byte), digit))
    return steps


def encode_witness(witness) -> bytes:
    """Constant-size routing header: the Theorem-2 witness in 4 bytes.

    Because Algorithm 2's whole path is a function of ``(case, i, j, θ)``
    plus the destination address already present in the message, a source
    can ship those four small integers instead of the O(k) step list —
    any site can expand them with
    :func:`repro.core.routing.path_from_witness`.  Supports k <= 255.
    """
    cases = {"trivial": 0, "l": 1, "r": 2}
    for value in (witness.i, witness.j, witness.theta):
        if not 0 <= value <= 0xFF:
            raise WirePathError("witness indices exceed the 1-byte wire format")
    return bytes([cases[witness.case], witness.i, witness.j, witness.theta])


def decode_witness(blob: bytes):
    """Inverse of :func:`encode_witness`."""
    from repro.core.distance import UndirectedWitness

    if len(blob) != 4:
        raise WirePathError("witness header must be exactly 4 bytes")
    cases = {0: "trivial", 1: "l", 2: "r"}
    if blob[0] not in cases:
        raise WirePathError(f"bad witness case byte {blob[0]}")
    case = cases[blob[0]]
    i, j, theta = blob[1], blob[2], blob[3]
    # The distance is recomputable from the indices; carry 0 as a
    # placeholder and let the expander ignore it.
    return UndirectedWitness(0, case, i, j, theta)


def encode_message(message: Message) -> bytes:
    """Serialise the five fields (payload must be bytes or str or None)."""
    payload = message.payload
    if payload is None:
        body = b""
    elif isinstance(payload, bytes):
        body = payload
    elif isinstance(payload, str):
        body = payload.encode("utf-8")
    else:
        raise WirePathError("wire payloads must be bytes, str or None")
    k = len(message.source)
    path_blob = encode_path(message.routing_path)
    header = bytes([int(message.control), k, len(path_blob) // 2])
    return header + encode_word(message.source) + encode_word(message.destination) + path_blob + body


def decode_message(blob: bytes) -> Tuple[ControlCode, WordTuple, WordTuple, Path, bytes]:
    """Inverse of :func:`encode_message`; returns the five fields."""
    if len(blob) < 3:
        raise WirePathError("message too short for its header")
    control = ControlCode(blob[0])
    k = blob[1]
    n_steps = blob[2]
    need = 3 + 2 * k + 2 * n_steps
    if len(blob) < need:
        raise WirePathError("message truncated")
    source = decode_word(blob[3 : 3 + k])
    destination = decode_word(blob[3 + k : 3 + 2 * k])
    path = decode_path(blob[3 + 2 * k : need])
    return control, source, destination, path, blob[need:]
