"""Routing strategies for the DN(d, k) simulator.

A router turns a (source, destination) pair into the routing-path field of
a message — the list of ``(a_i, b_i)`` pairs of paper Section 3.  The
strategies span the design space the paper discusses:

* :class:`UnidirectionalOptimalRouter` — Algorithm 1 (O(k), left shifts only).
* :class:`BidirectionalOptimalRouter` — Algorithm 2 / Algorithm 4 (method
  selectable), optionally emitting wildcard ``*`` digits for load balance.
* :class:`TrivialRouter` — the always-k left-shift diameter path the paper
  uses to prove the diameter bound; the natural strawman baseline.
* :class:`TableDrivenRouter` — classical BFS next-hop tables: shortest
  paths without any address arithmetic, at O(N) memory per destination.
  This is what the paper's O(k) algorithms render unnecessary.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.distance import Method
from repro.core.routing import (
    Direction,
    Path,
    RouteCache,
    RoutingStep,
    shortest_path_undirected,
    shortest_path_unidirectional,
)
from repro.core.word import WordTuple, left_shift, right_shift
from repro.exceptions import RoutingError
from repro.graphs.debruijn import DeBruijnGraph
from repro.graphs.traversal import next_hop_table


class Router:
    """Strategy interface: plan the routing-path field for one message."""

    #: Human-readable name used in bench tables.
    name = "router"

    #: When true the message carries only the destination address and every
    #: site re-computes the next hop locally (hop-by-hop routing); ``plan``
    #: is then unused by the simulator.
    stateless = False

    def plan(self, source: WordTuple, destination: WordTuple) -> Path:
        """Return the routing path; must land exactly on ``destination``."""
        raise NotImplementedError

    def next_hop(self, current: WordTuple, destination: WordTuple,
                 cost_fn=None) -> RoutingStep:
        """One locally-computed step (stateless mode); default: re-plan.

        ``cost_fn`` (neighbor -> cost) carries the forwarding site's local
        link state; the base implementation ignores it.
        """
        path = self.plan(current, destination)
        if not path:
            raise RoutingError(f"already at {destination!r}; no hop to take")
        return path[0]

    def memory_cells(self) -> int:
        """State size held by the router (0 for address-computable ones)."""
        return 0


class UnidirectionalOptimalRouter(Router):
    """Algorithm 1: shortest paths in the uni-directional network."""

    name = "optimal-unidirectional"

    def plan(self, source: WordTuple, destination: WordTuple) -> Path:
        """Algorithm 1: left shifts past the maximal overlap."""
        return shortest_path_unidirectional(source, destination)


class BidirectionalOptimalRouter(Router):
    """Algorithm 2 (``method='matching'``) or 4 (``method='suffix_tree'``).

    ``use_wildcards`` keeps the paper's ``*`` digits in the path so that
    forwarding sites may pick any neighbor of the requested type; the
    simulator resolves them against instantaneous link queues.

    Planning is memoized through a bounded :class:`RouteCache` (planning
    is deterministic per (source, destination, method, use_wildcards), so
    steady-state traffic with repeated OD pairs skips the witness
    computation entirely).  ``cache_size=0`` disables caching — the
    uncached baseline the throughput bench measures against.
    """

    def __init__(
        self,
        method: Method = "auto",
        use_wildcards: bool = True,
        cache_size: int = 4096,
    ) -> None:
        self.method = method
        self.use_wildcards = use_wildcards
        self.cache = RouteCache(cache_size) if cache_size > 0 else None
        self.name = f"optimal-bidirectional[{method}]"

    def plan(self, source: WordTuple, destination: WordTuple) -> Path:
        """Algorithm 2/4 route with optional wildcard digits."""
        cache = self.cache
        if cache is not None:
            key = (source, destination, False, str(self.method), self.use_wildcards)
            cached = cache.get(key)
            if cached is not None:
                return cached
        path = shortest_path_undirected(
            source, destination, method=self.method, use_wildcards=self.use_wildcards
        )
        if cache is not None:
            cache.put(key, path)
        return path

    def memory_cells(self) -> int:
        """Cached path entries currently held (bounded by ``cache_size``)."""
        return len(self.cache) if self.cache is not None else 0


class RandomMinimalRouter(Router):
    """A uniformly random shortest path per message.

    The natural continuation of the paper's wildcard remark: where
    Algorithm 2 leaves only the *arbitrary* digits free, this router
    randomises over the entire shortest-path DAG, decorrelating the routes
    of repeated (source, destination) pairs.  Costs more planning time
    (path counting) — the load-balance payoff is measured in E6.
    """

    def __init__(self, d: int, seed: int = 0) -> None:
        import random as _random

        from repro.core.paths import random_shortest_path

        self.d = d
        self._rng = _random.Random(seed)
        self._sample = random_shortest_path
        self.name = "random-minimal"

    def plan(self, source: WordTuple, destination: WordTuple) -> Path:
        """A fresh uniform sample from the shortest-path DAG."""
        return self._sample(source, destination, self.d, self._rng)


class TrivialRouter(Router):
    """The diameter path: k left shifts spelling the destination.

    Valid in both network orientations; never shorter than Algorithm 1/2
    output, which is exactly what the benches quantify.
    """

    name = "trivial"

    def plan(self, source: WordTuple, destination: WordTuple) -> Path:
        """The diameter path: k left shifts spelling the destination."""
        if source == destination:
            return []
        return [RoutingStep(Direction.LEFT, digit) for digit in destination]


class TableDrivenRouter(Router):
    """BFS next-hop tables, built lazily per destination and cached.

    Produces shortest paths (it is the baseline oracle in motion) but costs
    O(N) memory per destination — :meth:`memory_cells` exposes the running
    total so benches can report the footprint next to the O(1) per-pair
    cost of the paper's routers.
    """

    def __init__(self, graph: DeBruijnGraph) -> None:
        self.graph = graph
        self.name = f"table-driven[{'uni' if graph.directed else 'bi'}]"
        self._tables: Dict[WordTuple, Dict[WordTuple, WordTuple]] = {}

    def _table_for(self, destination: WordTuple) -> Dict[WordTuple, WordTuple]:
        table = self._tables.get(destination)
        if table is None:
            table = next_hop_table(self.graph, destination)
            self._tables[destination] = table
        return table

    def plan(self, source: WordTuple, destination: WordTuple) -> Path:
        """Follow the cached BFS next-hop table to the destination."""
        table = self._table_for(destination)
        steps: Path = []
        current = source
        limit = self.graph.order + 1
        while current != destination:
            nxt = table.get(current)
            if nxt is None:
                raise RoutingError(f"table has no route from {current!r} to {destination!r}")
            steps.append(step_between(current, nxt, self.graph.d))
            current = nxt
            if len(steps) > limit:  # pragma: no cover - defensive
                raise RoutingError("next-hop table contains a cycle")
        return steps

    def memory_cells(self) -> int:
        """Total next-hop entries cached so far (O(N) per destination)."""
        return sum(len(table) for table in self._tables.values())


class StatelessRouter(Router):
    """Hop-by-hop routing: messages carry only the destination address.

    This is the other deployment style the paper's O(k) algorithms make
    viable: instead of the source writing the whole `(a_i, b_i)` path into
    the message, *every* site runs the distance computation on (its own
    address, destination) and forwards along any distance-decreasing edge.
    Costs O(k)–O(k²) compute per hop instead of per message, buys a
    shorter header and — because each hop re-plans from current truth —
    free adaptivity when the topology changes underfoot.
    """

    def __init__(self, bidirectional: bool = True, method="auto") -> None:
        self.bidirectional = bidirectional
        self.method = method
        self.name = f"stateless[{'bi' if bidirectional else 'uni'}]"

    stateless = True

    def plan(self, source: WordTuple, destination: WordTuple) -> Path:
        """Full path (accounting/tests only; the simulator calls next_hop)."""
        # Only used for accounting/tests; the simulator calls next_hop.
        if self.bidirectional:
            return shortest_path_undirected(source, destination, method=self.method,
                                            use_wildcards=False)
        return shortest_path_unidirectional(source, destination)

    def next_hop(self, current: WordTuple, destination: WordTuple,
                 cost_fn=None) -> RoutingStep:
        """One distance-decreasing step computed at the current site."""
        path = self.plan(current, destination)
        if not path:
            raise RoutingError(f"already at {destination!r}; no hop to take")
        return path[0]


class AdaptiveGreedyRouter(Router):
    """Fully adaptive minimal routing: pick the *least-loaded* optimal move.

    Stronger than the paper's wildcard remark: at every hop the site
    enumerates **all** distance-decreasing neighbors (the shortest-path
    DAG's out-edges, not just the wildcard positions of one canonical
    path) and forwards on the one whose outgoing link is free soonest.
    Still provably minimal — every move decreases the distance by one —
    but maximally responsive to congestion.
    """

    stateless = True

    def __init__(self, d: int) -> None:
        self.d = d
        self.name = "adaptive-greedy"

    def plan(self, source: WordTuple, destination: WordTuple) -> Path:
        """Fallback full route (used only outside the simulator)."""
        return shortest_path_undirected(source, destination, use_wildcards=False)

    def next_hop(self, current: WordTuple, destination: WordTuple,
                 cost_fn=None) -> RoutingStep:
        """Cheapest distance-decreasing move according to local link state."""
        from repro.core.distance import undirected_distance
        from repro.core.paths import _optimal_moves

        remaining = undirected_distance(current, destination)
        if remaining == 0:
            raise RoutingError(f"already at {destination!r}; no hop to take")
        moves = _optimal_moves(current, destination, self.d, remaining)
        best = None
        best_cost = None
        for direction, digit, landing in moves:
            cost = cost_fn(landing) if cost_fn is not None else 0.0
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best = RoutingStep(direction, digit)
        assert best is not None  # remaining >= 1 guarantees a move exists
        return best


class ValiantRouter(Router):
    """Valiant's two-phase randomised routing: via a random intermediate.

    The classical cure for adversarial permutations: route every message
    first to a uniformly random site, then on to its destination.  Any
    fixed traffic pattern becomes two superimposed *uniform* patterns, so
    no permutation can concentrate load — at the price of up to doubling
    the path length.  Benchmark E12 measures the trade on the classical
    adversarial patterns.
    """

    def __init__(self, d: int, k: int, seed: int = 0,
                 base: Optional[Router] = None) -> None:
        import random as _random

        self.d = d
        self.k = k
        self._rng = _random.Random(seed)
        self.base = base if base is not None else BidirectionalOptimalRouter(
            use_wildcards=False)
        self.name = "valiant"

    def plan(self, source: WordTuple, destination: WordTuple) -> Path:
        """Concatenate optimal legs through a fresh random intermediate."""
        from repro.core.word import random_word

        intermediate = random_word(self.d, self.k, self._rng)
        return list(self.base.plan(source, intermediate)) + list(
            self.base.plan(intermediate, destination)
        )


def step_between(u: WordTuple, v: WordTuple, d: int) -> RoutingStep:
    """The routing step carrying ``u`` to its neighbor ``v``.

    Prefers the type-L encoding when both shift types produce ``v`` (which
    happens on the coincident edges of alternating words).
    """
    if v == left_shift(u, v[-1]):
        return RoutingStep(Direction.LEFT, v[-1])
    if v == right_shift(u, v[0]):
        return RoutingStep(Direction.RIGHT, v[0])
    raise RoutingError(f"{v!r} is not a de Bruijn neighbor of {u!r}")


def vertex_path_to_steps(path_vertices, d: int) -> Path:
    """Convert a BFS vertex sequence into routing steps."""
    steps: Path = []
    for u, v in zip(path_vertices, path_vertices[1:]):
        steps.append(step_between(u, v, d))
    return steps
