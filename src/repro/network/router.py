"""Routing strategies for the DN(d, k) simulator.

A router turns a (source, destination) pair into the routing-path field of
a message — the list of ``(a_i, b_i)`` pairs of paper Section 3.  The
strategies span the design space the paper discusses:

* :class:`UnidirectionalOptimalRouter` — Algorithm 1 (O(k), left shifts only).
* :class:`BidirectionalOptimalRouter` — Algorithm 2 / Algorithm 4 (method
  selectable), optionally emitting wildcard ``*`` digits for load balance.
* :class:`TrivialRouter` — the always-k left-shift diameter path the paper
  uses to prove the diameter bound; the natural strawman baseline.
* :class:`TableDrivenRouter` — compiled all-pairs next-hop tables
  (:mod:`repro.core.tables`): shortest paths at O(1) per hop from a
  byte-per-pair table, the amortised regime the paper's O(k) per-pair
  algorithms trade against (O(N²) bytes of state vs zero).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.distance import Method
from repro.core.routing import (
    Direction,
    Path,
    RouteCache,
    RoutingStep,
    shortest_path_undirected,
    shortest_path_unidirectional,
)
from repro.core.word import WordTuple, left_shift, right_shift
from repro.exceptions import RoutingError
from repro.graphs.debruijn import DeBruijnGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.tables import CompiledRouteTable


class Router:
    """Strategy interface: plan the routing-path field for one message."""

    #: Human-readable name used in bench tables.
    name = "router"

    #: When true the message carries only the destination address and every
    #: site re-computes the next hop locally (hop-by-hop routing); ``plan``
    #: is then unused by the simulator.
    stateless = False

    def plan(self, source: WordTuple, destination: WordTuple) -> Path:
        """Return the routing path; must land exactly on ``destination``."""
        raise NotImplementedError

    def next_hop(self, current: WordTuple, destination: WordTuple,
                 cost_fn=None) -> RoutingStep:
        """One locally-computed step (stateless mode); default: re-plan.

        ``cost_fn`` (neighbor -> cost) carries the forwarding site's local
        link state; the base implementation ignores it.
        """
        path = self.plan(current, destination)
        if not path:
            raise RoutingError(f"already at {destination!r}; no hop to take")
        return path[0]

    def memory_cells(self) -> int:
        """State size held by the router (0 for address-computable ones)."""
        return 0


class UnidirectionalOptimalRouter(Router):
    """Algorithm 1: shortest paths in the uni-directional network."""

    name = "optimal-unidirectional"

    def plan(self, source: WordTuple, destination: WordTuple) -> Path:
        """Algorithm 1: left shifts past the maximal overlap."""
        return shortest_path_unidirectional(source, destination)


class BidirectionalOptimalRouter(Router):
    """Algorithm 2 (``method='matching'``) or 4 (``method='suffix_tree'``).

    ``use_wildcards`` keeps the paper's ``*`` digits in the path so that
    forwarding sites may pick any neighbor of the requested type; the
    simulator resolves them against instantaneous link queues.

    Planning is memoized through a bounded :class:`RouteCache` (planning
    is deterministic per (source, destination, method, use_wildcards), so
    steady-state traffic with repeated OD pairs skips the witness
    computation entirely).  ``cache_size=0`` disables caching — the
    uncached baseline the throughput bench measures against.
    """

    def __init__(
        self,
        method: Method = "auto",
        use_wildcards: bool = True,
        cache_size: int = 4096,
    ) -> None:
        self.method = method
        self.use_wildcards = use_wildcards
        self.cache = RouteCache(cache_size) if cache_size > 0 else None
        self.name = f"optimal-bidirectional[{method}]"

    def plan(self, source: WordTuple, destination: WordTuple) -> Path:
        """Algorithm 2/4 route with optional wildcard digits."""
        cache = self.cache
        if cache is not None:
            key = (source, destination, False, str(self.method), self.use_wildcards)
            cached = cache.get(key)
            if cached is not None:
                return cached
        path = shortest_path_undirected(
            source, destination, method=self.method, use_wildcards=self.use_wildcards
        )
        if cache is not None:
            cache.put(key, path)
        return path

    def memory_cells(self) -> int:
        """Cached path entries currently held (bounded by ``cache_size``)."""
        return len(self.cache) if self.cache is not None else 0


class RandomMinimalRouter(Router):
    """A uniformly random shortest path per message.

    The natural continuation of the paper's wildcard remark: where
    Algorithm 2 leaves only the *arbitrary* digits free, this router
    randomises over the entire shortest-path DAG, decorrelating the routes
    of repeated (source, destination) pairs.  Costs more planning time
    (path counting) — the load-balance payoff is measured in E6.
    """

    def __init__(self, d: int, seed: int = 0) -> None:
        import random as _random

        from repro.core.paths import random_shortest_path

        self.d = d
        self._rng = _random.Random(seed)
        self._sample = random_shortest_path
        self.name = "random-minimal"

    def plan(self, source: WordTuple, destination: WordTuple) -> Path:
        """A fresh uniform sample from the shortest-path DAG."""
        return self._sample(source, destination, self.d, self._rng)


class TrivialRouter(Router):
    """The diameter path: k left shifts spelling the destination.

    Valid in both network orientations; never shorter than Algorithm 1/2
    output, which is exactly what the benches quantify.
    """

    name = "trivial"

    def plan(self, source: WordTuple, destination: WordTuple) -> Path:
        """The diameter path: k left shifts spelling the destination."""
        if source == destination:
            return []
        return [RoutingStep(Direction.LEFT, digit) for digit in destination]


class TableDrivenRouter(Router):
    """Compiled all-pairs next-hop tables (:class:`CompiledRouteTable`).

    The table-driven regime the paper's O(k) algorithms compete against,
    now taken seriously as a *production* option: the whole next-hop
    structure is compiled once (sharded multiprocess BFS over packed
    words) into one byte per (source, destination) pair, after which
    planning is a table walk and the simulator forwards in O(1) per hop
    without touching :meth:`plan` at all (see
    ``Simulator._handle_arrival``).  Pass ``table=`` to reuse a
    precompiled or mmap-loaded table across routers and runs.

    :meth:`memory_cells` reports the real compact footprint — 2 bytes
    per ordered pair (action + distance), counted in full as soon as the
    table exists, not the lazily-touched fraction.
    """

    def __init__(
        self,
        graph: Optional[DeBruijnGraph] = None,
        *,
        table: Optional["CompiledRouteTable"] = None,
        d: Optional[int] = None,
        k: Optional[int] = None,
        directed: bool = False,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        if table is not None:
            d, k, directed = table.d, table.k, table.directed
        elif graph is not None:
            d, k, directed = graph.d, graph.k, graph.directed
        elif d is None or k is None:
            raise RoutingError(
                "TableDrivenRouter needs a graph, a compiled table, or (d, k)"
            )
        self.graph = graph
        self.d = d
        self.k = k
        self.directed = directed
        self.name = f"table-driven[{'uni' if directed else 'bi'}]"
        self._table = table
        self._workers = workers
        self._chunk_size = chunk_size

    @property
    def compiled_table(self) -> "CompiledRouteTable":
        """The backing table, compiled on first use and then reused."""
        if self._table is None:
            from repro.core.tables import CompiledRouteTable

            self._table = CompiledRouteTable.compile(
                self.d, self.k, directed=self.directed,
                workers=self._workers, chunk_size=self._chunk_size,
            )
        return self._table

    def plan(self, source: WordTuple, destination: WordTuple) -> Path:
        """Walk the compiled table: one byte read per hop of the path."""
        return self.compiled_table.path(source, destination)

    def next_hop(self, current: WordTuple, destination: WordTuple,
                 cost_fn=None) -> RoutingStep:
        """One O(1) table lookup (ignores ``cost_fn``; paths are fixed)."""
        from repro.core.routing import step_from_action

        table = self.compiled_table
        space = table.space
        action = table.action(space.pack_checked(current),
                              space.pack_checked(destination))
        if action >= 2 * self.d:
            raise RoutingError(
                f"no forwarding action from {current!r} to {destination!r}"
            )
        return step_from_action(action, self.d)

    def memory_cells(self) -> int:
        """Byte cells of the compact table (2·N² once compiled, else 0)."""
        return self._table.memory_bytes() if self._table is not None else 0


class StatelessRouter(Router):
    """Hop-by-hop routing: messages carry only the destination address.

    This is the other deployment style the paper's O(k) algorithms make
    viable: instead of the source writing the whole `(a_i, b_i)` path into
    the message, *every* site runs the distance computation on (its own
    address, destination) and forwards along any distance-decreasing edge.
    Costs O(k)–O(k²) compute per hop instead of per message, buys a
    shorter header and — because each hop re-plans from current truth —
    free adaptivity when the topology changes underfoot.
    """

    def __init__(self, bidirectional: bool = True, method="auto") -> None:
        self.bidirectional = bidirectional
        self.method = method
        self.name = f"stateless[{'bi' if bidirectional else 'uni'}]"

    stateless = True

    def plan(self, source: WordTuple, destination: WordTuple) -> Path:
        """Full path (accounting/tests only; the simulator calls next_hop)."""
        # Only used for accounting/tests; the simulator calls next_hop.
        if self.bidirectional:
            return shortest_path_undirected(source, destination, method=self.method,
                                            use_wildcards=False)
        return shortest_path_unidirectional(source, destination)

    def next_hop(self, current: WordTuple, destination: WordTuple,
                 cost_fn=None) -> RoutingStep:
        """One distance-decreasing step computed at the current site."""
        path = self.plan(current, destination)
        if not path:
            raise RoutingError(f"already at {destination!r}; no hop to take")
        return path[0]


class AdaptiveGreedyRouter(Router):
    """Fully adaptive minimal routing: pick the *least-loaded* optimal move.

    Stronger than the paper's wildcard remark: at every hop the site
    enumerates **all** distance-decreasing neighbors (the shortest-path
    DAG's out-edges, not just the wildcard positions of one canonical
    path) and forwards on the one whose outgoing link is free soonest.
    Still provably minimal — every move decreases the distance by one —
    but maximally responsive to congestion.
    """

    stateless = True

    def __init__(self, d: int) -> None:
        self.d = d
        self.name = "adaptive-greedy"

    def plan(self, source: WordTuple, destination: WordTuple) -> Path:
        """Fallback full route (used only outside the simulator)."""
        return shortest_path_undirected(source, destination, use_wildcards=False)

    def next_hop(self, current: WordTuple, destination: WordTuple,
                 cost_fn=None) -> RoutingStep:
        """Cheapest distance-decreasing move according to local link state."""
        from repro.core.distance import undirected_distance
        from repro.core.paths import _optimal_moves

        remaining = undirected_distance(current, destination)
        if remaining == 0:
            raise RoutingError(f"already at {destination!r}; no hop to take")
        moves = _optimal_moves(current, destination, self.d, remaining)
        best = None
        best_cost = None
        for direction, digit, landing in moves:
            cost = cost_fn(landing) if cost_fn is not None else 0.0
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best = RoutingStep(direction, digit)
        assert best is not None  # remaining >= 1 guarantees a move exists
        return best


class ValiantRouter(Router):
    """Valiant's two-phase randomised routing: via a random intermediate.

    The classical cure for adversarial permutations: route every message
    first to a uniformly random site, then on to its destination.  Any
    fixed traffic pattern becomes two superimposed *uniform* patterns, so
    no permutation can concentrate load — at the price of up to doubling
    the path length.  Benchmark E12 measures the trade on the classical
    adversarial patterns.
    """

    def __init__(self, d: int, k: int, seed: int = 0,
                 base: Optional[Router] = None) -> None:
        import random as _random

        self.d = d
        self.k = k
        self._rng = _random.Random(seed)
        self.base = base if base is not None else BidirectionalOptimalRouter(
            use_wildcards=False)
        self.name = "valiant"

    def plan(self, source: WordTuple, destination: WordTuple) -> Path:
        """Concatenate optimal legs through a fresh random intermediate."""
        from repro.core.word import random_word

        intermediate = random_word(self.d, self.k, self._rng)
        return list(self.base.plan(source, intermediate)) + list(
            self.base.plan(intermediate, destination)
        )


def step_between(u: WordTuple, v: WordTuple, d: int) -> RoutingStep:
    """The routing step carrying ``u`` to its neighbor ``v``.

    Prefers the type-L encoding when both shift types produce ``v`` (which
    happens on the coincident edges of alternating words).
    """
    if v == left_shift(u, v[-1]):
        return RoutingStep(Direction.LEFT, v[-1])
    if v == right_shift(u, v[0]):
        return RoutingStep(Direction.RIGHT, v[0])
    raise RoutingError(f"{v!r} is not a de Bruijn neighbor of {u!r}")


def vertex_path_to_steps(path_vertices, d: int) -> Path:
    """Convert a BFS vertex sequence into routing steps."""
    steps: Path = []
    for u, v in zip(path_vertices, path_vertices[1:]):
        steps.append(step_between(u, v, d))
    return steps
