"""Uni-directional communication links with FIFO serialisation.

Each link carries one message per cycle (its *service time*) and delivers
after a propagation ``latency``.  Contention therefore shows up as queueing
delay, which is what the wildcard load-balancing experiment (E6) measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.core.word import WordTuple


@dataclass
class Link:
    """State of one directed link ``tail -> head``."""

    tail: WordTuple
    head: WordTuple
    latency: float = 1.0
    service_time: float = 1.0

    next_free: float = 0.0
    carried: int = 0
    total_queue_delay: float = 0.0

    @property
    def key(self) -> Tuple[WordTuple, WordTuple]:
        """Dictionary key of this link."""
        return self.tail, self.head

    def earliest_departure(self, now: float) -> float:
        """When a message offered at ``now`` would actually start crossing."""
        return max(now, self.next_free)

    def transmit(self, now: float) -> float:
        """Send one message at ``now``; returns its arrival time at ``head``.

        Updates the FIFO serialisation point and the load counters.
        """
        departure = self.earliest_departure(now)
        self.total_queue_delay += departure - now
        self.next_free = departure + self.service_time
        self.carried += 1
        return departure + self.latency

    @property
    def mean_queue_delay(self) -> float:
        """Average time messages waited for this link."""
        if self.carried == 0:
            return 0.0
        return self.total_queue_delay / self.carried
