"""Workload generators for the DN(d, k) simulation experiments (E6).

Each generator yields ``(time, source, destination)`` injection triples.
The patterns are the staples of interconnection-network evaluation:

* :func:`uniform_random` — every site injects Bernoulli(p) per cycle to a
  uniform random other site;
* :func:`permutation_traffic` — a fixed random permutation (every site
  talks to exactly one partner);
* :func:`hotspot` — a fraction of all traffic converges on one site;
* :func:`bit_reversal` / :func:`complement_traffic` — the classical
  adversarial address-transform patterns, adapted to d-ary words;
* :func:`all_pairs_once` — one message per ordered pair (the exact mean
  distance workload; used to match Figure 2 in simulation).
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Tuple

from repro.core.word import WordTuple, iter_words, random_word, validate_parameters

Injection = Tuple[float, WordTuple, WordTuple]


def uniform_random(
    d: int,
    k: int,
    cycles: int,
    injection_rate: float,
    rng: Optional[random.Random] = None,
) -> Iterator[Injection]:
    """Bernoulli(``injection_rate``) injections per site per cycle."""
    validate_parameters(d, k)
    generator = rng if rng is not None else random.Random()
    words = list(iter_words(d, k))
    for t in range(cycles):
        for source in words:
            if generator.random() < injection_rate:
                destination = words[generator.randrange(len(words))]
                if destination != source:
                    yield float(t), source, destination


def permutation_traffic(
    d: int,
    k: int,
    cycles: int,
    rng: Optional[random.Random] = None,
) -> Iterator[Injection]:
    """Each site sends once per cycle to its fixed random partner."""
    validate_parameters(d, k)
    generator = rng if rng is not None else random.Random()
    words = list(iter_words(d, k))
    partners = words[:]
    generator.shuffle(partners)
    for t in range(cycles):
        for source, destination in zip(words, partners):
            if source != destination:
                yield float(t), source, destination


def hotspot(
    d: int,
    k: int,
    cycles: int,
    injection_rate: float,
    hotspot_fraction: float = 0.5,
    target: Optional[WordTuple] = None,
    rng: Optional[random.Random] = None,
) -> Iterator[Injection]:
    """Uniform traffic with ``hotspot_fraction`` redirected to one site."""
    validate_parameters(d, k)
    generator = rng if rng is not None else random.Random()
    words = list(iter_words(d, k))
    hot = target if target is not None else words[-1]
    for t in range(cycles):
        for source in words:
            if generator.random() >= injection_rate:
                continue
            if generator.random() < hotspot_fraction:
                destination = hot
            else:
                destination = words[generator.randrange(len(words))]
            if destination != source:
                yield float(t), source, destination


def bit_reversal(d: int, k: int, cycles: int = 1) -> Iterator[Injection]:
    """Every site sends to its digit-reversed address, once per cycle."""
    validate_parameters(d, k)
    for t in range(cycles):
        for source in iter_words(d, k):
            destination = tuple(reversed(source))
            if destination != source:
                yield float(t), source, destination


def complement_traffic(d: int, k: int, cycles: int = 1) -> Iterator[Injection]:
    """Every site sends to its digit-wise complement ``d-1-x_i``."""
    validate_parameters(d, k)
    for t in range(cycles):
        for source in iter_words(d, k):
            destination = tuple(d - 1 - digit for digit in source)
            if destination != source:
                yield float(t), source, destination


def all_to_all(d: int, k: int, rounds: int = 1, spacing: float = 0.0) -> Iterator[Injection]:
    """Total exchange: every site sends to every other site, per round.

    The heaviest classical collective (N·(N−1) messages per round); used
    to probe aggregate bandwidth limits.  ``spacing`` staggers rounds.
    """
    validate_parameters(d, k)
    words = list(iter_words(d, k))
    for r in range(rounds):
        t = r * spacing
        for source in words:
            for destination in words:
                if source != destination:
                    yield t, source, destination


def all_pairs_once(d: int, k: int, spacing: float = 0.0) -> Iterator[Injection]:
    """One message per ordered pair of distinct sites.

    ``spacing`` > 0 staggers injections to keep contention negligible, so
    mean hop counts measure pure distance (the Figure-2 cross-check).
    """
    validate_parameters(d, k)
    t = 0.0
    for source in iter_words(d, k):
        for destination in iter_words(d, k):
            if source != destination:
                yield t, source, destination
                t += spacing


def save_workload(workload: Iterator[Injection], path: str) -> int:
    """Persist a workload as JSON lines; returns the number of injections.

    Makes experiment inputs reproducible artifacts: generate once, commit
    the file, replay with :func:`load_workload` anywhere.
    """
    import json

    count = 0
    with open(path, "w") as handle:
        for at, source, destination in workload:
            handle.write(json.dumps([at, list(source), list(destination)]) + "\n")
            count += 1
    return count


def load_workload(path: str) -> List[Injection]:
    """Inverse of :func:`save_workload`."""
    import json

    out: List[Injection] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            at, source, destination = json.loads(line)
            out.append((float(at), tuple(source), tuple(destination)))
    return out


def random_pairs(
    d: int,
    k: int,
    count: int,
    spacing: float = 0.0,
    rng: Optional[random.Random] = None,
) -> List[Injection]:
    """``count`` uniform random (source, destination) pairs, staggered."""
    validate_parameters(d, k)
    generator = rng if rng is not None else random.Random()
    out: List[Injection] = []
    t = 0.0
    while len(out) < count:
        source = random_word(d, k, generator)
        destination = random_word(d, k, generator)
        if source != destination:
            out.append((t, source, destination))
            t += spacing
    return out
