"""The forwarding rule of a DN(d, k) site (paper Section 3).

"When a site, say X, receives a message, it looks at the routing path
field.  If it is empty, then the message is destined for this site, and
the message is accepted.  If, however, the routing path field is not
empty, the site removes the first element (pair) (a, b) from the field and
transmits the message to the neighbor with address Z: Z = X^-(b) if a = 0,
Z = X^+(b) if a = 1."

Wildcard pairs ``(a, *)`` are resolved here: the site asks a cost callback
(supplied by the simulator, typically "when would that link be free?") for
each candidate digit and picks the cheapest, realising the paper's remark
that ``*`` lets traffic "be more or less balanced".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.core.routing import Direction, RoutingStep
from repro.core.word import WordTuple, left_shift, right_shift
from repro.exceptions import DeliveryError
from repro.network.message import Message

#: Cost oracle for wildcard resolution: (neighbor address) -> cost; lower
#: is better.  The simulator passes link-availability times.
CostFn = Callable[[WordTuple], float]


@dataclass
class Node:
    """One site of the network: an address plus delivery bookkeeping."""

    address: WordTuple
    d: int
    failed: bool = False
    delivered: List[Message] = field(default_factory=list)
    forwarded_count: int = 0

    def accept(self, message: Message, now: float) -> None:
        """Terminal delivery: the routing-path field is empty here."""
        if message.destination != self.address:
            raise DeliveryError(
                f"message {message.message_id} for {message.destination!r} "
                f"ended its path at {self.address!r}"
            )
        message.delivered_at = now
        self.delivered.append(message)

    def forward_target(
        self, step: RoutingStep, cost_fn: Optional[CostFn] = None
    ) -> Tuple[WordTuple, RoutingStep]:
        """Apply one routing pair; returns (next address, concrete step).

        Wildcards pick the digit whose target link is cheapest according to
        ``cost_fn`` (smallest digit on ties, and when no oracle is given).
        """
        shift = left_shift if step.direction == Direction.LEFT else right_shift
        if not step.is_wildcard:
            return shift(self.address, step.digit), step
        best_digit = 0
        best_cost = None
        for digit in range(self.d):
            candidate = shift(self.address, digit)
            cost = cost_fn(candidate) if cost_fn is not None else 0.0
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_digit = digit
        return shift(self.address, best_digit), step.resolved(best_digit)

    def process(
        self, message: Message, now: float, cost_fn: Optional[CostFn] = None
    ) -> Optional[Tuple[WordTuple, RoutingStep]]:
        """The paper's per-site rule: accept, or pop a pair and forward.

        Returns None on delivery, else the (next address, concrete step)
        the simulator should transmit on.
        """
        message.trace.append(self.address)
        path = message.routing_path
        if not path:
            self.accept(message, now)
            return None
        step = path.pop(0)
        digit = step.digit
        if digit is None:
            # Wildcard: delegate to the cost-aware resolution.
            target, concrete = self.forward_target(step, cost_fn)
            message.wildcards_resolved += 1
        else:
            # Concrete step: shift inline (the simulator's hottest path).
            address = self.address
            if step.direction is Direction.LEFT:
                target = address[1:] + (digit,)
            else:
                target = (digit,) + address[:-1]
            concrete = step
        self.forwarded_count += 1
        return target, concrete
