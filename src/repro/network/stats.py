"""Measurement collection for network simulations (experiment E6/E7).

Aggregates per-message latencies and hop counts, per-link loads, and drop
accounting, and turns them into the summary rows the benches print.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.word import WordTuple
from repro.network.message import Message


def percentile(values: List[float], q: float) -> float:
    """The q-th percentile (0..100) by linear interpolation; 0.0 if empty."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(ordered[low])
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def jain_fairness(values: List[float]) -> float:
    """Jain's fairness index of a load vector: 1.0 means perfectly even."""
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)


@dataclass
class SimulationStats:
    """Everything a finished simulation reports."""

    delivered: List[Message] = field(default_factory=list)
    dropped: List[Tuple[Message, str]] = field(default_factory=list)
    link_loads: Dict[Tuple[WordTuple, WordTuple], int] = field(default_factory=dict)
    link_queue_delays: Dict[Tuple[WordTuple, WordTuple], float] = field(default_factory=dict)
    rerouted: int = 0
    horizon: float = 0.0
    #: Route-planning cache counters (see repro.core.routing.RouteCache),
    #: filled in by run_workload when the router memoizes its plans.
    route_cache_hits: int = 0
    route_cache_misses: int = 0
    #: Compiled-table fast path (repro.core.tables): messages delivered
    #: through O(1) per-hop table lookups, and the footprint of the
    #: table(s) that served them.
    table_routed: int = 0
    table_bytes: int = 0
    #: Resilience counters (repro.network.resilience / chaos, E19):
    #: hops redirected by a local detour policy, incremental route-table
    #: repairs triggered by fault events, transport retransmissions sent
    #: through the backoff schedule, and messages lost in flight to
    #: Bernoulli link loss.
    detoured: int = 0
    table_repairs: int = 0
    backoff_retries: int = 0
    link_lost: int = 0
    #: Messages dropped by the simulator's TTL guard (a forwarding loop
    #: — stale-view detours, buggy stateless routers — hit the hop
    #: limit instead of livelocking the event queue).
    hop_limit_dropped: int = 0
    #: Distributed failure detection (repro.network.membership, E20):
    #: protocol packets sent (probes, acks, indirect requests) and their
    #: estimated wire bytes; confirm-dead verdicts issued against sites
    #: that were actually alive (false positives); outages that ended —
    #: or outlived the run — without any live site confirming them
    #: (false negatives); and, per *detected* outage, the lag from the
    #: failure instant to the first confirm-dead verdict anywhere.
    membership_messages: int = 0
    membership_bytes: int = 0
    false_positives: int = 0
    false_negatives: int = 0
    detection_latencies: List[float] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Message-level metrics
    # ------------------------------------------------------------------

    @property
    def delivered_count(self) -> int:
        return len(self.delivered)

    @property
    def dropped_count(self) -> int:
        return len(self.dropped)

    def latencies(self) -> List[float]:
        """End-to-end latencies of delivered messages."""
        return [m.latency for m in self.delivered if m.latency is not None]

    def hop_counts(self) -> List[int]:
        """Hop counts of delivered messages."""
        return [m.hop_count for m in self.delivered]

    def mean_latency(self) -> float:
        """Mean end-to-end latency of delivered messages."""
        values = self.latencies()
        return sum(values) / len(values) if values else 0.0

    def mean_hops(self) -> float:
        """Mean hop count of delivered messages."""
        values = self.hop_counts()
        return sum(values) / len(values) if values else 0.0

    def p95_latency(self) -> float:
        """95th-percentile latency."""
        return percentile(self.latencies(), 95.0)

    def max_latency(self) -> float:
        """Worst delivered latency."""
        values = self.latencies()
        return max(values) if values else 0.0

    def throughput(self) -> float:
        """Delivered messages per cycle over the simulated horizon."""
        if self.horizon <= 0:
            return 0.0
        return self.delivered_count / self.horizon

    # ------------------------------------------------------------------
    # Link-level metrics
    # ------------------------------------------------------------------

    def max_link_load(self) -> int:
        """Messages carried by the hottest link."""
        return max(self.link_loads.values()) if self.link_loads else 0

    def mean_link_load(self) -> float:
        """Mean messages per used link."""
        if not self.link_loads:
            return 0.0
        return sum(self.link_loads.values()) / len(self.link_loads)

    def load_fairness(self) -> float:
        """Jain index over the loads of links that carried anything."""
        return jain_fairness([float(v) for v in self.link_loads.values()])

    def mean_queue_delay(self) -> float:
        """Average queueing delay per forwarded message."""
        total_delay = sum(self.link_queue_delays.values())
        total_carried = sum(self.link_loads.values())
        if total_carried == 0:
            return 0.0
        return total_delay / total_carried

    # ------------------------------------------------------------------
    # Route-cache metrics
    # ------------------------------------------------------------------

    def route_cache_hit_rate(self) -> float:
        """Fraction of route plans served from the cache (0.0 when unused)."""
        total = self.route_cache_hits + self.route_cache_misses
        return self.route_cache_hits / total if total else 0.0

    # ------------------------------------------------------------------
    # Failure-detection metrics
    # ------------------------------------------------------------------

    def mean_detection_latency(self) -> float:
        """Mean failure-to-first-confirmation lag over detected outages."""
        values = self.detection_latencies
        return sum(values) / len(values) if values else 0.0

    def p95_detection_latency(self) -> float:
        """95th-percentile detection latency."""
        return percentile(self.detection_latencies, 95.0)

    # ------------------------------------------------------------------
    # Steady-state windows
    # ------------------------------------------------------------------

    def window(self, start: float, end: Optional[float] = None) -> "SimulationStats":
        """A copy restricted to messages *injected* within [start, end).

        The standard steady-state methodology: discard the warmup and the
        drain tail so latency statistics reflect equilibrium behaviour.
        Link-level counters cannot be attributed per window and are left
        empty in the copy.
        """
        upper = end if end is not None else float("inf")

        def inside(message: Message) -> bool:
            return start <= message.injected_at < upper

        trimmed = SimulationStats(
            delivered=[m for m in self.delivered if inside(m)],
            dropped=[(m, why) for m, why in self.dropped if inside(m)],
            rerouted=self.rerouted,
            horizon=(min(upper, self.horizon) - start) if self.horizon > start else 0.0,
            route_cache_hits=self.route_cache_hits,
            route_cache_misses=self.route_cache_misses,
            table_routed=self.table_routed,
            table_bytes=self.table_bytes,
            detoured=self.detoured,
            table_repairs=self.table_repairs,
            backoff_retries=self.backoff_retries,
            link_lost=self.link_lost,
            hop_limit_dropped=self.hop_limit_dropped,
            membership_messages=self.membership_messages,
            membership_bytes=self.membership_bytes,
            false_positives=self.false_positives,
            false_negatives=self.false_negatives,
            detection_latencies=list(self.detection_latencies),
        )
        return trimmed

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, float]:
        """The flat row the bench tables print."""
        return {
            "delivered": float(self.delivered_count),
            "dropped": float(self.dropped_count),
            "rerouted": float(self.rerouted),
            "mean_hops": self.mean_hops(),
            "mean_latency": self.mean_latency(),
            "p95_latency": self.p95_latency(),
            "max_latency": self.max_latency(),
            "throughput": self.throughput(),
            "max_link_load": float(self.max_link_load()),
            "mean_link_load": self.mean_link_load(),
            "load_fairness": self.load_fairness(),
            "mean_queue_delay": self.mean_queue_delay(),
            "route_cache_hits": float(self.route_cache_hits),
            "route_cache_misses": float(self.route_cache_misses),
            "route_cache_hit_rate": self.route_cache_hit_rate(),
            "table_routed": float(self.table_routed),
            "table_bytes": float(self.table_bytes),
            "detoured": float(self.detoured),
            "table_repairs": float(self.table_repairs),
            "backoff_retries": float(self.backoff_retries),
            "link_lost": float(self.link_lost),
            "hop_limit_dropped": float(self.hop_limit_dropped),
            "membership_messages": float(self.membership_messages),
            "membership_bytes": float(self.membership_bytes),
            "false_positives": float(self.false_positives),
            "false_negatives": float(self.false_negatives),
            "mean_detection_latency": self.mean_detection_latency(),
        }
