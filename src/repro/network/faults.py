"""Fault tolerance of the de Bruijn network (experiment E7).

Paper Section 1 cites Pradhan–Reddy: DN(d, k) "is able to tolerate up to
d − 1 processor failures" — the undirected DG(d, k) remains connected
after removing any d − 1 vertices.  This module provides

* connectivity checks under arbitrary failed sets,
* greedy construction of vertex-disjoint path families (the constructive
  face of the tolerance claim), and
* :class:`FaultAwareRouter`, which plans shortest paths around a known
  failed set (BFS on the surviving graph) — the strategy the rerouting
  simulation measures.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.core.routing import Path
from repro.core.word import WordTuple
from repro.exceptions import RoutingError
from repro.graphs.debruijn import DeBruijnGraph
from repro.graphs.traversal import bfs_path
from repro.network.router import Router, vertex_path_to_steps


def survives_failures(
    graph: DeBruijnGraph,
    source: WordTuple,
    destination: WordTuple,
    failed: Iterable[WordTuple],
) -> bool:
    """True when a path from source to destination avoids ``failed``."""
    try:
        bfs_path(graph, source, destination, avoid=failed)
    except RoutingError:
        return False
    return True


def is_connected_after_failures(graph: DeBruijnGraph, failed: Iterable[WordTuple]) -> bool:
    """True when every surviving pair stays mutually reachable."""
    blocked = set(failed)
    survivors = [v for v in graph.vertices() if v not in blocked]
    if len(survivors) <= 1:
        return True
    anchor = survivors[0]
    for other in survivors[1:]:
        if not survives_failures(graph, anchor, other, blocked):
            return False
        if graph.directed and not survives_failures(graph, other, anchor, blocked):
            return False
    return True


def vertex_disjoint_paths(
    graph: DeBruijnGraph,
    source: WordTuple,
    destination: WordTuple,
    max_paths: Optional[int] = None,
) -> List[List[WordTuple]]:
    """Greedy family of internally vertex-disjoint shortest-available paths.

    Repeatedly finds a BFS path and removes its interior vertices.  Greedy
    search is not guaranteed to reach the true vertex connectivity, but on
    de Bruijn graphs it routinely produces the ``d - 1`` (and usually
    ``2d - 2``-ish) disjoint routes the Pradhan–Reddy bound promises; the
    tests assert at least ``d - 1`` for sampled pairs.
    """
    from collections import deque

    limit = max_paths if max_paths is not None else 2 * graph.d
    used: Set[WordTuple] = set()
    banned_edges: Set[tuple] = set()  # direct source->destination edges taken
    paths: List[List[WordTuple]] = []

    def search() -> Optional[List[WordTuple]]:
        parents = {source: None}
        queue = deque([source])
        while queue:
            current = queue.popleft()
            for nxt in graph.neighbors(current):
                if nxt in parents or nxt in used:
                    continue
                if (current, nxt) in banned_edges:
                    continue
                parents[nxt] = current
                if nxt == destination:
                    path = [nxt]
                    while parents[path[-1]] is not None:
                        path.append(parents[path[-1]])
                    path.reverse()
                    return path
                queue.append(nxt)
        return None

    while len(paths) < limit:
        path = search()
        if path is None:
            break
        paths.append(path)
        interior = path[1:-1]
        used.update(interior)
        if len(path) == 2:
            # A direct edge has no interior vertices to block; ban the edge
            # itself so the next search finds a genuinely different route.
            banned_edges.add((source, destination))
    return paths


class FaultAwareRouter(Router):
    """Shortest paths on the surviving topology (omniscient rerouting).

    Models a network whose sites learn the failed set through a management
    plane; the simulator's ``reroute_on_failure`` models the alternative
    where detours are discovered hop by hop.
    """

    def __init__(self, graph: DeBruijnGraph, failed: Optional[Set[WordTuple]] = None) -> None:
        self.graph = graph
        self.failed: Set[WordTuple] = set(failed) if failed is not None else set()
        self.name = "fault-aware"

    def plan(self, source: WordTuple, destination: WordTuple) -> Path:
        """Shortest path avoiding the failed set (BFS on survivors)."""
        vertices = bfs_path(self.graph, source, destination, avoid=self.failed)
        return vertex_path_to_steps(vertices, self.graph.d)
