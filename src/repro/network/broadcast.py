"""One-to-all broadcast on the de Bruijn network.

The paper's message format includes a BROADCAST control code's worth of
motivation (multiprocessor collectives live on exactly these networks, cf.
Samatham–Pradhan), so the simulator grows a broadcast facility:

* :func:`broadcast_tree` — a BFS spanning tree rooted anywhere; depth is
  the root's eccentricity <= k, so store-and-forward broadcast completes
  in O(k + d·k) cycles instead of the Θ(N) a naive unicast storm needs at
  the root's links.
* :func:`simulate_tree_broadcast` — runs the relay on the discrete-event
  simulator: each site, upon receiving the payload, forwards it to its
  tree children (one link transmission each).
* :func:`simulate_unicast_broadcast` — the strawman: the root unicasts to
  every site individually; its 2d links serialise ~N/(2d) messages.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.core.word import WordTuple
from repro.exceptions import SimulationError
from repro.graphs.debruijn import DeBruijnGraph
from repro.network.message import ControlCode, Message
from repro.network.router import Router, step_between
from repro.network.simulator import Simulator
from repro.network.stats import SimulationStats

Tree = Dict[WordTuple, List[WordTuple]]  # parent -> children


def broadcast_tree(graph: DeBruijnGraph, root: WordTuple) -> Tree:
    """A BFS spanning tree of ``graph`` rooted at ``root``.

    Children are ordered deterministically (sorted), which fixes the
    serialisation order at every site and makes simulations reproducible.
    """
    tree: Tree = {root: []}
    seen = {root}
    queue = deque([root])
    while queue:
        current = queue.popleft()
        for nxt in sorted(graph.neighbors(current)):
            if nxt not in seen:
                seen.add(nxt)
                tree.setdefault(current, []).append(nxt)
                tree.setdefault(nxt, [])
                queue.append(nxt)
    if len(seen) != graph.order:
        raise SimulationError("broadcast tree did not span the graph")
    return tree


def tree_depth(tree: Tree, root: WordTuple) -> int:
    """Longest root-to-leaf hop count."""
    depth = 0
    queue = deque([(root, 0)])
    while queue:
        node, level = queue.popleft()
        depth = max(depth, level)
        for child in tree[node]:
            queue.append((child, level + 1))
    return depth


class _TreeRelayRouter(Router):
    """Single-hop routes along tree edges (the relay sends hop by hop)."""

    name = "tree-relay"

    def __init__(self, d: int) -> None:
        self.d = d

    def plan(self, source: WordTuple, destination: WordTuple):
        return [step_between(source, destination, self.d)]


def simulate_tree_broadcast(
    d: int, k: int, root: Optional[WordTuple] = None, payload: object = "broadcast"
) -> Tuple[SimulationStats, float]:
    """Relay ``payload`` along the BFS tree; returns (stats, makespan).

    Each site forwards to its children in sorted order as soon as the
    payload arrives; link serialisation (one message per cycle) is the
    only contention.  Returns the completion time of the slowest site.
    ``root`` defaults to the all-zeros site.
    """
    if root is None:
        root = (0,) * k
    graph = DeBruijnGraph(d, k, directed=False)
    tree = broadcast_tree(graph, root)
    sim = Simulator(d, k)
    relay = _TreeRelayRouter(d)
    completed_at: Dict[WordTuple, float] = {root: 0.0}

    def forward_to_children(message: Message, simulator: Simulator) -> None:
        site = message.destination
        completed_at[site] = message.delivered_at
        for child in tree[site]:
            simulator.send(site, child, relay, at=simulator.now, payload=payload,
                           control=ControlCode.BROADCAST)

    sim.on_deliver = forward_to_children
    for child in tree[root]:
        sim.send(root, child, relay, at=0.0, payload=payload,
                 control=ControlCode.BROADCAST)
    sim.run()
    if len(completed_at) != graph.order:
        raise SimulationError("broadcast did not reach every site")
    return sim.stats, max(completed_at.values())


def simulate_unicast_broadcast(
    d: int, k: int, root: WordTuple, router: Router, payload: object = "broadcast"
) -> Tuple[SimulationStats, float]:
    """The strawman: the root unicasts to all N−1 sites at time 0."""
    graph = DeBruijnGraph(d, k, directed=False)
    sim = Simulator(d, k)
    for site in graph.vertices():
        if site != root:
            sim.send(root, site, router, at=0.0, payload=payload,
                     control=ControlCode.BROADCAST)
    stats = sim.run()
    if stats.delivered_count != graph.order - 1:
        raise SimulationError("unicast broadcast lost messages")
    makespan = max(m.delivered_at for m in stats.delivered)
    return stats, makespan


def simulate_tree_aggregation(
    d: int, k: int, root: Optional[WordTuple] = None
) -> Tuple[SimulationStats, float]:
    """Convergecast: every site's value is reduced up the BFS tree.

    The mirror of :func:`simulate_tree_broadcast`: leaves send their
    partial results first; each interior site waits for all of its
    children, combines (modelled as summing hop counts into the payload),
    then sends one message to its parent.  Returns (stats, completion
    time at the root).  Aggregation is what makes all-to-one collectives
    scale: the root receives exactly ``len(children)`` messages instead of
    N − 1.
    """
    if root is None:
        root = (0,) * k
    graph = DeBruijnGraph(d, k, directed=False)
    tree = broadcast_tree(graph, root)
    parents: Dict[WordTuple, WordTuple] = {}
    for parent, children in tree.items():
        for child in children:
            parents[child] = parent
    sim = Simulator(d, k)
    relay = _TreeRelayRouter(d)
    waiting: Dict[WordTuple, int] = {site: len(children) for site, children in tree.items()}
    accumulated: Dict[WordTuple, int] = {site: 1 for site in tree}  # own value
    finished_at: Dict[WordTuple, float] = {}

    def send_up(site: WordTuple, when: float) -> None:
        if site == root:
            finished_at[root] = when
            return
        sim.send(site, parents[site], relay, at=when,
                 payload=accumulated[site], control=ControlCode.DATA)

    def on_deliver(message: Message, simulator: Simulator) -> None:
        site = message.destination
        accumulated[site] += message.payload
        waiting[site] -= 1
        if waiting[site] == 0:
            send_up(site, simulator.now)

    sim.on_deliver = on_deliver
    for site, children in tree.items():
        if not children:  # leaves start immediately
            send_up(site, 0.0)
    sim.run()
    if waiting[root] != 0 or accumulated[root] != graph.order:
        raise SimulationError("aggregation lost contributions")
    return sim.stats, finished_at[root]


def broadcast_lower_bound(d: int, k: int, root: WordTuple) -> int:
    """No broadcast finishes before the farthest site can be reached."""
    from repro.graphs.properties import eccentricity

    return eccentricity(DeBruijnGraph(d, k, directed=False), root)
