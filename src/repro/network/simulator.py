"""Discrete-event simulation of the de Bruijn network DN(d, k).

The simulator realises paper Section 3 end to end: messages carry the
five-field structure, each site applies the pop-and-forward rule of
:class:`repro.network.node.Node`, wildcard digits are resolved against
instantaneous link availability, and links serialise traffic (one message
per cycle, configurable propagation latency).

Failures: sites may fail and recover on schedule.  A message whose *next
hop* is down is, in order of preference, redirected by a local detour
policy (``detour_policy``, see :mod:`repro.network.resilience`),
re-planned from the current site around the failed set (when
``reroute_on_failure``), or dropped and counted; a message at a site
that fails mid-flight is dropped (the paper's fault model only promises
connectivity, not lossless delivery).  An optional ``loss_fn`` models
lossy links: each transmission is offered to it and dropped in flight
when it returns True (the chaos layer installs seeded Bernoulli loss
there, E19).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Dict, Iterable, Optional, Set, Tuple

from repro.core.routing import Direction
from repro.core.word import WordTuple, validate_parameters, validate_word
from repro.exceptions import RoutingError, SimulationError
from repro.graphs.debruijn import DeBruijnGraph
from repro.graphs.traversal import bfs_path
from repro.network.events import Event, EventKind, EventQueue
from repro.network.link import Link
from repro.network.message import ControlCode, Message
from repro.network.node import Node
from repro.network.router import Router, vertex_path_to_steps
from repro.network.stats import SimulationStats

LinkKey = Tuple[WordTuple, WordTuple]


class Simulator:
    """One network instance: topology, sites, links, clock, event queue."""

    def __init__(
        self,
        d: int,
        k: int,
        bidirectional: bool = True,
        link_latency: float = 1.0,
        link_service_time: float = 1.0,
        reroute_on_failure: bool = False,
        detour_policy: Optional[object] = None,
        hop_limit: Optional[int] = None,
    ) -> None:
        validate_parameters(d, k)
        self.d = d
        self.k = k
        self.bidirectional = bidirectional
        self.link_latency = link_latency
        self.link_service_time = link_service_time
        self.reroute_on_failure = reroute_on_failure
        #: TTL guard: a message that has taken this many hops is dropped
        #: (counted in ``stats.hop_limit_dropped``) instead of forwarded.
        #: Legitimate traffic never gets near it — planned paths are at
        #: most ~2k hops and the detour budget is 2k + d — but detours
        #: taken against *stale* membership views, or a buggy stateless
        #: router, could otherwise bounce a message forever.
        self.hop_limit = (16 * k + 64) if hop_limit is None else hop_limit
        #: d**(k-1): the packed head place value, used by the O(1)
        #: table-driven forwarding arithmetic in the hot loop.
        self._high = d ** (k - 1)
        self.graph = DeBruijnGraph(d, k, directed=not bidirectional)
        self.now = 0.0
        self.queue = EventQueue()
        self.stats = SimulationStats()
        self._nodes: Dict[WordTuple, Node] = {}
        self._links: Dict[LinkKey, Link] = {}
        self._failed: Set[WordTuple] = set()
        self._failed_links: Set[LinkKey] = set()
        self._validated: Set[WordTuple] = set()  # addresses already checked
        #: Table-mode send memos: word tuple -> packed value, and
        #: destination tuple -> precomputed packed-row offset.
        self._packed: Dict[WordTuple, int] = {}
        self._packed_base: Dict[WordTuple, int] = {}
        #: Optional hook fired on every delivery (message, simulator).  May
        #: schedule further sends at >= the current time; used by the
        #: broadcast relay and available for custom protocols.
        self.on_deliver: Optional[Callable[[Message, "Simulator"], None]] = None
        #: Optional observer fired for every processed event (event,
        #: simulator); read-only by convention — used by tracing.
        self.on_event: Optional[Callable[[object, "Simulator"], None]] = None
        #: Local repair strategy consulted when a message's next hop is
        #: down, before any omniscient reroute: an object with
        #: ``detour(simulator, address, blocked_target, message)``
        #: returning a replacement next hop (and updating the message's
        #: routing state) or None.  See
        #: :class:`repro.network.resilience.LocalDetourPolicy`.
        self.detour_policy = detour_policy
        #: Optional Bernoulli link-loss oracle ``(tail, head) -> bool``;
        #: True loses the message in flight (chaos fault injection).
        self.loss_fn: Optional[Callable[[WordTuple, WordTuple], bool]] = None

    # ------------------------------------------------------------------
    # Topology access (lazy: nodes/links materialise on first touch)
    # ------------------------------------------------------------------

    def node(self, address: WordTuple) -> Node:
        """The site object at ``address`` (created on first use)."""
        existing = self._nodes.get(address)
        if existing is None:
            validate_word(address, self.d, self.k)
            existing = Node(address, self.d)
            self._nodes[address] = existing
        return existing

    def link(self, tail: WordTuple, head: WordTuple) -> Link:
        """The directed link ``tail -> head`` (created on first use)."""
        key = (tail, head)
        existing = self._links.get(key)
        if existing is None:
            existing = Link(tail, head, self.link_latency, self.link_service_time)
            self._links[key] = existing
        return existing

    def add_deliver_hook(
        self, hook: Callable[[Message, "Simulator"], None]
    ) -> None:
        """Install a delivery hook *without* clobbering an existing one.

        Hooks compose: the new hook runs first, then whatever was
        already installed.  This lets the reliable transport, tracing,
        and broadcast relays share one simulator (each protocol layer
        ignores traffic it does not recognise).
        """
        previous = self.on_deliver
        if previous is None:
            self.on_deliver = hook
            return

        def chained(message: Message, simulator: "Simulator",
                    _new=hook, _old=previous) -> None:
            _new(message, simulator)
            _old(message, simulator)

        self.on_deliver = chained

    def add_event_hook(
        self, hook: Callable[[object, "Simulator"], None]
    ) -> None:
        """Install an event observer *without* clobbering an existing one.

        Same composition rule as :meth:`add_deliver_hook`: the new hook
        runs first, then whatever was already installed.  The chaos
        campaign's repair trigger and the membership detector's fault
        bookkeeping share the observer slot this way.
        """
        previous = self.on_event
        if previous is None:
            self.on_event = hook
            return

        def chained(event: object, simulator: "Simulator",
                    _new=hook, _old=previous) -> None:
            _new(event, simulator)
            _old(event, simulator)

        self.on_event = chained

    def call_at(self, time: float,
                callback: Callable[["Simulator"], None]) -> None:
        """Schedule ``callback(simulator)`` to run at simulated ``time``.

        The hook protocol layers (membership probes, periodic repair
        syncs) build their timers on: callbacks fire in time order,
        interleaved with message events, and may schedule further work.
        """
        self.queue.schedule(time, EventKind.TIMER, None, callback)

    @property
    def failed_sites(self) -> frozenset:
        """The currently-down sites (a snapshot; oracle knowledge)."""
        return frozenset(self._failed)

    def _validate_address(self, address: WordTuple) -> None:
        """Validate an address once; repeated senders skip the digit walk."""
        if address not in self._validated:
            validate_word(address, self.d, self.k)
            self._validated.add(address)

    def is_failed(self, address: WordTuple) -> bool:
        """True while ``address`` is scheduled as down."""
        return address in self._failed

    def is_link_failed(self, tail: WordTuple, head: WordTuple) -> bool:
        """True while the directed link ``tail -> head`` is down."""
        return (tail, head) in self._failed_links

    def fail_link(self, tail: WordTuple, head: WordTuple, both_directions: bool = True) -> None:
        """Cut a link immediately (and its reverse unless told otherwise)."""
        self._failed_links.add((tail, head))
        if both_directions:
            self._failed_links.add((head, tail))

    def recover_link(self, tail: WordTuple, head: WordTuple, both_directions: bool = True) -> None:
        """Restore a previously cut link."""
        self._failed_links.discard((tail, head))
        if both_directions:
            self._failed_links.discard((head, tail))

    # ------------------------------------------------------------------
    # Scheduling API
    # ------------------------------------------------------------------

    def send(
        self,
        source: WordTuple,
        destination: WordTuple,
        router: Router,
        at: float = 0.0,
        payload: object = None,
        control: ControlCode = ControlCode.DATA,
    ) -> Message:
        """Plan a message with ``router`` and schedule its injection."""
        self._validate_address(source)
        self._validate_address(destination)
        if getattr(router, "stateless", False):
            # Hop-by-hop mode: the message carries only the destination;
            # each site computes its own step on arrival.
            message = Message(control, source, destination, [], payload,
                              injected_at=at, hop_router=router)
        else:
            table = getattr(router, "compiled_table", None)
            if table is not None and (self.bidirectional or table.directed):
                # Compiled-table mode: no planning at all.  The message
                # carries packed coordinates and every hop is one action
                # byte read (see _handle_arrival); an undirected table on
                # a uni-directional network would ask for nonexistent
                # type-R links, so that mismatch takes the planned path
                # below (and raises there, as it always has).
                message = Message(control, source, destination, [], payload,
                                  injected_at=at)
                message.route_table = table
                # Addresses were validated above, and steady-state traffic
                # revisits endpoints, so the packed coordinates are
                # memoized per tuple rather than re-packed per message.
                packed = self._packed
                current = packed.get(source)
                if current is None:
                    current = packed[source] = table.space.pack(source)
                base = self._packed_base.get(destination)
                if base is None:
                    base = self._packed_base[destination] = (
                        table.space.pack(destination) * table.order)
                message.packed_current = current
                message.packed_dest_base = base
                self.stats.table_bytes = table.nbytes
            else:
                path = router.plan(source, destination)
                message = Message(control, source, destination, list(path),
                                  payload, injected_at=at)
        self.queue.push(at, EventKind.INJECT, source, message)
        return message

    def fail_node(self, address: WordTuple, at: float = 0.0) -> None:
        """Schedule ``address`` to go down at time ``at``."""
        self.queue.push(at, EventKind.FAIL, address)

    def recover_node(self, address: WordTuple, at: float) -> None:
        """Schedule ``address`` to come back up at time ``at``."""
        self.queue.push(at, EventKind.RECOVER, address)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> SimulationStats:
        """Process events (up to ``until``, or to exhaustion) and report."""
        # The hot loop works on raw heap entries (see EventQueue: either
        # (time, seq, event) or (time, seq, kind, node, message)); an
        # Event object is only materialised when an observer wants one.
        heap = self.queue._heap
        handle_arrival = self._handle_arrival
        while heap:
            if until is not None and heap[0][0] > until:
                break
            entry = heappop(heap)
            time = entry[0]
            if time < self.now - 1e-9:
                raise SimulationError("event queue went backwards in time")
            self.now = time
            if len(entry) == 5:
                kind, node, message = entry[2], entry[3], entry[4]
                event = None
            else:
                event = entry[2]
                kind, node, message = event.kind, event.node, event.message
            if self.on_event is not None:
                if event is None:
                    event = Event(time, entry[1], kind, node, message)
                self.on_event(event, self)
            if kind <= EventKind.ARRIVE:  # INJECT / ARRIVE: the hot cases
                assert message is not None
                handle_arrival(node, message)
            elif kind == EventKind.FAIL:
                self._failed.add(node)
            elif kind == EventKind.RECOVER:
                self._failed.discard(node)
            else:  # TIMER: the payload slot carries the callback
                message(self)
        if until is not None and self.queue:
            self.stats.horizon = until  # stopped by the time limit
        else:
            self.stats.horizon = self.now
        self._collect_link_stats()
        return self.stats

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _handle_arrival(self, address: WordTuple, message: Message) -> None:
        if self._failed and address in self._failed:
            self.stats.dropped.append((message, f"site {address!r} is down"))
            return
        if len(message.trace) > self.hop_limit:  # hop_count >= hop_limit
            self.stats.hop_limit_dropped += 1
            self.stats.dropped.append(
                (message, f"hop limit {self.hop_limit} exceeded at "
                          f"{address!r}"))
            return
        site = self._nodes.get(address)
        if site is None:
            site = self.node(address)

        table = message.route_table
        if table is not None:
            # Compiled-table fast path: the next hop is one byte read in
            # the all-pairs action table — no routing-path list, no
            # planning, no step objects.  Packed-word arithmetic keeps
            # the O(1) coordinate alongside the tuple address the
            # node/link dictionaries key on.
            message.trace.append(address)
            current = message.packed_current
            action = table.actions[message.packed_dest_base + current]
            d = self.d
            if action < d:  # type-L: drop the head, append the digit
                target = address[1:] + (action,)
                message.packed_current = (current % self._high) * d + action
            elif action < 2 * d:  # type-R: drop the tail, prepend
                # No bidirectional re-check: send() only attaches a table
                # whose orientation matches the network, and directed
                # tables contain no type-R actions by construction.
                digit = action - d
                target = (digit,) + address[:-1]
                message.packed_current = digit * self._high + current // d
            elif action == 0xFE:  # at the destination: deliver
                site.accept(message, self.now)
                self.stats.delivered.append(message)
                self.stats.table_routed += 1
                if self.on_deliver is not None:
                    self.on_deliver(message, self)
                return
            else:  # 0xFF: the table records no route (defensive)
                self.stats.dropped.append(
                    (message, f"table has no route from {address!r} to "
                              f"{message.destination!r}"))
                return
            site.forwarded_count += 1
        elif message.hop_router is None and (path := message.routing_path) \
                and path[0].digit is not None:
            # Fast path: a concrete next step needs no cost oracle, so the
            # pop-and-forward arithmetic of :meth:`Node.process` is inlined
            # here (same rule, same bookkeeping — the method call per hop
            # is what profiles flag, E17).
            message.trace.append(address)
            step = path.pop(0)
            digit = step.digit
            if step.direction is Direction.LEFT:
                target = address[1:] + (digit,)
            else:
                if not self.bidirectional:
                    raise SimulationError(
                        f"message {message.message_id} asked for a right "
                        f"shift at {address!r}, but this network is "
                        f"uni-directional"
                    )
                target = (digit,) + address[:-1]
            site.forwarded_count += 1
        else:
            # The cost oracle is only needed for wildcard resolution and
            # stateless hop planning.
            def link_cost(neighbor: WordTuple) -> float:
                if self.is_failed(neighbor) or self.is_link_failed(address, neighbor):
                    return float("inf")
                return self.link(address, neighbor).earliest_departure(self.now)

            if message.hop_router is not None and address != message.destination:
                # Stateless mode: materialise exactly one locally-computed
                # step (with local link state available) for the standard
                # pop-and-forward rule to consume.
                step = message.hop_router.next_hop(address, message.destination,
                                                   cost_fn=link_cost)
                message.routing_path.insert(0, step)

            decision = site.process(message, self.now, link_cost)
            if decision is None:
                self.stats.delivered.append(message)
                if self.on_deliver is not None:
                    self.on_deliver(message, self)
                return
            target, _step = decision
            if not self.bidirectional and _step.direction != Direction.LEFT:
                # A type-R hop needs a link that the uni-directional network
                # simply does not have; a router/topology mismatch is a
                # programming error, not a droppable runtime condition.
                raise SimulationError(
                    f"message {message.message_id} asked for a right shift "
                    f"at {address!r}, but this network is uni-directional"
                )
        if (target in self._failed) or (
            self._failed_links and (address, target) in self._failed_links
        ):
            # Degrade gracefully, cheapest knowledge first: a local
            # detour (adjacent liveness only), then the omniscient
            # re-plan, then the drop the paper's fault model allows.
            alternative = None
            if self.detour_policy is not None:
                alternative = self.detour_policy.detour(
                    self, address, target, message)
            if alternative is None:
                if not self._try_reroute(address, message):
                    self.stats.dropped.append(
                        (message, f"next hop {target!r} is unreachable"))
                return
            self.stats.detoured += 1
            target = alternative
        if self.loss_fn is not None and self.loss_fn(address, target):
            self.stats.link_lost += 1
            self.stats.dropped.append(
                (message, f"link {address!r}->{target!r} lost the message"))
            return
        # Inline the link lookup + transmit + event-push bookkeeping: this
        # runs once per hop and the method-call version shows up in
        # profiles (E17).
        link = self._links.get((address, target))
        if link is None:
            link = self.link(address, target)
        now = self.now
        departure = link.next_free
        if departure < now:
            departure = now
        link.total_queue_delay += departure - now
        link.next_free = departure + link.service_time
        link.carried += 1
        arrival = departure + link.latency
        queue = self.queue
        heappush(queue._heap,
                 (arrival, next(queue._counter), EventKind.ARRIVE, target, message))

    def _try_reroute(self, address: WordTuple, message: Message) -> bool:
        """Re-plan around the failed set from the current site (E7)."""
        if not self.reroute_on_failure:
            return False

        def surviving_neighbors(vertex: WordTuple):
            return (
                nbr for nbr in self.graph.neighbors(vertex)
                if (vertex, nbr) not in self._failed_links
            )

        try:
            vertices = bfs_path(
                self.graph, address, message.destination,
                neighbor_fn=surviving_neighbors, avoid=self._failed,
            )
        except RoutingError:
            # No surviving path — the only *expected* failure here.
            # Anything else (a corrupt graph, a bad neighbor_fn) is a
            # programming error and must propagate, not masquerade as a
            # clean drop.
            return False
        message.routing_path = vertex_path_to_steps(vertices, self.d)
        message.route_table = None  # the detour leaves the compiled routes
        self.stats.rerouted += 1
        if len(vertices) == 1:
            # Already at the destination: deliver immediately.
            site = self.node(address)
            site.accept(message, self.now)
            self.stats.delivered.append(message)
            if self.on_deliver is not None:
                self.on_deliver(message, self)
            return True
        nxt = vertices[1]
        message.routing_path.pop(0)
        if self.loss_fn is not None and self.loss_fn(address, nxt):
            self.stats.link_lost += 1
            self.stats.dropped.append(
                (message, f"link {address!r}->{nxt!r} lost the message"))
            return True  # handled: the detour leg itself was lost
        arrival = self.link(address, nxt).transmit(self.now)
        self.queue.push(arrival, EventKind.ARRIVE, nxt, message)
        return True

    def _collect_link_stats(self) -> None:
        for key, link in self._links.items():
            if link.carried:
                self.stats.link_loads[key] = link.carried
                self.stats.link_queue_delays[key] = link.total_queue_delay


def run_workload(
    simulator: Simulator,
    router: Router,
    workload: Iterable[Tuple[float, WordTuple, WordTuple]],
    until: Optional[float] = None,
) -> SimulationStats:
    """Inject a (time, source, destination) stream and run to completion.

    When the router memoizes its planning (a ``cache`` attribute holding a
    :class:`repro.core.routing.RouteCache`), the cache's hit/miss counters
    are copied into the returned stats so they show up in ``summary()``.
    """
    for at, source, destination in workload:
        simulator.send(source, destination, router, at=at)
    stats = simulator.run(until)
    cache = getattr(router, "cache", None)
    if cache is not None:
        stats.route_cache_hits = cache.hits
        stats.route_cache_misses = cache.misses
    return stats
