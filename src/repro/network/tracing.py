"""Event tracing for simulations: record, summarise, export, visualise.

Attach a :class:`TraceRecorder` before running and every processed event
(injections, arrivals, failures, recoveries) is captured with its time,
site and message id.  The recorder can then:

* summarise per-site activity (arrivals handled, first/last activity),
* follow one message's life (`message_timeline`),
* render a coarse ASCII activity timeline (sites × time buckets),
* export everything as JSON lines for external tooling.

Purely observational — the recorder never mutates simulator state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.word import WordTuple, format_word
from repro.exceptions import SimulationError
from repro.network.events import Event, EventKind
from repro.network.simulator import Simulator


@dataclass(frozen=True)
class TraceEntry:
    """One recorded event."""

    time: float
    kind: str
    site: WordTuple
    message_id: Optional[int]

    def to_json(self) -> str:
        """One JSON line."""
        return json.dumps(
            {
                "time": self.time,
                "kind": self.kind,
                "site": format_word(self.site),
                "message_id": self.message_id,
            },
            sort_keys=True,
        )


@dataclass
class SiteActivity:
    """Aggregate view of one site's participation."""

    events: int = 0
    first_time: Optional[float] = None
    last_time: Optional[float] = None

    def record(self, time: float) -> None:
        """Fold one event time into the aggregate."""
        self.events += 1
        if self.first_time is None or time < self.first_time:
            self.first_time = time
        if self.last_time is None or time > self.last_time:
            self.last_time = time


class TraceRecorder:
    """Captures every simulator event through the ``on_event`` hook."""

    def __init__(self, simulator: Simulator) -> None:
        if simulator.on_event is not None:
            raise SimulationError("simulator already has an event observer")
        self.simulator = simulator
        self.entries: List[TraceEntry] = []
        simulator.on_event = self._observe

    def _observe(self, event: Event, simulator: Simulator) -> None:
        self.entries.append(
            TraceEntry(
                time=event.time,
                kind=EventKind(event.kind).name,
                site=event.node,
                message_id=event.message.message_id if event.message is not None else None,
            )
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def site_activity(self) -> Dict[WordTuple, SiteActivity]:
        """Per-site event counts and first/last activity times."""
        activity: Dict[WordTuple, SiteActivity] = {}
        for entry in self.entries:
            activity.setdefault(entry.site, SiteActivity()).record(entry.time)
        return activity

    def message_timeline(self, message_id: int) -> List[TraceEntry]:
        """Every recorded event touching one message, in order."""
        return [e for e in self.entries if e.message_id == message_id]

    def busiest_sites(self, top: int = 5) -> List[Tuple[WordTuple, int]]:
        """The sites that processed the most events."""
        activity = self.site_activity()
        ranked = sorted(activity.items(), key=lambda kv: (-kv[1].events, kv[0]))
        return [(site, act.events) for site, act in ranked[:top]]

    def to_jsonl(self) -> str:
        """The whole trace as JSON lines."""
        return "\n".join(entry.to_json() for entry in self.entries)

    def render_timeline(self, buckets: int = 40, max_sites: int = 12) -> str:
        """ASCII site × time activity map (darker symbol = more events)."""
        if not self.entries:
            return "(empty trace)"
        t_min = min(e.time for e in self.entries)
        t_max = max(e.time for e in self.entries)
        span = (t_max - t_min) or 1.0
        shades = " .:*#"
        counts: Dict[WordTuple, List[int]] = {}
        for entry in self.entries:
            bucket = min(int((entry.time - t_min) / span * buckets), buckets - 1)
            counts.setdefault(entry.site, [0] * buckets)[bucket] += 1
        peak = max(max(row) for row in counts.values()) or 1
        chosen = sorted(counts, key=lambda s: -sum(counts[s]))[:max_sites]
        lines = [f"time {t_min:g} .. {t_max:g} ({len(self.entries)} events)"]
        for site in sorted(chosen):
            row = counts[site]
            cells = "".join(
                shades[min(int(c / peak * (len(shades) - 1) + (0 if c == 0 else 1)),
                           len(shades) - 1)]
                for c in row
            )
            lines.append(f"{format_word(site):>10s} |{cells}|")
        if len(counts) > max_sites:
            lines.append(f"  (+{len(counts) - max_sites} quieter sites omitted)")
        return "\n".join(lines)
