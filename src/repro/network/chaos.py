"""Seeded stochastic fault injection — the chaos engine (experiment E19).

Everything here is a *generator of misfortune* for
:class:`repro.network.simulator.Simulator`; the machinery that survives
it lives in :mod:`repro.network.resilience`.  Three fault processes,
all driven by one recorded seed so any campaign replays bit-for-bit:

* **Site churn** — per-site alternating renewal process: up-times drawn
  from Exponential(1/MTBF), down-times from Exponential(1/MTTR), the
  textbook availability model (steady-state availability
  ``MTBF / (MTBF + MTTR)``).
* **Correlated regional outages** — a Poisson process of events that
  take down *every* site sharing a random address prefix at once, the
  de Bruijn analogue of losing a rack: sites whose words share a prefix
  of length p form a contiguous packed range (prefix-major packing), so
  one event fells ``d**(k-p)`` sites together and recovery is likewise
  simultaneous.
* **Bernoulli link loss** — each transmission is lost independently
  with probability ``loss_rate`` (installed as the simulator's
  ``loss_fn``).

:func:`run_campaign` sweeps a fault-intensity knob across routing
strategies (``oblivious`` / ``reroute`` / ``detour`` / ``repair``) with
*identical* traffic and fault schedules per intensity, and emits the
delivery-ratio / path-stretch / time-to-recover curves that
``benchmarks/bench_resilience.py`` records and the ``chaos`` CLI
subcommand prints.

Determinism contract: every random stream is a :class:`random.Random`
seeded with a string derived from ``(config.seed, purpose, intensity,
strategy)``, so replaying a campaign from its recorded seed reproduces
every fault time, every lost transmission, and every traffic pair.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.tables import CompiledRouteTable
from repro.core.word import WordTuple, validate_parameters
from repro.exceptions import InvalidParameterError
from repro.network.events import EventKind
from repro.network.membership import SwimConfig, SwimDetector
from repro.network.resilience import LocalDetourPolicy, SelfHealingRouteTable
from repro.network.router import TableDrivenRouter
from repro.network.simulator import Simulator
from repro.network.traffic import random_pairs

#: The oracle-knowledge routing strategies (E19), weakest first.
STRATEGIES: Tuple[str, ...] = ("oblivious", "reroute", "detour", "repair")

#: Detection-driven variants (E20): same machinery as ``detour`` /
#: ``repair`` but fed by SWIM-detected membership views instead of the
#: simulator's oracle failed set.
DETECTION_STRATEGIES: Tuple[str, ...] = ("detour-detect", "repair-detect")

#: Every strategy the campaign understands.
ALL_STRATEGIES: Tuple[str, ...] = STRATEGIES + DETECTION_STRATEGIES


@dataclass(frozen=True)
class ChaosConfig:
    """One campaign's worth of knobs (all rates at intensity 1.0).

    ``intensity`` scales the fault processes linearly: at intensity
    ``i`` the effective MTBF is ``mtbf / i`` (so fault *frequency*
    scales with i), the regional-outage rate is ``regional_rate * i``,
    and the per-transmission loss probability is ``loss_rate * i``.
    Intensity 0 is the fault-free control.
    """

    d: int = 2
    k: int = 6
    seed: str = "chaos"
    horizon: float = 3000.0
    #: Offered load: messages injected, and their inter-arrival spacing.
    messages: int = 300
    spacing: float = 5.0
    #: Site-churn renewal process (simulated-time units).
    mtbf: float = 600.0
    mttr: float = 120.0
    #: Regional outages: expected events per unit time at intensity 1,
    #: each felling all sites sharing a random prefix of this length.
    regional_rate: float = 0.0
    region_prefix_len: int = 1
    #: Bernoulli per-transmission loss probability at intensity 1.
    loss_rate: float = 0.0
    bidirectional: bool = True
    #: SWIM knobs for the detection-driven strategies (E20); ignored by
    #: the oracle legs.  Intensity does *not* scale these — a real
    #: detector cannot know how hostile its environment is.
    probe_interval: float = 10.0
    probe_timeout: float = 3.0
    suspicion_timeout: float = 20.0
    indirect_probes: int = 2

    def __post_init__(self) -> None:
        validate_parameters(self.d, self.k)
        if self.mtbf <= 0 or self.mttr <= 0:
            raise InvalidParameterError("mtbf and mttr must be positive")
        if not 0 <= self.loss_rate <= 1:
            raise InvalidParameterError("loss_rate must be in [0, 1]")
        if not 0 < self.region_prefix_len <= self.k:
            raise InvalidParameterError(
                f"region_prefix_len must be in 1..{self.k}")
        # The SWIM knobs share SwimConfig's validation rules.
        self.swim_config()

    def swim_config(self, seed_suffix: str = "") -> SwimConfig:
        """The detector configuration these knobs describe."""
        return SwimConfig(
            probe_interval=self.probe_interval,
            probe_timeout=self.probe_timeout,
            suspicion_timeout=self.suspicion_timeout,
            indirect_probes=self.indirect_probes,
            seed=f"{self.seed}:swim{seed_suffix}",
        )


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled site transition; ``region`` marks correlated events."""

    time: float
    kind: str  #: ``"fail"`` or ``"recover"``
    site: WordTuple
    region: Optional[WordTuple] = None  #: shared prefix, for regional events


@dataclass
class ChaosSchedule:
    """A reproducible fault timeline for one DG(d, k) run."""

    d: int
    k: int
    horizon: float
    seed: str
    events: List[FaultEvent] = field(default_factory=list)

    @property
    def fail_count(self) -> int:
        return sum(1 for e in self.events if e.kind == "fail")

    def fail_times(self) -> List[float]:
        """When each outage begins (for time-to-recover accounting)."""
        return [e.time for e in self.events if e.kind == "fail"]

    def apply(self, simulator: Simulator) -> None:
        """Push every transition onto the simulator's event queue."""
        for event in self.events:
            if event.kind == "fail":
                simulator.fail_node(event.site, at=event.time)
            else:
                simulator.recover_node(event.site, at=event.time)


def _site_words(d: int, k: int) -> List[WordTuple]:
    """All sites in packed order (prefix-major, so regions are ranges)."""
    from repro.core.packed import PackedSpace

    space = PackedSpace(d, k)
    return [space.unpack(value) for value in range(space.order)]


def generate_schedule(
    d: int,
    k: int,
    horizon: float,
    seed: str,
    mtbf: float,
    mttr: float,
    regional_rate: float = 0.0,
    region_prefix_len: int = 1,
    protect: Iterable[WordTuple] = (),
) -> ChaosSchedule:
    """Draw one reproducible fault timeline.

    Per site an alternating Exponential(1/mtbf) up / Exponential(1/mttr)
    down renewal process; on top, a Poisson(regional_rate) stream of
    regional outages felling every site with a random shared prefix.
    Sites in ``protect`` never fail (lets tests pin endpoints up).
    ``mtbf=float("inf")`` disables churn, ``regional_rate=0`` disables
    regional events.  Identical arguments give identical schedules.
    """
    validate_parameters(d, k)
    schedule = ChaosSchedule(d=d, k=k, horizon=horizon, seed=seed)
    events = schedule.events
    protected = set(protect)
    sites = _site_words(d, k)

    # Site churn: one independent renewal stream per site, drawn from a
    # per-site RNG so the timeline does not depend on site iteration
    # order staying stable.
    if mtbf != float("inf"):
        fail_rate = 1.0 / mtbf
        repair_rate = 1.0 / mttr
        for site in sites:
            if site in protected:
                continue
            rng = random.Random(f"{seed}:site:{site}")
            t = rng.expovariate(fail_rate)
            while t < horizon:
                events.append(FaultEvent(t, "fail", site))
                down = rng.expovariate(repair_rate)
                recover_at = t + down
                if recover_at < horizon:
                    events.append(FaultEvent(recover_at, "recover", site))
                t = recover_at + rng.expovariate(fail_rate)

    # Correlated regional outages: all sites sharing a prefix go down
    # together and come back together.
    if regional_rate > 0:
        rng = random.Random(f"{seed}:regions")
        repair_rate = 1.0 / mttr
        t = rng.expovariate(regional_rate)
        while t < horizon:
            prefix = tuple(rng.randrange(d)
                           for _ in range(region_prefix_len))
            recover_at = t + rng.expovariate(repair_rate)
            for site in sites:
                if site[:region_prefix_len] != prefix or site in protected:
                    continue
                events.append(FaultEvent(t, "fail", site, region=prefix))
                if recover_at < horizon:
                    events.append(
                        FaultEvent(recover_at, "recover", site, region=prefix))
            t += rng.expovariate(regional_rate)

    events.sort(key=lambda e: (e.time, e.kind, e.site))
    return schedule


def install_link_loss(
    simulator: Simulator,
    rate: float,
    seed: str,
) -> Optional[Callable[[WordTuple, WordTuple], bool]]:
    """Arm the simulator with seeded Bernoulli per-transmission loss.

    Each call to the installed ``loss_fn`` consumes one draw from its
    own RNG stream, so two runs with the same seed lose the same
    transmissions.  ``rate<=0`` uninstalls (and returns None) — the hot
    loop then skips the check entirely.
    """
    if rate <= 0:
        simulator.loss_fn = None
        return None
    if rate > 1:
        raise InvalidParameterError(f"loss rate {rate} > 1")
    rng = random.Random(f"{seed}:loss")

    def loss_fn(tail: WordTuple, head: WordTuple,
                _random=rng.random, _rate=rate) -> bool:
        return _random() < _rate

    simulator.loss_fn = loss_fn
    return loss_fn


# ----------------------------------------------------------------------
# Campaign runner
# ----------------------------------------------------------------------


def _healthy_distance(table: CompiledRouteTable,
                      source: WordTuple, destination: WordTuple) -> int:
    space = table.space
    return table.distances[
        space.pack(destination) * table.order + space.pack(source)]


def _mean_stretch(table: CompiledRouteTable, delivered) -> float:
    """Mean (hops taken) / (healthy shortest distance) over deliveries."""
    ratios: List[float] = []
    for message in delivered:
        optimal = _healthy_distance(table, message.source,
                                    message.destination)
        if 0 < optimal < 0xFF:
            ratios.append(message.hop_count / optimal)
    return sum(ratios) / len(ratios) if ratios else 0.0


def _mean_time_to_recover(fail_times: Sequence[float], delivered) -> float:
    """Mean lag from an outage to the next delivery *injected after* it.

    For each fault instant t_f: the earliest ``delivered_at`` among
    messages injected at or after t_f, minus t_f — how long the network
    took to prove it was still delivering fresh traffic.  Fault events
    with no later successful injection are skipped (the run drained).
    """
    if not fail_times or not delivered:
        return 0.0
    pairs = sorted((m.injected_at, m.delivered_at) for m in delivered
                   if m.delivered_at is not None)
    if not pairs:
        return 0.0
    injections = [p[0] for p in pairs]
    # suffix_min[i] = earliest delivery among injections[i:]
    suffix_min = [0.0] * len(pairs)
    best = float("inf")
    for i in range(len(pairs) - 1, -1, -1):
        best = min(best, pairs[i][1])
        suffix_min[i] = best
    import bisect

    lags: List[float] = []
    for t_f in fail_times:
        i = bisect.bisect_left(injections, t_f)
        if i < len(pairs):
            lags.append(suffix_min[i] - t_f)
    return sum(lags) / len(lags) if lags else 0.0


def _build_simulator(config: ChaosConfig, strategy: str,
                     table: CompiledRouteTable,
                     detector_seed_suffix: str = "",
                     ) -> Tuple[Simulator, TableDrivenRouter,
                                Optional[SelfHealingRouteTable],
                                Optional[SwimDetector]]:
    """One (simulator, router, healer, detector) per strategy leg.

    * ``oblivious``     — compiled table, drop on any failed next hop;
    * ``reroute``       — omniscient re-plan around the failed set (E7);
    * ``detour``        — local-knowledge deflection
      (:class:`repro.network.resilience.LocalDetourPolicy`);
    * ``repair``        — self-healing table re-synced on every fault
      transition, messages re-read the patched bytes in flight;
    * ``detour-detect`` — the detour policy judging candidates by each
      site's SWIM-detected membership view (E20);
    * ``repair-detect`` — the self-healing table re-synced from the
      detector's aggregated confirmed-dead set: repairs lag real faults
      by the detection latency and track false convictions faithfully.
    """
    simulator = Simulator(
        config.d, config.k,
        bidirectional=config.bidirectional,
        reroute_on_failure=(strategy == "reroute"),
    )
    healer: Optional[SelfHealingRouteTable] = None
    detector: Optional[SwimDetector] = None
    if strategy in DETECTION_STRATEGIES:
        detector = SwimDetector(
            simulator, config.swim_config(detector_seed_suffix),
            horizon=config.horizon)
        detector.start()
        detector.piggyback_on_traffic()
    if strategy == "detour":
        simulator.detour_policy = LocalDetourPolicy(table)
        router = TableDrivenRouter(table=table)
    elif strategy == "detour-detect":
        simulator.detour_policy = LocalDetourPolicy(
            table, membership=detector)
        router = TableDrivenRouter(table=table)
    elif strategy == "repair":
        healer = SelfHealingRouteTable(table.thaw())
        router = TableDrivenRouter(table=healer.table)
        failed_now: set = set()

        def observe(event, sim, _healer=healer, _failed=failed_now) -> None:
            # The observer fires before the simulator mutates its own
            # failed set, so track the transition locally and re-sync
            # the table the instant the topology changes.
            if event.kind == EventKind.FAIL:
                _failed.add(event.node)
            elif event.kind == EventKind.RECOVER:
                _failed.discard(event.node)
            else:
                return
            if _healer.sync(_failed) is not None:
                sim.stats.table_repairs += 1

        simulator.add_event_hook(observe)
    elif strategy == "repair-detect":
        healer = SelfHealingRouteTable(table.thaw())
        router = TableDrivenRouter(table=healer.table)

        def resync(det: SwimDetector, _healer=healer,
                   _sim=simulator) -> None:
            # Repair from *detected* knowledge: the shared table follows
            # the first confirmation anywhere, so repairs lag real
            # faults by the detection latency — and a false conviction
            # really does route traffic around a live site until the
            # refutation lands.
            if _healer.sync(det.detected_dead()) is not None:
                _sim.stats.table_repairs += 1

        detector.on_dead_change = resync
    else:
        if strategy not in ("oblivious", "reroute"):
            raise InvalidParameterError(f"unknown strategy {strategy!r}")
        router = TableDrivenRouter(table=table)
    return simulator, router, healer, detector


def run_campaign(
    config: ChaosConfig,
    intensities: Sequence[float] = (0.0, 0.25, 0.5, 1.0),
    strategies: Sequence[str] = STRATEGIES,
    table: Optional[CompiledRouteTable] = None,
) -> List[Dict[str, object]]:
    """Sweep fault intensity across strategies; one record per leg.

    Per intensity the traffic and the fault schedule are drawn once and
    shared by every strategy — the comparison is paired, so curve gaps
    are strategy effects, not sampling noise.  Records are flat
    JSON-able dicts carrying the seed that reproduces them.
    """
    if table is None:
        table = CompiledRouteTable.compile(
            config.d, config.k, directed=not config.bidirectional, workers=1)
    records: List[Dict[str, object]] = []
    for intensity in intensities:
        if intensity < 0:
            raise InvalidParameterError(f"negative intensity {intensity}")
        traffic = random_pairs(
            config.d, config.k, config.messages, spacing=config.spacing,
            rng=random.Random(f"{config.seed}:traffic:{intensity}"),
        )
        if intensity > 0:
            schedule = generate_schedule(
                config.d, config.k, config.horizon,
                seed=f"{config.seed}:faults:{intensity}",
                mtbf=config.mtbf / intensity,
                mttr=config.mttr,
                regional_rate=config.regional_rate * intensity,
                region_prefix_len=config.region_prefix_len,
            )
        else:
            schedule = ChaosSchedule(config.d, config.k, config.horizon,
                                     seed=f"{config.seed}:faults:0")
        for strategy in strategies:
            simulator, router, healer, detector = _build_simulator(
                config, strategy, table,
                detector_seed_suffix=f":{intensity}")
            schedule.apply(simulator)
            install_link_loss(
                simulator, config.loss_rate * intensity,
                seed=f"{config.seed}:loss:{intensity}:{strategy}",
            )
            for at, source, destination in traffic:
                simulator.send(source, destination, router, at=at)
            stats = simulator.run()
            if healer is not None:
                stats.table_repairs = max(stats.table_repairs,
                                          healer.repairs)
            if detector is not None:
                detector.finalize()
            offered = len(traffic)
            records.append({
                "strategy": strategy,
                "intensity": intensity,
                "seed": config.seed,
                "d": config.d,
                "k": config.k,
                "offered": offered,
                "delivered": stats.delivered_count,
                "dropped": stats.dropped_count,
                "delivery_ratio": (stats.delivered_count / offered
                                   if offered else 0.0),
                "mean_stretch": _mean_stretch(table, stats.delivered),
                "time_to_recover": _mean_time_to_recover(
                    schedule.fail_times(), stats.delivered),
                "fault_events": schedule.fail_count,
                "detoured": stats.detoured,
                "rerouted": stats.rerouted,
                "table_repairs": stats.table_repairs,
                "link_lost": stats.link_lost,
                "mean_latency": stats.mean_latency(),
                "hop_limit_dropped": stats.hop_limit_dropped,
                "membership_messages": stats.membership_messages,
                "membership_bytes": stats.membership_bytes,
                "false_positives": stats.false_positives,
                "false_negatives": stats.false_negatives,
                "mean_detection_latency": stats.mean_detection_latency(),
                "p95_detection_latency": stats.p95_detection_latency(),
                "detected_outages": len(stats.detection_latencies),
            })
    return records


def campaign_curves(records: List[Dict[str, object]]
                    ) -> Dict[str, List[Tuple[float, float]]]:
    """Per-strategy (intensity, delivery_ratio) curves from the records."""
    curves: Dict[str, List[Tuple[float, float]]] = {}
    for record in records:
        curves.setdefault(str(record["strategy"]), []).append(
            (float(record["intensity"]), float(record["delivery_ratio"])))
    for points in curves.values():
        points.sort()
    return curves


def replay_config(record: Dict[str, object], **overrides) -> ChaosConfig:
    """A config that reproduces the campaign a record came from."""
    base = ChaosConfig(
        d=int(record["d"]), k=int(record["k"]), seed=str(record["seed"]))
    return replace(base, **overrides) if overrides else base
