"""Command-line interface: ``debruijn-routing <subcommand>``.

Subcommands
-----------

``distance``            distance between two vertices (both orientations)
``route``               print a shortest routing path and its hop trace
``average-distance``    Equation (5) vs exact means for a (d, k) grid
``structure``           the Figure-1 structural report for one graph
``simulate``            run a uniform-traffic simulation and print stats
``sequence``            print a de Bruijn sequence B(d, k)
``disjoint-paths``      vertex-disjoint route family between two sites
``broadcast``           tree vs unicast one-to-all broadcast makespans
``topology``            de Bruijn vs Kautz vs the Moore bound
``experiments``         regenerate the static experiment tables (E1..E12)
``congestion``          offline congestion of permutation patterns
``robustness``          random-failure robustness sweep
``sort``                distributed sort demo on the embedded array
``render``              write the graph (optionally with a route) as SVG/DOT
``compile-tables``      compile + save a next-hop route table (sharded BFS)
``chaos``               seeded fault-injection campaign across strategies
``detect``              SWIM failure detection on one seeded fault timeline
``serve``               run the route-query server (E21; ``--workers N``
                        scales it across cores, E23)
``loadgen``             closed-loop capacity sweep / soak against a
                        running server (E23)
``query``               query a running server (one pair, or a burst)
``chaosproxy``          wire-level fault-injecting TCP proxy in front of
                        a server (E24); ``query``/``loadgen`` gain
                        ``--retries``/``--deadline-ms``/``--hedge-ms``

Examples::

    debruijn-routing distance -d 2 0110 1110
    debruijn-routing route -d 2 --directed 0110 1110
    debruijn-routing average-distance -d 2 -k 6
    debruijn-routing simulate -d 2 -k 4 --cycles 200 --rate 0.05
    debruijn-routing simulate -d 2 -k 6 --router table
    debruijn-routing compile-tables -d 2 -k 8 --workers 4 --verify 200
    debruijn-routing chaos -d 2 -k 6 --intensities 0,0.5,1 --assert-improves
    debruijn-routing chaos -d 2 -k 5 --membership --intensities 0,1
    debruijn-routing detect -d 2 -k 6 --mtbf 600 --mttr 120
    debruijn-routing serve -d 2 -k 6 --port 7531 --duration 30
    debruijn-routing query -d 2 -k 6 --port 7531 011010 110110
    debruijn-routing query -d 2 -k 6 --port 7531 --burst 1000 --stats
    debruijn-routing sequence -d 2 -k 4 --method euler
    debruijn-routing disjoint-paths -d 2 001 110
    debruijn-routing broadcast -d 2 -k 5
    debruijn-routing topology -d 2 -k 6
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from repro.analysis.tables import format_kv_block, format_table
from repro.core.distance import directed_distance, undirected_distance, undirected_witness
from repro.core.routing import format_path, path_words, route
from repro.core.word import format_word, parse_word
from repro.core.average_distance import (
    directed_average_distance_closed_form,
    directed_average_distance_exact,
    undirected_average_distance_exact,
)
from repro.graphs.debruijn import DeBruijnGraph
from repro.graphs.properties import structural_report
from repro.network.router import BidirectionalOptimalRouter, TrivialRouter, UnidirectionalOptimalRouter
from repro.network.simulator import Simulator, run_workload
from repro.network.traffic import uniform_random


def _add_resilience_flags(parser: argparse.ArgumentParser) -> None:
    """Retry/deadline/hedge/breaker knobs shared by query and loadgen.

    Any of ``--retries``, ``--deadline-ms``, or ``--hedge-ms`` switches
    the command to the hardened client (E24); with none of them the
    plain pipelining client is used, exactly as before.
    """
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="hardened client: re-ask failed or retryable "
                             "queries up to N times with seeded-jitter "
                             "exponential backoff")
    parser.add_argument("--deadline-ms", type=float, default=None,
                        help="hardened client: per-burst deadline budget; "
                             "still-unanswered queries get synthetic "
                             "TIMEOUT replies when it expires")
    parser.add_argument("--attempt-timeout-ms", type=float, default=None,
                        help="cap one attempt's wait (default: the whole "
                             "remaining deadline)")
    parser.add_argument("--hedge-ms", type=float, default=None,
                        help="hedge a stalled attempt onto a second "
                             "connection after this many milliseconds")
    parser.add_argument("--breaker-failures", type=int, default=5,
                        help="consecutive failures that trip the circuit "
                             "breaker open")
    parser.add_argument("--breaker-probe-ms", type=float, default=1000.0,
                        help="open-state probe interval (half-open single "
                             "trial) in milliseconds")


def _resilience_from_args(args: argparse.Namespace):
    """Build (RetryPolicy, BreakerConfig) from CLI flags, or (None, None)."""
    if (args.retries is None and args.deadline_ms is None
            and args.hedge_ms is None):
        return None, None
    from repro.service.client import BreakerConfig, RetryPolicy

    policy = RetryPolicy(
        retries=args.retries if args.retries is not None else 4,
        deadline=(args.deadline_ms / 1000.0
                  if args.deadline_ms is not None else 30.0),
        attempt_timeout=(args.attempt_timeout_ms / 1000.0
                         if args.attempt_timeout_ms is not None else None),
        hedge_after=(args.hedge_ms / 1000.0
                     if args.hedge_ms is not None else None),
        seed=f"retry:{args.seed}",
    )
    breaker = BreakerConfig(
        failure_threshold=args.breaker_failures,
        probe_interval=args.breaker_probe_ms / 1000.0,
    )
    return policy, breaker


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="debruijn-routing",
        description="Optimal routing in de Bruijn networks (Liu, ICDCS 1990).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_dist = sub.add_parser("distance", help="distance between two vertices")
    p_dist.add_argument("-d", type=int, required=True, help="alphabet size")
    p_dist.add_argument("source", help="source word, e.g. 0110")
    p_dist.add_argument("destination", help="destination word")

    p_route = sub.add_parser("route", help="shortest routing path")
    p_route.add_argument("-d", type=int, required=True)
    p_route.add_argument("--directed", action="store_true", help="uni-directional network")
    p_route.add_argument(
        "--method", default="auto", choices=["auto", "matching", "suffix_tree"],
        help="undirected witness computation (Algorithm 2 vs 4)",
    )
    p_route.add_argument("--no-wildcards", action="store_true", help="fix arbitrary digits to 0")
    p_route.add_argument("source")
    p_route.add_argument("destination")

    p_avg = sub.add_parser("average-distance", help="Eq. (5) vs exact average distances")
    p_avg.add_argument("-d", type=int, required=True)
    p_avg.add_argument("-k", type=int, required=True, help="largest k of the sweep")
    p_avg.add_argument("--max-pairs", type=int, default=1_048_576,
                       help="skip exact enumeration beyond this many pairs")

    p_struct = sub.add_parser("structure", help="Figure-1 structural report")
    p_struct.add_argument("-d", type=int, required=True)
    p_struct.add_argument("-k", type=int, required=True)
    p_struct.add_argument("--directed", action="store_true")

    p_sim = sub.add_parser("simulate", help="uniform-traffic network simulation")
    p_sim.add_argument("-d", type=int, required=True)
    p_sim.add_argument("-k", type=int, required=True)
    p_sim.add_argument("--cycles", type=int, default=100)
    p_sim.add_argument("--rate", type=float, default=0.05, help="injection probability per site per cycle")
    p_sim.add_argument("--router", default="optimal",
                       choices=["optimal", "optimal-unidirectional", "trivial",
                                "table"])
    p_sim.add_argument("--seed", type=int, default=7)

    p_seq = sub.add_parser("sequence", help="print a de Bruijn sequence B(d, k)")
    p_seq.add_argument("-d", type=int, required=True)
    p_seq.add_argument("-k", type=int, required=True)
    p_seq.add_argument("--method", default="fkm", choices=["fkm", "euler"])

    p_djp = sub.add_parser("disjoint-paths", help="vertex-disjoint routes between two sites")
    p_djp.add_argument("-d", type=int, required=True)
    p_djp.add_argument("source")
    p_djp.add_argument("destination")

    p_bc = sub.add_parser("broadcast", help="tree vs unicast broadcast makespans")
    p_bc.add_argument("-d", type=int, required=True)
    p_bc.add_argument("-k", type=int, required=True)
    p_bc.add_argument("--root", default=None, help="root site (default 0...0)")

    p_topo = sub.add_parser("topology", help="de Bruijn vs Kautz vs the Moore bound")
    p_topo.add_argument("-d", type=int, required=True)
    p_topo.add_argument("-k", type=int, required=True)
    p_topo.add_argument("--shootout", action="store_true",
                        help="also compare against ring/torus/hypercube at ~d^k vertices")

    p_exp = sub.add_parser("experiments", help="regenerate the static experiment tables")
    p_exp.add_argument("--only", default=None, help="one experiment id, e.g. E2")
    p_exp.add_argument("--markdown", action="store_true", help="emit Markdown instead of text")
    p_exp.add_argument("--output", default=None, help="write the report to a file")

    p_cong = sub.add_parser("congestion", help="offline congestion of permutation patterns")
    p_cong.add_argument("-d", type=int, required=True)
    p_cong.add_argument("-k", type=int, required=True)

    p_rob = sub.add_parser("robustness", help="random-failure robustness sweep")
    p_rob.add_argument("-d", type=int, required=True)
    p_rob.add_argument("-k", type=int, required=True)
    p_rob.add_argument("--fractions", default="0,0.1,0.2,0.3",
                       help="comma-separated failure fractions")
    p_rob.add_argument("--seed", type=int, default=0)

    p_sort = sub.add_parser("sort", help="distributed sort demo on the embedded array")
    p_sort.add_argument("-d", type=int, required=True)
    p_sort.add_argument("-k", type=int, required=True)
    p_sort.add_argument("--seed", type=int, default=1)

    p_render = sub.add_parser("render", help="write the graph (optionally a route) as SVG/DOT")
    p_render.add_argument("-d", type=int, required=True)
    p_render.add_argument("-k", type=int, required=True)
    p_render.add_argument("--directed", action="store_true")
    p_render.add_argument("--route", nargs=2, metavar=("SRC", "DST"),
                          help="highlight a shortest route between two sites")
    p_render.add_argument("--format", default="svg", choices=["svg", "dot"])
    p_render.add_argument("--output", default="-", help="file path, or - for stdout")

    p_ct = sub.add_parser(
        "compile-tables",
        help="compile a compact next-hop route table with the sharded BFS "
             "engine and save it to disk")
    p_ct.add_argument("-d", type=int, required=True)
    p_ct.add_argument("-k", type=int, required=True)
    p_ct.add_argument("--directed", action="store_true",
                      help="compile for the uni-directional network")
    p_ct.add_argument("--workers", type=int, default=None,
                      help="BFS shard processes (default min(4, cpus))")
    p_ct.add_argument("--chunk-size", type=int, default=None,
                      help="destination rows per work-queue item")
    p_ct.add_argument("--kernel", default="auto",
                      choices=["auto", "array", "python"],
                      help="BFS engine per chunk: the numpy whole-frontier "
                           "kernel, the pure-python loop, or auto-detect "
                           "(identical output bytes either way)")
    p_ct.add_argument("--output", default=None,
                      help="table file path (default dg<d>-<k>-<uni|bi>.routes)")
    p_ct.add_argument("--verify", type=int, default=0, metavar="PAIRS",
                      help="cross-check this many random pairs against the "
                           "pure-python distance functions after compiling")
    p_ct.add_argument("--seed", type=int, default=7, help="--verify sampling seed")

    p_chaos = sub.add_parser(
        "chaos",
        help="seeded stochastic fault-injection campaign across routing "
             "strategies (E19)")
    p_chaos.add_argument("-d", type=int, default=2)
    p_chaos.add_argument("-k", type=int, default=6)
    p_chaos.add_argument("--seed", default="chaos",
                         help="campaign seed; replaying it reproduces every "
                              "fault, loss and traffic pair")
    p_chaos.add_argument("--messages", type=int, default=300)
    p_chaos.add_argument("--spacing", type=float, default=5.0,
                         help="inter-arrival gap between injections")
    p_chaos.add_argument("--horizon", type=float, default=3000.0)
    p_chaos.add_argument("--mtbf", type=float, default=600.0,
                         help="mean time between per-site failures at "
                              "intensity 1")
    p_chaos.add_argument("--mttr", type=float, default=120.0,
                         help="mean time to repair a failed site")
    p_chaos.add_argument("--loss-rate", type=float, default=0.05,
                         help="Bernoulli per-transmission loss at intensity 1")
    p_chaos.add_argument("--regional-rate", type=float, default=0.0,
                         help="correlated regional outages per unit time at "
                              "intensity 1")
    p_chaos.add_argument("--region-prefix", type=int, default=1,
                         help="shared-prefix length defining a region")
    p_chaos.add_argument("--intensities", default="0,0.5,1.0",
                         help="comma-separated fault-intensity sweep")
    p_chaos.add_argument("--strategies", default=None,
                         help="comma-separated subset of oblivious,reroute,"
                              "detour,repair,detour-detect,repair-detect")
    p_chaos.add_argument("--membership", action="store_true",
                         help="add the SWIM detection-driven strategy legs "
                              "(detour-detect, repair-detect) to the sweep "
                              "(E20)")
    p_chaos.add_argument("--assert-improves", action="store_true",
                         help="exit nonzero unless detour and repair beat "
                              "oblivious delivery at every nonzero intensity "
                              "(with --membership, the detection legs must "
                              "beat oblivious at the highest intensity too)")

    p_det = sub.add_parser(
        "detect",
        help="SWIM failure detection on one seeded fault timeline: "
             "detection latency, false positives/negatives, overhead (E20)")
    p_det.add_argument("-d", type=int, default=2)
    p_det.add_argument("-k", type=int, default=6)
    p_det.add_argument("--seed", default="detect",
                       help="seed for the fault schedule and probe streams")
    p_det.add_argument("--horizon", type=float, default=3000.0)
    p_det.add_argument("--mtbf", type=float, default=600.0,
                       help="mean up-time per site")
    p_det.add_argument("--mttr", type=float, default=120.0,
                       help="mean outage duration")
    p_det.add_argument("--loss-rate", type=float, default=0.0,
                       help="Bernoulli loss applied to protocol packets")
    p_det.add_argument("--probe-interval", type=float, default=10.0)
    p_det.add_argument("--probe-timeout", type=float, default=3.0)
    p_det.add_argument("--suspicion", type=float, default=20.0,
                       help="suspect-to-confirm refutation window")
    p_det.add_argument("--indirect", type=int, default=2,
                       help="indirect probe helpers per silent target")
    p_det.add_argument("--assert-detects", type=float, default=None,
                       metavar="RATIO",
                       help="exit nonzero unless at least this fraction of "
                            "outages was detected")

    p_serve = sub.add_parser(
        "serve",
        help="serve route queries over TCP (asyncio, micro-batching, "
             "bounded admission; E21)")
    p_serve.add_argument("-d", type=int, required=True)
    p_serve.add_argument("-k", type=int, required=True)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="TCP port (0 binds an ephemeral port and "
                              "prints it)")
    p_serve.add_argument("--table", default=None, metavar="PATH",
                         help="mmap-load a compile-tables artifact for O(1) "
                              "lookups")
    p_serve.add_argument("--compile-table", action="store_true",
                         help="compile the undirected table in-process at "
                              "startup")
    p_serve.add_argument("--shards", action="store_true",
                         help="attach the lazy sharded table tier: compile "
                              "per-destination-prefix shards on demand under "
                              "--shard-budget-mb, falling back to the O(k) "
                              "planner for cold destinations (the big-k "
                              "answer where the full table cannot fit)")
    p_serve.add_argument("--shard-budget-mb", type=int, default=512,
                         help="resident shard byte budget in MiB; LRU shards "
                              "are evicted beyond it")
    p_serve.add_argument("--shard-rows", type=int, default=None,
                         help="destinations per shard (a power of d; default "
                              "sized from the budget)")
    p_serve.add_argument("--shard-dir", default=None, metavar="DIR",
                         help="persist compiled shards here and mmap-reload "
                              "them instead of recompiling after eviction")
    p_serve.add_argument("--shard-threshold", type=int, default=1,
                         help="queries a cold destination group needs before "
                              "its shard compile is scheduled")
    p_serve.add_argument("--kernel", default="auto",
                         choices=["auto", "array", "python"],
                         help="BFS engine for --compile-table and shard "
                              "compiles")
    p_serve.add_argument("--cache-size", type=int, default=4096,
                         help="RouteCache entries for the planner tier "
                              "(0 disables caching)")
    p_serve.add_argument("--max-pending", type=int, default=1024,
                         help="admission-queue bound; beyond it queries get "
                              "explicit OVERLOADED replies")
    p_serve.add_argument("--batch-size", type=int, default=32,
                         help="micro-batch flush size")
    p_serve.add_argument("--batch-deadline", type=float, default=0.002,
                         help="micro-batch flush deadline in seconds")
    p_serve.add_argument("--request-timeout", type=float, default=5.0)
    p_serve.add_argument("--read-timeout", type=float, default=None,
                         help="frame-completion deadline: a connection that "
                              "starts a frame must finish it within this "
                              "many seconds (slow-loris defense; idle "
                              "connections are unaffected)")
    p_serve.add_argument("--max-connections", type=int, default=None,
                         help="admission cap on concurrent connections; "
                              "beyond it new connections are closed and "
                              "counted in server.conn_rejected")
    p_serve.add_argument("--duration", type=float, default=None,
                         help="serve for this many seconds, then drain and "
                              "exit (default: until interrupted)")
    p_serve.add_argument("--stats-json", default=None, metavar="PATH",
                         help="write the final metrics snapshot to this file "
                              "on shutdown")
    p_serve.add_argument("--workers", type=int, default=1, metavar="N",
                         help="worker processes; N>1 runs the multi-core "
                              "supervisor (SO_REUSEPORT or a shared "
                              "listener), each worker mmap-loading the same "
                              "table (E23)")
    p_serve.add_argument("--listener", default="auto",
                         choices=["auto", "reuseport", "shared"],
                         help="how workers share the port: kernel "
                              "SO_REUSEPORT spreading, one shared listening "
                              "socket, or auto-detect")
    p_serve.add_argument("--max-restarts", type=int, default=3,
                         help="crashed-worker respawns before the slot is "
                              "abandoned")
    p_serve.add_argument("--slo-ms", type=float, default=None,
                         help="count replies slower than this budget in the "
                              "server.slo_violations counter")

    p_load = sub.add_parser(
        "loadgen",
        help="closed-loop load generator against a running server: "
             "capacity sweep to the knee, or a soak (E23)")
    p_load.add_argument("-d", type=int, required=True)
    p_load.add_argument("-k", type=int, required=True)
    p_load.add_argument("--host", default="127.0.0.1")
    p_load.add_argument("--port", type=int, required=True)
    p_load.add_argument("--rates", default=None, metavar="R1,R2,...",
                        help="offered-qps ladder for a capacity sweep; the "
                             "report is sustained qps at the SLO knee")
    p_load.add_argument("--queries", type=int, default=0, metavar="N",
                        help="unpaced closed-loop step sized to roughly N "
                             "queries (quick smoke; exclusive with --rates)")
    p_load.add_argument("--soak", type=float, default=0.0, metavar="SECONDS",
                        help="run a soak this long: steady load with client "
                             "churn and window-0 slams, tracking RSS drift "
                             "and per-quartile p99")
    p_load.add_argument("--rate", type=float, default=None,
                        help="offered qps during --soak (default: flat out)")
    p_load.add_argument("--connections", type=int, default=4,
                        help="closed-loop virtual users")
    p_load.add_argument("--step-duration", type=float, default=2.0,
                        help="seconds per sweep step")
    p_load.add_argument("--slo-ms", type=float, default=50.0,
                        help="p99 budget a step must meet to count as "
                             "sustained")
    p_load.add_argument("--batch", type=int, default=8,
                        help="queries per vuser round trip")
    p_load.add_argument("--directed", action="store_true")
    p_load.add_argument("--want-path", action="store_true",
                        help="ask for full paths (default: distance-only)")
    p_load.add_argument("--seed", type=int, default=1105)
    p_load.add_argument("--rss-pids", default=None, metavar="PID1,PID2,...",
                        help="sample these processes' RSS during --soak")
    p_load.add_argument("--stats-json", default=None, metavar="PATH",
                        help="write the loadgen report (and the server's "
                             "final STATS snapshot) to this file")
    p_load.add_argument("--assert-complete", action="store_true",
                        help="exit nonzero if any query was lost or errored")
    p_load.add_argument("--assert-fleet-consistent", action="store_true",
                        help="fetch STATS afterwards and exit nonzero unless "
                             "the aggregated server.queries counter equals "
                             "the client-observed answer count (fresh server "
                             "only)")
    _add_resilience_flags(p_load)

    p_query = sub.add_parser(
        "query",
        help="query a running route server: one pair, or a pipelined "
             "random burst")
    p_query.add_argument("-d", type=int, required=True)
    p_query.add_argument("-k", type=int, required=True)
    p_query.add_argument("--host", default="127.0.0.1")
    p_query.add_argument("--port", type=int, required=True)
    p_query.add_argument("source", nargs="?", default=None)
    p_query.add_argument("destination", nargs="?", default=None)
    p_query.add_argument("--directed", action="store_true")
    p_query.add_argument("--distance-only", action="store_true",
                         help="ask only for distances (lets the server "
                              "micro-batch)")
    p_query.add_argument("--burst", type=int, default=0, metavar="N",
                         help="pipeline N random pairs instead of one pair")
    p_query.add_argument("--seed", type=int, default=7,
                         help="burst pair-sampling seed")
    p_query.add_argument("--pool", type=int, default=2,
                         help="client connection-pool size for bursts")
    p_query.add_argument("--window", type=int, default=256,
                         help="in-flight queries per connection (0 = "
                              "unbounded slam)")
    p_query.add_argument("--stats", action="store_true",
                         help="fetch and print the server's STATS snapshot")
    p_query.add_argument("--stats-json", default=None, metavar="PATH",
                         help="fetch the STATS snapshot (tier breakdown "
                              "included: engine.*, shards.*) and write it "
                              "to this file")
    p_query.add_argument("--assert-min-replies", type=int, default=None,
                         metavar="N",
                         help="exit nonzero unless the server's replies "
                              "counter is at least N")
    _add_resilience_flags(p_query)

    p_chaosproxy = sub.add_parser(
        "chaosproxy",
        help="wire-level fault-injecting TCP proxy: put it between a "
             "client and a route server and inject latency, resets, "
             "corruption, bandwidth caps, trickle, and partitions from "
             "a seeded replayable plan (E24)")
    p_chaosproxy.add_argument("--host", default="127.0.0.1",
                              help="address the proxy listens on")
    p_chaosproxy.add_argument("--port", type=int, default=0,
                              help="listen port (0 binds an ephemeral port "
                                   "and prints it)")
    p_chaosproxy.add_argument("--upstream-host", default="127.0.0.1")
    p_chaosproxy.add_argument("--upstream-port", type=int, required=True,
                              help="the real server the proxy forwards to")
    p_chaosproxy.add_argument("--seed", default="chaos",
                              help="FaultPlan seed; the same seed replays "
                                   "the same per-connection fault decisions")
    p_chaosproxy.add_argument("--latency-ms", type=float, default=0.0,
                              help="added one-way latency per chunk")
    p_chaosproxy.add_argument("--jitter-ms", type=float, default=0.0,
                              help="uniform extra latency on top of "
                                   "--latency-ms")
    p_chaosproxy.add_argument("--bandwidth-kbps", type=float, default=0.0,
                              help="cap forwarded throughput (0 = no cap)")
    p_chaosproxy.add_argument("--reset-rate", type=float, default=0.0,
                              help="fraction of connections fated to a "
                                   "mid-frame RST after a seeded byte count")
    p_chaosproxy.add_argument("--corrupt-rate", type=float, default=0.0,
                              help="per-chunk probability of a flipped byte")
    p_chaosproxy.add_argument("--truncate-rate", type=float, default=0.0,
                              help="per-chunk probability of dropping the "
                                   "chunk's tail")
    p_chaosproxy.add_argument("--trickle-rate", type=float, default=0.0,
                              help="fraction of connections fated to "
                                   "slow-loris byte-at-a-time delivery")
    p_chaosproxy.add_argument("--trickle-interval", type=float, default=0.05,
                              help="seconds between trickled bytes")
    p_chaosproxy.add_argument("--partition-at", type=float, default=None,
                              metavar="SECONDS",
                              help="black-hole all traffic this long after "
                                   "start...")
    p_chaosproxy.add_argument("--partition-duration", type=float, default=1.0,
                              help="...and heal after this many seconds")
    p_chaosproxy.add_argument("--direction", default="both",
                              choices=["both", "c2s", "s2c"],
                              help="which direction the byte-level faults "
                                   "apply to")
    p_chaosproxy.add_argument("--duration", type=float, default=None,
                              help="run this long then exit (default: until "
                                   "interrupted)")
    p_chaosproxy.add_argument("--stats-json", default=None, metavar="PATH",
                              help="write the injected-fault counter "
                                   "snapshot to this file on shutdown")

    p_cluster = sub.add_parser(
        "cluster",
        help="real-process de Bruijn cluster: one OS process per "
             "prefix-shard group, SWIM membership over UDP, live "
             "self-healing route tables, and a fault drill (E25)")
    cl_sub = p_cluster.add_subparsers(dest="cluster_command", required=True)

    def _cluster_shape(p: argparse.ArgumentParser) -> None:
        p.add_argument("-d", type=int, default=2)
        p.add_argument("-k", type=int, default=5)
        p.add_argument("--nodes", type=int, default=4,
                       help="node processes (each owns a contiguous "
                            "packed-site range)")
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--probe-interval", type=float, default=0.25,
                       help="SWIM direct-probe period per node")
        p.add_argument("--probe-timeout", type=float, default=0.12)
        p.add_argument("--suspicion-timeout", type=float, default=0.6,
                       help="SUSPECT -> DEAD window (refutation deadline)")
        p.add_argument("--indirect-probes", type=int, default=1)
        p.add_argument("--repair-delay", type=float, default=0.0,
                       help="postpone the self-healing sync this long so "
                            "the detour window is observable")
        p.add_argument("--seed", default="cluster")
        p.add_argument("--workdir", default=None,
                       help="where the shared compiled table lives "
                            "(default: a fresh temp dir)")

    c_drill = cl_sub.add_parser(
        "drill",
        help="the E25 drill: SIGKILL one node under a live query burst, "
             "assert detection latency, byte-identical repair, and zero "
             "lost queries")
    _cluster_shape(c_drill)
    c_drill.add_argument("--victim", type=int, default=None,
                         help="node to SIGKILL (default: the last one)")
    c_drill.add_argument("--queries", type=int, default=10_000,
                         help="minimum queries pushed through the fault")
    c_drill.add_argument("--window", type=int, default=64,
                         help="in-flight queries per burst connection")
    c_drill.add_argument("--json", default=None, metavar="PATH",
                         help="write the full drill report to this file")
    c_drill.add_argument("--assert-complete", action="store_true",
                         help="exit nonzero unless every drill phase ran "
                              "and measured (queries in every phase, a "
                              "verdict from every survivor)")

    c_up = cl_sub.add_parser(
        "up",
        help="run a fleet in the foreground with an optional scripted "
             "fault timeline; Ctrl-C or --duration ends it")
    _cluster_shape(c_up)
    c_up.add_argument("--duration", type=float, default=None,
                      help="stop after this many seconds (default: until "
                           "interrupted)")
    c_up.add_argument("--status-interval", type=float, default=1.0,
                      help="print a fleet status line this often")
    c_up.add_argument("--kill", type=int, default=None, metavar="NODE",
                      help="SIGKILL this node at --kill-after seconds")
    c_up.add_argument("--kill-after", type=float, default=2.0)
    c_up.add_argument("--isolate", type=int, default=None, metavar="NODE",
                      help="black-hole this node's membership traffic at "
                           "--isolate-after (implies --proxies)")
    c_up.add_argument("--isolate-after", type=float, default=2.0)
    c_up.add_argument("--heal-after", type=float, default=None,
                      help="lift the isolation this many seconds in")
    c_up.add_argument("--proxies", action="store_true",
                      help="route membership traffic through per-node "
                           "chaos proxies (required for wire faults)")

    sub.add_parser("about", help="list every module of the installed package")

    return parser


def _cmd_distance(args: argparse.Namespace) -> int:
    x = parse_word(args.source, args.d)
    y = parse_word(args.destination, args.d)
    if len(x) != len(y):
        print("error: words must have equal length", file=sys.stderr)
        return 2
    witness = undirected_witness(x, y)
    print(
        format_kv_block(
            f"DG({args.d}, {len(x)}) distances {args.source} -> {args.destination}",
            [
                ("directed", directed_distance(x, y)),
                ("directed (reverse)", directed_distance(y, x)),
                ("undirected", witness.distance),
                ("witness case", witness.case),
            ],
        )
    )
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    x = parse_word(args.source, args.d)
    y = parse_word(args.destination, args.d)
    path = route(
        x, y, args.d,
        directed=args.directed,
        method=args.method,
        use_wildcards=not args.no_wildcards,
    )
    print(f"path ({len(path)} hops): {format_path(path) or '(empty)'}")
    trace = path_words(x, path, args.d)
    print("trace:", " -> ".join(format_word(w) for w in trace))
    return 0


def _cmd_average(args: argparse.Namespace) -> int:
    rows = []
    for k in range(1, args.k + 1):
        n = args.d**k
        closed = directed_average_distance_closed_form(args.d, k)
        if n * n <= args.max_pairs:
            exact_directed = directed_average_distance_exact(args.d, k)
            exact_undirected = undirected_average_distance_exact(args.d, k)
            rows.append((k, n, closed, exact_directed, closed - exact_directed, exact_undirected))
        else:
            rows.append((k, n, closed, float("nan"), float("nan"), float("nan")))
    print(
        format_table(
            ["k", "N", "eq(5)", "directed exact", "eq(5) - exact", "undirected exact"],
            rows,
        )
    )
    return 0


def _cmd_structure(args: argparse.Namespace) -> int:
    graph = DeBruijnGraph(args.d, args.k, directed=args.directed)
    report = structural_report(graph)
    print(format_kv_block(f"{graph!r}", sorted(report.items())))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.router == "optimal":
        router = BidirectionalOptimalRouter()
        bidirectional = True
    elif args.router == "optimal-unidirectional":
        router = UnidirectionalOptimalRouter()
        bidirectional = False
    elif args.router == "table":
        from repro.network.router import TableDrivenRouter

        router = TableDrivenRouter(d=args.d, k=args.k)
        bidirectional = True
    else:
        router = TrivialRouter()
        bidirectional = True
    simulator = Simulator(args.d, args.k, bidirectional=bidirectional)
    workload = uniform_random(args.d, args.k, args.cycles, args.rate, random.Random(args.seed))
    stats = run_workload(simulator, router, workload)
    print(format_kv_block(f"DN({args.d},{args.k}) {router.name}", sorted(stats.summary().items())))
    return 0


def _cmd_sequence(args: argparse.Namespace) -> int:
    from repro.graphs.sequences import debruijn_sequence_euler, debruijn_sequence_lyndon

    builder = debruijn_sequence_lyndon if args.method == "fkm" else debruijn_sequence_euler
    sequence = builder(args.d, args.k)
    print(format_word(sequence))
    print(f"# B({args.d},{args.k}) via {args.method}: length {len(sequence)}, "
          f"every length-{args.k} word appears exactly once cyclically")
    return 0


def _cmd_disjoint_paths(args: argparse.Namespace) -> int:
    from repro.graphs.debruijn import undirected_graph
    from repro.network.faults import vertex_disjoint_paths

    x = parse_word(args.source, args.d)
    y = parse_word(args.destination, args.d)
    if len(x) != len(y):
        print("error: words must have equal length", file=sys.stderr)
        return 2
    graph = undirected_graph(args.d, len(x))
    paths = vertex_disjoint_paths(graph, x, y)
    print(f"{len(paths)} internally vertex-disjoint routes "
          f"(tolerance bound d-1 = {args.d - 1}):")
    for path in paths:
        print("  " + " -> ".join(format_word(w) for w in path))
    return 0


def _cmd_broadcast(args: argparse.Namespace) -> int:
    from repro.network.broadcast import (
        broadcast_lower_bound,
        simulate_tree_broadcast,
        simulate_unicast_broadcast,
    )
    from repro.network.router import BidirectionalOptimalRouter

    root = parse_word(args.root, args.d) if args.root else (0,) * args.k
    _, tree_time = simulate_tree_broadcast(args.d, args.k, root)
    _, unicast_time = simulate_unicast_broadcast(
        args.d, args.k, root, BidirectionalOptimalRouter()
    )
    print(format_kv_block(
        f"one-to-all broadcast from {format_word(root)} in DN({args.d},{args.k})",
        [
            ("sites", args.d**args.k),
            ("lower bound (eccentricity)", broadcast_lower_bound(args.d, args.k, root)),
            ("tree-relay makespan", tree_time),
            ("unicast-storm makespan", unicast_time),
            ("speedup", unicast_time / tree_time),
        ],
    ))
    return 0


def _cmd_topology(args: argparse.Namespace) -> int:
    from repro.analysis.moore import comparison_rows

    rows = [
        (row.family, row.d, row.diameter, row.order, row.moore_bound, row.efficiency)
        for row in comparison_rows(args.d, args.k)
    ]
    print(format_table(
        ["family", "degree", "diameter", "vertices", "Moore bound", "efficiency"], rows))
    if args.shootout:
        from repro.analysis.comparison import shootout

        profiles = shootout(args.d**args.k)
        print()
        print(format_table(
            ["family", "vertices", "degree", "diameter", "mean distance", "degree growth"],
            [(p.family, p.vertices, p.degree, p.diameter, p.mean_distance, p.degree_growth)
             for p in profiles], precision=2))
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments import markdown_report, run_all, run_experiment

    if args.only:
        results = [run_experiment(args.only)]
    else:
        results = run_all()
    if args.markdown:
        rendered = markdown_report(results)
    else:
        rendered = "\n\n".join(result.to_text() for result in results)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.output}")
    else:
        print(rendered)
    return 0


def _cmd_congestion(args: argparse.Namespace) -> int:
    from repro.analysis.load import adversarial_patterns, congestion
    from repro.network.router import BidirectionalOptimalRouter, TrivialRouter

    rows = []
    for pattern, demands in adversarial_patterns(args.d, args.k).items():
        for label, router in [
            ("optimal", BidirectionalOptimalRouter(use_wildcards=False)),
            ("trivial", TrivialRouter()),
        ]:
            r = congestion(demands, router, args.d)
            rows.append((pattern, label, r.demands, r.mean_hops, r.max_load, r.fairness))
    print(format_table(
        ["pattern", "router", "demands", "mean hops", "max link load", "fairness"], rows))
    return 0


def _cmd_robustness(args: argparse.Namespace) -> int:
    from repro.analysis.robustness import random_failure_sweep

    fractions = tuple(float(f) for f in args.fractions.split(",") if f.strip())
    rows = [
        (p.failure_fraction, p.failed_count, p.component_fraction,
         p.reachable_fraction, p.mean_stretch, p.max_stretch)
        for p in random_failure_sweep(args.d, args.k, fractions, seed=args.seed)
    ]
    print(format_table(
        ["failure fraction", "failed", "largest component",
         "reachable pairs", "mean stretch", "max stretch"], rows))
    return 0


def _cmd_sort(args: argparse.Namespace) -> int:
    from repro.network.sorting import odd_even_transposition_sort, worst_case_rounds

    n = args.d**args.k
    rng = random.Random(args.seed)
    keys = [rng.randrange(10 * n) for _ in range(n)]
    result = odd_even_transposition_sort(args.d, args.k, keys)
    ok = list(result.final_keys) == sorted(keys)
    print(format_kv_block(
        f"odd-even transposition sort on DN({args.d},{args.k})",
        [
            ("sites", n),
            ("rounds used", result.rounds_used),
            ("worst case", worst_case_rounds(n)),
            ("messages", result.messages),
            ("sorted correctly", ok),
        ],
    ))
    return 0 if ok else 1


def _cmd_render(args: argparse.Namespace) -> int:
    from repro.analysis.dot import graph_to_dot
    from repro.analysis.svg import graph_to_svg
    from repro.graphs.debruijn import DeBruijnGraph

    graph = DeBruijnGraph(args.d, args.k, directed=args.directed)
    trace = None
    if args.route:
        x = parse_word(args.route[0], args.d)
        y = parse_word(args.route[1], args.d)
        trace = path_words(x, route(x, y, args.d, directed=args.directed,
                                    use_wildcards=False), args.d)
    if args.format == "svg":
        rendered = graph_to_svg(graph, highlight_path=trace)
    else:
        rendered = graph_to_dot(graph, highlight_path=trace)
    if args.output == "-":
        print(rendered)
    else:
        with open(args.output, "w") as handle:
            handle.write(rendered)
        print(f"wrote {args.output} ({len(rendered)} bytes)")
    return 0


def _cmd_compile_tables(args: argparse.Namespace) -> int:
    import time

    from repro.core.parallel import default_workers
    from repro.core.tables import CompiledRouteTable
    from repro.core.word import random_word

    workers = args.workers if args.workers is not None else default_workers()
    start = time.perf_counter()
    table = CompiledRouteTable.compile(
        args.d, args.k, directed=args.directed,
        workers=workers, chunk_size=args.chunk_size, kernel=args.kernel,
    )
    compile_seconds = time.perf_counter() - start
    output = args.output or (
        f"dg{args.d}-{args.k}-{'uni' if args.directed else 'bi'}.routes"
    )
    table.save(output)

    mismatches = 0
    if args.verify > 0:
        oracle = directed_distance if args.directed else undirected_distance
        rng = random.Random(args.seed)
        for _ in range(args.verify):
            x = random_word(args.d, args.k, rng)
            y = random_word(args.d, args.k, rng)
            expected = oracle(x, y)
            got = table.distance(x, y)
            hops = len(table.path(x, y))
            if got != expected or hops != expected:
                mismatches += 1
                print(f"MISMATCH {format_word(x)} -> {format_word(y)}: "
                      f"table distance {got}, path {hops} hops, "
                      f"oracle {expected}", file=sys.stderr)

    entries = [
        ("sites", table.order),
        ("orientation", "directed" if args.directed else "undirected"),
        ("workers", workers),
        ("kernel", args.kernel),
        ("compile seconds", round(compile_seconds, 3)),
        ("table bytes", table.nbytes),
        ("bytes per pair", table.nbytes / (table.order ** 2)),
        ("saved to", output),
    ]
    if args.verify > 0:
        entries.append(("verified pairs", args.verify))
        entries.append(("mismatches", mismatches))
    print(format_kv_block(
        f"compiled route table for DG({args.d},{args.k})", entries))
    return 1 if mismatches else 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.network.chaos import (
        DETECTION_STRATEGIES, STRATEGIES, ChaosConfig, run_campaign)

    config = ChaosConfig(
        d=args.d, k=args.k, seed=args.seed, horizon=args.horizon,
        messages=args.messages, spacing=args.spacing,
        mtbf=args.mtbf, mttr=args.mttr,
        regional_rate=args.regional_rate,
        region_prefix_len=args.region_prefix,
        loss_rate=args.loss_rate,
    )
    intensities = tuple(float(v) for v in args.intensities.split(",")
                        if v.strip())
    strategies = (tuple(s.strip() for s in args.strategies.split(","))
                  if args.strategies else STRATEGIES)
    if args.membership:
        strategies += tuple(s for s in DETECTION_STRATEGIES
                            if s not in strategies)
    records = run_campaign(config, intensities, strategies)
    print(format_table(
        ["strategy", "intensity", "delivered", "dropped", "delivery ratio",
         "stretch", "time to recover", "detoured", "repairs", "lost"],
        [(r["strategy"], r["intensity"], r["delivered"], r["dropped"],
          r["delivery_ratio"], r["mean_stretch"], r["time_to_recover"],
          r["detoured"], r["table_repairs"], r["link_lost"])
         for r in records],
        precision=3,
    ))
    detection = [r for r in records if r["membership_messages"]]
    if detection:
        print()
        print(format_table(
            ["strategy", "intensity", "detected", "mean det latency",
             "p95 det latency", "false pos", "false neg", "msgs", "bytes"],
            [(r["strategy"], r["intensity"], r["detected_outages"],
              r["mean_detection_latency"], r["p95_detection_latency"],
              r["false_positives"], r["false_negatives"],
              r["membership_messages"], r["membership_bytes"])
             for r in detection],
            precision=3,
        ))
    print(f"# seed {config.seed!r} replays this campaign exactly")
    if args.assert_improves:
        baseline = {(r["intensity"]): r["delivery_ratio"]
                    for r in records if r["strategy"] == "oblivious"}
        failures = []
        for r in records:
            if r["strategy"] in ("detour", "repair") and r["intensity"] > 0:
                floor = baseline.get(r["intensity"])
                if floor is not None and r["delivery_ratio"] <= floor:
                    failures.append(
                        f"{r['strategy']} at intensity {r['intensity']}: "
                        f"{r['delivery_ratio']:.3f} <= oblivious {floor:.3f}")
        if args.membership and intensities:
            top = max(intensities)
            if top > 0:
                floor = baseline.get(top)
                for r in records:
                    if r["strategy"] in DETECTION_STRATEGIES \
                            and r["intensity"] == top and floor is not None \
                            and r["delivery_ratio"] <= floor:
                        failures.append(
                            f"{r['strategy']} at intensity {top}: "
                            f"{r['delivery_ratio']:.3f} <= oblivious "
                            f"{floor:.3f}")
        if failures:
            for line in failures:
                print("RESILIENCE REGRESSION:", line, file=sys.stderr)
            return 1
        checked = "detour/repair"
        if args.membership:
            checked += " and the detection-driven legs"
        print(f"# resilience check passed: {checked} beat oblivious")
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    from repro.network.chaos import generate_schedule, install_link_loss
    from repro.network.membership import SwimConfig, SwimDetector

    simulator = Simulator(args.d, args.k)
    schedule = generate_schedule(
        args.d, args.k, args.horizon, seed=f"{args.seed}:faults",
        mtbf=args.mtbf, mttr=args.mttr,
    )
    schedule.apply(simulator)
    install_link_loss(simulator, args.loss_rate, seed=args.seed)
    detector = SwimDetector(
        simulator,
        SwimConfig(
            probe_interval=args.probe_interval,
            probe_timeout=args.probe_timeout,
            suspicion_timeout=args.suspicion,
            indirect_probes=args.indirect,
            seed=f"{args.seed}:swim",
        ),
        horizon=args.horizon,
    )
    detector.start()
    simulator.run()
    report = detector.finalize()
    stats = simulator.stats
    detected_ratio = (report.detected / report.outages
                      if report.outages else 1.0)
    print(format_kv_block(
        f"SWIM failure detection on DG({args.d},{args.k})",
        [
            ("sites", len(detector.sites)),
            ("horizon", args.horizon),
            ("outages", report.outages),
            ("detected", report.detected),
            ("detected ratio", round(detected_ratio, 3)),
            ("mean detection latency", round(report.mean_latency, 3)),
            ("p95 detection latency",
             round(stats.p95_detection_latency(), 3)),
            ("false positives", report.false_positives),
            ("false negatives", report.false_negatives),
            ("protocol messages", report.messages),
            ("protocol bytes", report.bytes),
            ("msgs per site per unit",
             round(report.messages
                   / (len(detector.sites) * args.horizon), 4)),
        ]))
    print(f"# seed {args.seed!r} replays this run exactly")
    if args.assert_detects is not None and detected_ratio < args.assert_detects:
        print(f"DETECTION REGRESSION: detected ratio {detected_ratio:.3f} "
              f"< required {args.assert_detects:.3f}", file=sys.stderr)
        return 1
    return 0


def _serve_spec(args: argparse.Namespace):
    """Validate serve flags into an (EngineSpec, cleanup_paths) pair.

    Multi-worker mode turns ``--compile-table`` into compile-once /
    mmap-everywhere: the supervisor process compiles, saves to a temp
    file, and every worker mmap-loads that file — the kernel page cache
    is the only copy.  ``--shards`` similarly gets a shared cache dir so
    workers reuse each other's compiled shards.
    """
    import tempfile

    from repro.service.engine import EngineSpec

    if args.table and args.compile_table:
        raise SystemExit2("--table and --compile-table are mutually exclusive")
    if args.shards and (args.table or args.compile_table):
        raise SystemExit2("--shards replaces the full table; drop --table / "
                          "--compile-table")
    if args.workers < 1:
        raise SystemExit2(f"--workers must be >= 1, got {args.workers}")
    cleanup: List[str] = []
    table_path = args.table
    compile_inproc = args.compile_table
    shard_dir = args.shard_dir
    if args.workers > 1 and args.compile_table:
        from repro.core.tables import CompiledRouteTable

        table = CompiledRouteTable.compile(args.d, args.k, kernel=args.kernel)
        handle = tempfile.NamedTemporaryFile(
            prefix="repro-table-", suffix=".bin", delete=False)
        handle.close()
        table.save(handle.name)
        table_path = handle.name
        compile_inproc = False
        cleanup.append(handle.name)
    if args.workers > 1 and args.shards and shard_dir is None:
        shard_dir = tempfile.mkdtemp(prefix="repro-shards-")
    spec = EngineSpec(
        args.d, args.k,
        table_path=table_path,
        compile_table=compile_inproc,
        shards=args.shards,
        shard_byte_budget=args.shard_budget_mb << 20,
        shard_rows=args.shard_rows,
        shard_dir=shard_dir,
        shard_threshold=args.shard_threshold,
        kernel=args.kernel,
        cache_size=args.cache_size,
    )
    return spec, cleanup


class SystemExit2(Exception):
    """A serve-flag validation error (exit code 2)."""


def _cmd_serve(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.service.server import ServerConfig

    try:
        spec, cleanup = _serve_spec(args)
    except SystemExit2 as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    server_config = ServerConfig(
        host=args.host, port=args.port, max_pending=args.max_pending,
        batch_size=args.batch_size, batch_deadline=args.batch_deadline,
        request_timeout=args.request_timeout, slo_ms=args.slo_ms,
        read_timeout=args.read_timeout,
        max_connections=args.max_connections)

    if spec.table_path or spec.compile_table:
        tier = "table"
    elif spec.shards:
        tier = f"sharded ({args.shard_budget_mb} MiB budget)"
    else:
        tier = "planner"

    try:
        if args.workers > 1:
            snapshot = _serve_fleet(args, spec, server_config, tier)
        else:
            snapshot = _serve_single(args, spec, server_config, tier)
    finally:
        for path in cleanup:
            try:
                os.unlink(path)
            except OSError:
                pass
    if args.stats_json:
        with open(args.stats_json, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.stats_json}")
    counters = snapshot.get("counters", {})
    print(format_kv_block(
        "route-query server final stats",
        [(name, counters[name]) for name in sorted(counters)
         if name.startswith(("server.", "fleet."))]))
    return 0


def _serve_single(args, spec, server_config, tier: str) -> dict:
    import asyncio

    from repro.service.server import RouteQueryServer

    engine = spec.build()
    server = RouteQueryServer(engine, server_config)

    async def _serve() -> None:
        port = await server.start()
        print(f"serving DG({args.d},{args.k}) on {args.host}:{port} "
              f"({tier} tier, queue bound {args.max_pending})", flush=True)
        try:
            if args.duration is not None:
                await asyncio.sleep(args.duration)
            else:
                while True:
                    await asyncio.sleep(3600)
        finally:
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    snapshot = server.snapshot()
    if engine.shards is not None:
        engine.shards.close()
    return snapshot


def _serve_fleet(args, spec, server_config, tier: str) -> dict:
    import asyncio
    import signal

    from repro.service.supervisor import ServiceSupervisor, SupervisorConfig

    supervisor = ServiceSupervisor(
        engine_spec=spec,
        config=SupervisorConfig(
            workers=args.workers,
            host=args.host,
            port=args.port,
            listener=args.listener,
            max_restarts=args.max_restarts,
            server=server_config,
        ),
    )

    async def _serve() -> None:
        port = await supervisor.start()
        pids = ",".join(str(pid) for pid in supervisor.worker_pids())
        print(f"serving DG({args.d},{args.k}) on {args.host}:{port} "
              f"({tier} tier, {args.workers} workers via "
              f"{supervisor.listener_mode}, pids {pids})", flush=True)
        stop = asyncio.Event()
        term_count = 0

        def _on_term() -> None:
            # First SIGTERM: graceful drain.  A second one while the
            # drain is still in flight means "now" — hard-kill the
            # stragglers instead of letting a wedged worker hold the
            # shutdown hostage for the whole drain timeout.
            nonlocal term_count
            term_count += 1
            if term_count == 1:
                stop.set()
            else:
                print("second SIGTERM: escalating to SIGKILL",
                      file=sys.stderr, flush=True)
                supervisor.escalate()

        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGTERM, _on_term)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
        try:
            if args.duration is not None:
                try:
                    await asyncio.wait_for(stop.wait(), args.duration)
                except asyncio.TimeoutError:
                    pass
            else:
                await stop.wait()
        finally:
            await supervisor.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return supervisor.final_snapshot or {}


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json

    from repro.service.client import fetch_stats
    from repro.service.loadgen import (
        LoadScenario,
        measure_soak,
        measure_step,
        measure_sweep,
    )
    from repro.service.metrics import MetricsRegistry

    scenario = LoadScenario(
        d=args.d, k=args.k, directed=args.directed,
        want_path=args.want_path, seed=args.seed)
    policy, breaker = _resilience_from_args(args)
    client_registry = MetricsRegistry() if policy is not None else None
    resilience = dict(policy=policy, breaker=breaker,
                      client_registry=client_registry)
    report: dict = {"host": args.host, "port": args.port,
                    "d": args.d, "k": args.k}
    client_answered = 0
    lost = 0
    failed = False

    if args.rates:
        rates = [float(r) for r in args.rates.split(",") if r.strip()]
        sweep = measure_sweep(
            args.host, args.port, scenario, rates,
            slo_ms=args.slo_ms, step_duration=args.step_duration,
            connections=args.connections, batch=args.batch,
            **resilience)
        report["sweep"] = sweep.to_row()
        client_answered += sum(step.queries for step in sweep.steps)
        lost += sum(step.failures for step in sweep.steps)
        entries = [("steps", len(sweep.steps)),
                   ("slo p99 ms", args.slo_ms),
                   ("sustained qps at SLO", round(sweep.sustained_qps, 1))]
        if sweep.knee is not None:
            entries.append(("knee offered qps", sweep.knee.offered_qps))
            entries.append(("knee p99 ms", round(sweep.knee.p99_ms, 3)))
        else:
            failed = True
            entries.append(("knee", "NOT FOUND (every step over SLO)"))
        print(format_kv_block("capacity sweep", entries))
    elif args.queries > 0:
        duration = max(0.2, args.step_duration)
        step = measure_step(
            args.host, args.port, scenario, duration=duration,
            connections=args.connections, slo_ms=args.slo_ms,
            batch=args.batch, **resilience)
        # Size the run to ~N queries: extend once if the first step
        # undershot badly (slow hosts), keeping the smoke bounded.
        while step.queries < args.queries and duration < 60.0:
            duration *= 2.0
            step = measure_step(
                args.host, args.port, scenario, duration=duration,
                connections=args.connections, slo_ms=args.slo_ms,
                batch=args.batch, **resilience)
        report["step"] = step.to_row()
        client_answered += step.queries
        lost += step.failures
        print(format_kv_block("closed-loop step", [
            ("queries answered", step.queries),
            ("ok", step.ok),
            ("errors", step.errors),
            ("lost", step.failures),
            ("achieved qps", round(step.achieved_qps, 1)),
            ("p50 ms", round(step.p50_ms, 3)),
            ("p99 ms", round(step.p99_ms, 3)),
        ]))

    if args.soak > 0:
        rss_pids = []
        if args.rss_pids:
            rss_pids = [int(p) for p in args.rss_pids.split(",") if p.strip()]
        soak = measure_soak(
            args.host, args.port, scenario, duration=args.soak,
            connections=args.connections, offered_qps=args.rate,
            rss_pids=rss_pids, batch=args.batch)
        report["soak"] = soak.to_row()
        client_answered += soak.queries
        lost += soak.failures
        drift = soak.rss_drift
        degradation = soak.p99_degradation
        print(format_kv_block("soak", [
            ("duration s", round(soak.duration, 1)),
            ("queries answered", soak.queries),
            ("lost", soak.failures),
            ("reconnects", soak.reconnects),
            ("window-0 slams", soak.slams),
            ("quartile p99 ms", " ".join(
                f"{v:.3f}" for v in soak.quartile_p99_ms)),
            ("p99 degradation", "n/a" if degradation is None
             else round(degradation, 3)),
            ("rss drift", "n/a" if drift is None else f"{drift:+.2%}"),
        ]))

    if not (args.rates or args.queries > 0 or args.soak > 0):
        print("error: nothing to do (give --rates, --queries, or --soak)",
              file=sys.stderr)
        return 2

    if client_registry is not None:
        client_snapshot = client_registry.snapshot()
        report["client"] = client_snapshot
        counters = client_snapshot.get("counters", {})
        print(format_kv_block(
            "hardened-client counters",
            [(name, counters[name]) for name in sorted(counters)]))

    if args.assert_fleet_consistent:
        snapshot = fetch_stats(args.host, args.port)
        report["stats"] = snapshot
        counters = snapshot.get("counters", {})
        server_queries = int(counters.get("server.queries", 0))
        per_worker = snapshot.get("fleet", {}).get("per_worker", [])
        worker_sum = sum(int(row.get("queries", 0)) for row in per_worker)
        if per_worker and worker_sum != server_queries:
            print(f"FLEET INCONSISTENT: per-worker queries sum {worker_sum} "
                  f"!= aggregated server.queries {server_queries}",
                  file=sys.stderr)
            failed = True
        if server_queries != client_answered:
            print(f"FLEET INCONSISTENT: aggregated server.queries "
                  f"{server_queries} != client-observed answers "
                  f"{client_answered}", file=sys.stderr)
            failed = True
        if not failed:
            workers = len(per_worker) if per_worker else 1
            print(f"# fleet consistent: {client_answered} answers across "
                  f"{workers} worker(s), aggregated queries match exactly")
    elif args.stats_json:
        report["stats"] = fetch_stats(args.host, args.port)

    if args.assert_complete and lost > 0:
        print(f"LOADGEN INCOMPLETE: {lost} queries lost", file=sys.stderr)
        failed = True

    if args.stats_json:
        with open(args.stats_json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.stats_json}")
    return 1 if failed else 0


def _cmd_chaosproxy(args: argparse.Namespace) -> int:
    import asyncio
    import json
    import signal

    from repro.service.chaosproxy import ChaosProxy, FaultPlan

    try:
        plan = FaultPlan(
            seed=str(args.seed),
            latency_ms=args.latency_ms,
            jitter_ms=args.jitter_ms,
            bandwidth_kbps=args.bandwidth_kbps,
            reset_rate=args.reset_rate,
            corrupt_rate=args.corrupt_rate,
            truncate_rate=args.truncate_rate,
            trickle_rate=args.trickle_rate,
            trickle_interval=args.trickle_interval,
            partition_at=args.partition_at,
            partition_duration=args.partition_duration,
            directions=args.direction,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    proxy = ChaosProxy(args.upstream_host, args.upstream_port, plan,
                       host=args.host, port=args.port)

    async def _run() -> None:
        port = await proxy.start()
        print(f"chaos proxy on {args.host}:{port} -> "
              f"{args.upstream_host}:{args.upstream_port} "
              f"(seed {plan.seed!r})", flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):
                pass
        try:
            if args.duration is not None:
                try:
                    await asyncio.wait_for(stop.wait(), args.duration)
                except asyncio.TimeoutError:
                    pass
            else:
                await stop.wait()
        finally:
            await proxy.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    snapshot = proxy.snapshot()
    counters = snapshot.get("counters", {})
    print(format_kv_block(
        "chaos proxy injected faults",
        [(name, counters[name]) for name in sorted(counters)]))
    if args.stats_json:
        with open(args.stats_json, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.stats_json}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    import json

    from repro.core.word import random_word
    from repro.service.client import (
        CLIENT_DEADLINE_MESSAGE,
        fetch_stats,
        query_once,
        run_burst,
        run_robust_burst,
    )

    policy, breaker = _resilience_from_args(args)
    client_stats: Optional[dict] = None
    did_something = False
    if args.source is not None or args.destination is not None:
        if args.source is None or args.destination is None:
            print("error: give both SOURCE and DESTINATION, or neither",
                  file=sys.stderr)
            return 2
        x = parse_word(args.source, args.d)
        y = parse_word(args.destination, args.d)
        reply = query_once(args.host, args.port, x, y, args.d,
                           directed=args.directed,
                           want_path=not args.distance_only)
        if not reply.ok:
            print(f"error reply: {reply.error_code.name} "
                  f"{reply.error_message}", file=sys.stderr)
            return 1
        print(f"distance: {reply.distance}")
        if reply.path is not None:
            print(f"path ({len(reply.path)} hops): "
                  f"{format_path(reply.path) or '(empty)'}")
            trace = path_words(x, reply.path, args.d)
            print("trace:", " -> ".join(format_word(w) for w in trace))
        did_something = True

    if args.burst > 0:
        rng = random.Random(args.seed)
        pairs = [(random_word(args.d, args.k, rng),
                  random_word(args.d, args.k, rng))
                 for _ in range(args.burst)]
        if policy is not None:
            outcome, client_stats = run_robust_burst(
                args.host, args.port, pairs, args.d,
                directed=args.directed,
                want_path=not args.distance_only,
                pool_size=args.pool, window=args.window,
                policy=policy, breaker=breaker)
        else:
            outcome = run_burst(args.host, args.port, pairs, args.d,
                                directed=args.directed,
                                want_path=not args.distance_only,
                                pool_size=args.pool, window=args.window)
        entries = [
            ("queries", len(outcome.replies)),
            ("replies ok", outcome.ok_count),
            ("elapsed seconds", round(outcome.elapsed, 4)),
            ("queries/sec", round(outcome.qps, 1)),
        ]
        for name, count in sorted(outcome.error_counts.items()):
            entries.append((f"errors {name}", count))
        if client_stats is not None:
            lost = sum(
                1 for reply in outcome.replies
                if reply.error_message == CLIENT_DEADLINE_MESSAGE)
            entries.append(("lost (client deadline)", lost))
            counters = client_stats.get("counters", {})
            entries.extend(
                (name, counters[name]) for name in sorted(counters))
        print(format_kv_block(
            f"pipelined burst against {args.host}:{args.port}", entries))
        did_something = True

    if args.stats or args.stats_json or args.assert_min_replies is not None:
        snapshot = fetch_stats(args.host, args.port)
        if client_stats is not None:
            snapshot["client"] = client_stats
        if args.stats:
            print(json.dumps(snapshot, indent=2, sort_keys=True))
        if args.stats_json:
            with open(args.stats_json, "w", encoding="utf-8") as handle:
                json.dump(snapshot, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote {args.stats_json}")
        if args.assert_min_replies is not None:
            replies = int(snapshot.get("counters", {})
                          .get("server.replies", 0))
            if replies < args.assert_min_replies:
                print(f"SERVICE REGRESSION: server.replies {replies} < "
                      f"required {args.assert_min_replies}", file=sys.stderr)
                return 1
            print(f"# stats check passed: server.replies {replies} >= "
                  f"{args.assert_min_replies}")
        did_something = True

    if not did_something:
        print("error: nothing to do (give a pair, --burst, or --stats)",
              file=sys.stderr)
        return 2
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    import json
    import signal
    import sys
    import tempfile
    import time

    from repro.cluster.harness import (ClusterHarness, ClusterSpec,
                                       run_kill_drill)
    from repro.exceptions import SimulationError

    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-cluster-")
    use_proxies = bool(getattr(args, "proxies", False)
                       or getattr(args, "isolate", None) is not None)
    spec = ClusterSpec(
        d=args.d, k=args.k, nodes=args.nodes, host=args.host,
        probe_interval=args.probe_interval,
        probe_timeout=args.probe_timeout,
        suspicion_timeout=args.suspicion_timeout,
        indirect_probes=args.indirect_probes, seed=args.seed,
        repair_delay=args.repair_delay, use_proxies=use_proxies)

    if args.cluster_command == "drill":
        # The burst's connections to the SIGKILLed node die mid-write and
        # asyncio's transport layer logs one noisy line per socket; that
        # is the drill working as intended, so keep it off the console.
        import logging
        logging.getLogger("asyncio").setLevel(logging.CRITICAL)
        try:
            report = run_kill_drill(spec, workdir, victim=args.victim,
                                    queries=args.queries,
                                    burst_window=args.window)
        except SimulationError as exc:
            print(f"cluster drill FAILED: {exc}", file=sys.stderr)
            return 1
        burst = report["fault_burst"]
        detect = report["detection_s"]
        print(f"cluster drill: d={spec.d} k={spec.k} nodes={spec.nodes} "
              f"victim={report['victim']}")
        print(f"  detection: worst {max(detect.values()) * 1000:.0f} ms "
              f"over {len(detect)} survivors "
              f"(bound {report['detection_bound_s'] * 1000:.0f} ms)")
        print(f"  repair: worst {max(report['repair_s'].values()) * 1000:.0f}"
              f" ms, digests byte-identical to a fresh compile")
        print(f"  delivery: {burst['ok']}/{burst['queries']} ok, "
              f"{burst['lost']} lost, {burst['failovers']} failovers, "
              f"{report['detoured_queries']} detoured")
        for name, phase in burst["per_phase"].items():
            print(f"    {name:>6}: {phase['ok']}/{phase['queries']}")
        if args.json:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2, sort_keys=True)
            print(f"  report -> {args.json}")
        if args.assert_complete:
            problems = []
            if burst["lost"]:
                problems.append(f"{burst['lost']} queries lost")
            if burst["per_phase"]["fault"]["queries"] == 0:
                problems.append("no queries crossed the fault window")
            if len(detect) != spec.nodes - 1:
                problems.append(
                    f"verdicts from {len(detect)} of {spec.nodes - 1} "
                    "survivors")
            if problems:
                print("cluster drill INCOMPLETE: " + "; ".join(problems),
                      file=sys.stderr)
                return 1
        return 0

    # "up": a foreground fleet with a scripted fault timeline.
    stop = False

    def _on_term(signum, frame):
        nonlocal stop
        stop = True

    try:
        signal.signal(signal.SIGTERM, _on_term)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass

    events: List[List] = []
    if args.kill is not None:
        events.append([args.kill_after, "kill", args.kill])
    if args.isolate is not None:
        events.append([args.isolate_after, "isolate", args.isolate])
        if args.heal_after is not None:
            events.append([args.heal_after, "heal", args.isolate])
    events.sort(key=lambda event: event[0])

    with ClusterHarness(spec, workdir) as harness:
        harness.up()
        print(f"cluster up: {spec.nodes} node processes over DG({spec.d},"
              f"{spec.k}), table at {harness.table_path}")
        for row in harness.status():
            print(f"  node {row['node']}: pid {row['pid']} "
                  f"tcp {row['tcp_port']} swim {row['swim_port']}")
        started = time.monotonic()
        next_status = started + args.status_interval
        try:
            while not stop:
                now = time.monotonic() - started
                if args.duration is not None and now >= args.duration:
                    break
                while events and events[0][0] <= now:
                    _, action, node = events.pop(0)
                    getattr(harness, action)(node)
                    print(f"[{now:7.2f}s] {action} node {node}")
                if time.monotonic() >= next_status:
                    parts = []
                    for row in harness.status():
                        state = "up" if row["alive"] else "DOWN"
                        mask = row.get("cluster.dead_mask", "?")
                        unrepaired = row.get("cluster.unrepaired", "?")
                        parts.append(f"{row['node']}:{state} mask={mask} "
                                     f"unrepaired={unrepaired}")
                    print(f"[{now:7.2f}s] " + "  ".join(parts))
                    next_status += args.status_interval
                time.sleep(0.05)
        except KeyboardInterrupt:
            pass
    print("cluster stopped")
    return 0


def _cmd_about(args: argparse.Namespace) -> int:
    from repro.inventory import render_inventory

    print(render_inventory())
    return 0


_COMMANDS = {
    "distance": _cmd_distance,
    "route": _cmd_route,
    "average-distance": _cmd_average,
    "structure": _cmd_structure,
    "simulate": _cmd_simulate,
    "sequence": _cmd_sequence,
    "disjoint-paths": _cmd_disjoint_paths,
    "broadcast": _cmd_broadcast,
    "topology": _cmd_topology,
    "experiments": _cmd_experiments,
    "congestion": _cmd_congestion,
    "robustness": _cmd_robustness,
    "sort": _cmd_sort,
    "render": _cmd_render,
    "compile-tables": _cmd_compile_tables,
    "chaos": _cmd_chaos,
    "detect": _cmd_detect,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "query": _cmd_query,
    "chaosproxy": _cmd_chaosproxy,
    "cluster": _cmd_cluster,
    "about": _cmd_about,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``debruijn-routing`` console script."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
