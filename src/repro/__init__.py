"""Optimal routing in de Bruijn networks.

A faithful, fully tested reproduction of

    Zhen Liu, *Optimal Routing in the De Bruijn Networks*,
    ICDCS 1990 (INRIA Research Report RR-1130, 1989).

The package is organised as:

* :mod:`repro.core` — the paper's contribution: distance functions for the
  directed and undirected de Bruijn graphs (Property 1, Theorem 2) and the
  optimal routing algorithms (Algorithms 1-4) built on Morris–Pratt
  failure functions and compact suffix (prefix) trees.
* :mod:`repro.graphs` — the DG(d, k) substrate: explicit graphs, BFS
  oracles, structural properties, de Bruijn sequences, embeddings.
* :mod:`repro.network` — a discrete-event simulator of the DN(d, k)
  message-passing network with the paper's five-field messages, wildcard
  load balancing and fault injection.
* :mod:`repro.service` — the network-facing route-query service: a
  length-prefixed wire protocol over the paper's path encoding, an
  asyncio server with micro-batching and bounded-queue backpressure, a
  pipelining client pool, and a counters/histograms metrics registry.
* :mod:`repro.analysis` — exact all-pairs analytics (numpy) and the
  table/plot helpers the benchmark harnesses print through.

Quickstart::

    from repro import route, undirected_distance

    x, y = (0, 1, 1, 0), (1, 1, 1, 0)
    print(undirected_distance(x, y))
    print([str(step) for step in route(x, y, d=2)])
"""

from repro.core import (
    Direction,
    GeneralizedSuffixTree,
    PackedSpace,
    RouteCache,
    RoutingStep,
    SuffixTree,
    Word,
    apply_path,
    distance_matrix,
    undirected_distances_many,
    directed_average_distance_closed_form,
    directed_distance,
    format_path,
    iter_words,
    parse_path,
    parse_word,
    random_word,
    route,
    shortest_path_undirected,
    shortest_path_unidirectional,
    undirected_distance,
    undirected_witness,
    verify_path,
)
from repro.exceptions import (
    DeBruijnError,
    InvalidParameterError,
    InvalidWordError,
    ProtocolError,
    RoutingError,
    ServiceError,
    SimulationError,
)
from repro.service import (
    MetricsRegistry,
    RouteQueryEngine,
    RouteQueryServer,
    RouteServiceClient,
    ServerConfig,
)

__version__ = "1.0.0"

__all__ = [
    "DeBruijnError",
    "Direction",
    "GeneralizedSuffixTree",
    "InvalidParameterError",
    "InvalidWordError",
    "MetricsRegistry",
    "PackedSpace",
    "ProtocolError",
    "RouteCache",
    "RouteQueryEngine",
    "RouteQueryServer",
    "RouteServiceClient",
    "RoutingError",
    "RoutingStep",
    "ServerConfig",
    "ServiceError",
    "SimulationError",
    "SuffixTree",
    "Word",
    "__version__",
    "apply_path",
    "directed_average_distance_closed_form",
    "directed_distance",
    "distance_matrix",
    "format_path",
    "iter_words",
    "parse_path",
    "parse_word",
    "random_word",
    "route",
    "shortest_path_undirected",
    "shortest_path_unidirectional",
    "undirected_distance",
    "undirected_distances_many",
    "undirected_witness",
    "verify_path",
]
