"""Post-install sanity check: ``python -m repro.selfcheck``.

Runs a fast battery of cross-validations (a miniature of the test suite)
and prints one line per check.  Useful after installing into a new
environment or vendoring the package; exits non-zero on any failure.
"""

from __future__ import annotations

import sys
from typing import Callable, List, Tuple

from repro.core.distance import directed_distance, undirected_distance
from repro.core.routing import shortest_path_undirected, shortest_path_unidirectional, verify_path
from repro.core.suffix_tree import SuffixTree, build_naive, canonical_form
from repro.core.word import iter_words
from repro.graphs.properties import degree_census, expected_undirected_census
from repro.graphs.debruijn import undirected_graph
from repro.graphs.sequences import debruijn_sequence_lyndon, is_debruijn_sequence


def _bfs(source, d, directed):
    from collections import deque

    from repro.core.word import left_shift, right_shift

    dist = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        nbrs = [left_shift(u, a) for a in range(d)]
        if not directed:
            nbrs += [right_shift(u, a) for a in range(d)]
        for v in nbrs:
            if v not in dist:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


def check_distances() -> str:
    """Property 1 / Theorem 2 vs BFS on every pair of DG(2,5)."""
    d, k = 2, 5
    for x in iter_words(d, k):
        directed_oracle = _bfs(x, d, True)
        undirected_oracle = _bfs(x, d, False)
        for y in iter_words(d, k):
            if directed_distance(x, y) != directed_oracle[y]:
                raise AssertionError(f"directed distance wrong at {x}, {y}")
            if undirected_distance(x, y) != undirected_oracle[y]:
                raise AssertionError(f"undirected distance wrong at {x}, {y}")
    return "Property 1 & Theorem 2 vs BFS on DG(2,5): 1024 pairs OK"


def check_routing() -> str:
    """Algorithms 1/2/4 land on the destination for all DG(2,4) pairs."""
    d, k = 2, 4
    count = 0
    for x in iter_words(d, k):
        for y in iter_words(d, k):
            p1 = shortest_path_unidirectional(x, y)
            p2 = shortest_path_undirected(x, y)
            if not verify_path(x, y, p1, d) or not verify_path(x, y, p2, d, wildcard=1):
                raise AssertionError(f"routing failed at {x}, {y}")
            count += 2
    return f"Algorithms 1/2/4 landed correctly on {count} routes"


def check_suffix_trees() -> str:
    """Ukkonen vs the naive builder on random texts."""
    import random

    rng = random.Random(7)
    for _ in range(50):
        text = tuple(rng.randrange(3) for _ in range(rng.randrange(1, 40)))
        if canonical_form(SuffixTree(text)) != canonical_form(build_naive(text)):
            raise AssertionError(f"Ukkonen != naive on {text}")
    return "Ukkonen == naive on 50 random texts"


def check_sequences() -> str:
    """FKM de Bruijn sequences are valid."""
    for d, k in [(2, 5), (3, 3)]:
        if not is_debruijn_sequence(debruijn_sequence_lyndon(d, k), d, k):
            raise AssertionError(f"FKM failed at ({d},{k})")
    return "de Bruijn sequences valid"


def check_census() -> str:
    """Undirected degree census matches the corrected formula."""
    for d, k in [(2, 4), (3, 3)]:
        graph = undirected_graph(d, k)
        if degree_census(graph) != expected_undirected_census(d, k):
            raise AssertionError(f"census mismatch at ({d},{k})")
    return "degree census matches the corrected formula"


CHECKS: List[Tuple[str, Callable[[], str]]] = [
    ("distances", check_distances),
    ("routing", check_routing),
    ("suffix-trees", check_suffix_trees),
    ("sequences", check_sequences),
    ("census", check_census),
]


def main() -> int:
    """Run all checks; 0 on success."""
    failures = 0
    for name, check in CHECKS:
        try:
            detail = check()
        except Exception as exc:  # pragma: no cover - the failure path
            failures += 1
            print(f"[FAIL] {name}: {exc}")
        else:
            print(f"[ ok ] {name}: {detail}")
    if failures:
        print(f"{failures} check(s) failed")
        return 1
    print("all self-checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
