"""Bench-trajectory I/O: the ``{"meta": ..., "results": [...]}`` envelope.

The benches append one record per run to ``BENCH_*.json`` files at the
repo root so regressions are visible over time.  Early files were bare
JSON lists of records with no provenance; this module defines the
envelope every writer now produces::

    {
      "meta": {"schema": 1, "bench": "...", <run provenance>},
      "results": [<record>, ...]
    }

The top-level ``meta`` carries the provenance of the *latest* append
(git commit, UTC timestamp, python version, CPU count) and each appended
record is stamped with the same provenance under its own ``"meta"`` key,
so older entries keep theirs as the file grows.

:func:`read_history` transparently migrates bare-list files in memory;
the first :func:`append_record` rewrites them in envelope form on disk.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import subprocess
from typing import Dict, List, Optional

#: Envelope schema version; bump on incompatible layout changes.
SCHEMA_VERSION = 1


def git_commit(cwd: Optional[str] = None) -> str:
    """The current git commit hash, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else "unknown"


def bench_meta(cwd: Optional[str] = None) -> Dict[str, object]:
    """Provenance for one bench run: commit, timestamp, python, CPUs."""
    from repro.core.parallel import available_cpus

    now = datetime.datetime.now(datetime.timezone.utc)
    return {
        "git_commit": git_commit(cwd),
        "timestamp": now.isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpus": available_cpus(),
    }


def read_history(path: str) -> List[Dict[str, object]]:
    """The result records in ``path`` (empty for missing/corrupt files).

    Accepts both the envelope and the legacy bare-list layout, so readers
    written against this function survive the migration either way.
    """
    if not os.path.exists(path):
        return []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (ValueError, OSError):  # pragma: no cover - corrupt file
        return []
    if isinstance(payload, list):  # legacy bare list
        return [r for r in payload if isinstance(r, dict)]
    if isinstance(payload, dict):
        results = payload.get("results", [])
        if isinstance(results, list):
            return [r for r in results if isinstance(r, dict)]
    return []


def append_record(path: str, record: Dict[str, object],
                  bench: str) -> Dict[str, object]:
    """Append one run record to ``path``, writing the envelope layout.

    Stamps the record with :func:`bench_meta` provenance (unless it
    already carries a ``"meta"`` key), migrates legacy bare-list files,
    and returns the envelope that was written.
    """
    meta = bench_meta(cwd=os.path.dirname(os.path.abspath(path)) or None)
    stamped = dict(record)
    stamped.setdefault("meta", meta)
    history = read_history(path)
    history.append(stamped)
    envelope: Dict[str, object] = {
        "meta": {"schema": SCHEMA_VERSION, "bench": bench, **meta},
        "results": history,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(envelope, handle, indent=2)
        handle.write("\n")
    return envelope
