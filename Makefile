# Developer entry points for the debruijn-routing reproduction.

PYTHON ?= python

.PHONY: install test bench bench-smoke examples lint all clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-smoke:
	$(PYTHON) -m pytest benchmarks/ -q -k smoke

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script > /dev/null || exit 1; \
	done; echo "all examples ran cleanly"

record:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

all: install test bench examples

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks build dist *.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
