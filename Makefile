# Developer entry points for the debruijn-routing reproduction.

PYTHON ?= python

.PHONY: install test bench bench-smoke serve-smoke capacity-smoke chaos-smoke cluster-smoke examples lint record all clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-smoke:
	$(PYTHON) -m pytest benchmarks/ -q -k smoke

# Boot a route-query server on DG(2,6), fire a pipelined burst at it,
# and assert the stats frame saw every reply; the server exits on its
# own via --duration so the target never leaks a process.
serve-smoke:
	@$(PYTHON) -m repro.cli serve -d 2 -k 6 --port 7531 --duration 10 & \
	server=$$!; \
	sleep 1; \
	$(PYTHON) -m repro.cli query -d 2 -k 6 --port 7531 --burst 300 \
		--pool 2 --assert-min-replies 300 || { kill $$server; exit 1; }; \
	wait $$server

# Boot a 2-worker SO_REUSEPORT fleet, push ~2k closed-loop queries
# through it, and assert the fleet-wide STATS aggregation matches the
# client-observed answer count exactly (E23 capacity smoke).
capacity-smoke:
	@$(PYTHON) -m repro.cli serve -d 2 -k 8 --port 7535 --compile-table \
		--workers 2 --duration 25 & \
	server=$$!; \
	sleep 2; \
	$(PYTHON) -m repro.cli loadgen -d 2 -k 8 --port 7535 \
		--queries 2000 --step-duration 0.5 --assert-complete \
		--assert-fleet-consistent || { kill $$server; exit 1; }; \
	wait $$server

# Boot a 2-worker fleet, put the fault-injecting TCP proxy in front of
# it (every connection fated for a mid-stream reset, plus 1 ms added
# latency), and push a closed-loop burst through the hardened client —
# --assert-complete fails the target if a single query is lost (E24).
chaos-smoke:
	@$(PYTHON) -m repro.cli serve -d 2 -k 8 --port 7541 --compile-table \
		--workers 2 --read-timeout 5 --duration 40 & \
	server=$$!; \
	sleep 2; \
	$(PYTHON) -m repro.cli chaosproxy --port 7542 --upstream-port 7541 \
		--seed make-chaos --reset-rate 0.5 --latency-ms 1 \
		--duration 25 & \
	proxy=$$!; \
	sleep 1; \
	$(PYTHON) -m repro.cli loadgen -d 2 -k 8 --port 7542 \
		--queries 400 --step-duration 0.5 \
		--retries 8 --deadline-ms 20000 --assert-complete \
		|| { kill $$server $$proxy; exit 1; }; \
	wait $$proxy; \
	wait $$server

# Bring up a real 3-process cluster, SIGKILL one node under a live
# query burst, and assert the E25 invariants end to end: SWIM detection
# within the analytic bound, every survivor's table repaired
# byte-identical to a fresh compile, zero lost queries through the
# fault (--assert-complete also demands traffic actually crossed it).
cluster-smoke:
	$(PYTHON) -m repro.cli cluster drill -d 2 -k 5 --nodes 3 \
		--queries 2000 --probe-interval 0.15 --probe-timeout 0.08 \
		--suspicion-timeout 0.4 --repair-delay 0.25 --assert-complete

lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
	@echo "lint (compileall) clean"

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script > /dev/null || exit 1; \
	done; echo "all examples ran cleanly"

record:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

all: install test bench examples

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks build dist *.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
