"""E5 — correctness throughput: every algorithm vs the BFS oracle.

Not a table in the paper, but the substance of Sections 2-3: Property 1,
Theorem 2 and Algorithms 1/2/4 must produce *optimal* routes.  This bench
re-verifies all of them against vectorised BFS ground truth over every
ordered pair of a mid-sized graph while timing the verification sweep —
effectively the distance-computation throughput of the implementation.
"""

from __future__ import annotations

from repro.analysis.exact import directed_distance_matrix, undirected_distance_matrix
from repro.analysis.tables import format_table
from repro.core.distance import directed_distance, undirected_distance
from repro.core.routing import (
    apply_path,
    shortest_path_undirected,
    shortest_path_unidirectional,
)
from repro.core.word import iter_words, word_to_int

D, K = 2, 5  # 32 vertices, 1024 ordered pairs


def _verify_directed():
    matrix = directed_distance_matrix(D, K)
    mismatches = 0
    pairs = 0
    for x in iter_words(D, K):
        for y in iter_words(D, K):
            pairs += 1
            expected = int(matrix[word_to_int(x, D), word_to_int(y, D)])
            if directed_distance(x, y) != expected:
                mismatches += 1
            path = shortest_path_unidirectional(x, y)
            if len(path) != expected or apply_path(x, path, D) != y:
                mismatches += 1
    return pairs, mismatches


def _verify_undirected(method):
    matrix = undirected_distance_matrix(D, K)
    mismatches = 0
    pairs = 0
    for x in iter_words(D, K):
        for y in iter_words(D, K):
            pairs += 1
            expected = int(matrix[word_to_int(x, D), word_to_int(y, D)])
            if undirected_distance(x, y, method) != expected:
                mismatches += 1
            path = shortest_path_undirected(x, y, method=method)
            if len(path) != expected or apply_path(x, path, D, wildcard=1) != y:
                mismatches += 1
    return pairs, mismatches


def test_property1_and_algorithm1_all_pairs(benchmark, report):
    pairs, mismatches = benchmark(_verify_directed)
    assert mismatches == 0
    report(f"E5 — directed DG({D},{K}): {pairs} ordered pairs, {mismatches} mismatches "
           "(Property 1 + Algorithm 1 vs BFS)")


def test_theorem2_algorithm2_all_pairs(benchmark, report):
    pairs, mismatches = benchmark(_verify_undirected, "matching")
    assert mismatches == 0
    report(f"E5 — undirected DG({D},{K}) via Algorithm 2 (matching): "
           f"{pairs} pairs, {mismatches} mismatches")


def test_theorem2_algorithm4_all_pairs(benchmark, report):
    pairs, mismatches = benchmark(_verify_undirected, "suffix_tree")
    assert mismatches == 0
    report(f"E5 — undirected DG({D},{K}) via Algorithm 4 (suffix tree): "
           f"{pairs} pairs, {mismatches} mismatches")


def test_distance_throughput_summary(benchmark, report):
    """Raw pairs/second of the three distance kernels on DG(2, 8)."""
    import time

    words = list(iter_words(2, 8))[:64]

    def throughput():
        rows = []
        for name, fn in [
            ("directed (Property 1)", lambda x, y: directed_distance(x, y)),
            ("undirected (Alg 2)", lambda x, y: undirected_distance(x, y, "matching")),
            ("undirected (Alg 4)", lambda x, y: undirected_distance(x, y, "suffix_tree")),
        ]:
            start = time.perf_counter()
            count = 0
            for x in words:
                for y in words:
                    fn(x, y)
                    count += 1
            elapsed = time.perf_counter() - start
            rows.append((name, count, count / elapsed))
        return rows

    rows = benchmark.pedantic(throughput, rounds=1, iterations=1)
    report("E5 — distance computation throughput on DG(2, 8) labels\n"
           + format_table(["kernel", "pairs", "pairs/s"], rows, precision=0))
