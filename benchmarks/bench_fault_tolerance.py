"""E7 — fault tolerance: the cited Pradhan–Reddy d−1 guarantee, in motion.

Paper Section 1: de Bruijn networks "are able to tolerate up to d − 1
processor failures".  This bench checks the guarantee structurally
(connectivity under every/random (d−1)-subset of failures, vertex-disjoint
route families) and dynamically (delivery rates with hop-by-hop rerouting
as the failure count crosses the d − 1 threshold).
"""

from __future__ import annotations

import random
from itertools import combinations, islice

from repro.analysis.tables import format_table
from repro.graphs.debruijn import undirected_graph
from repro.network.faults import is_connected_after_failures, vertex_disjoint_paths
from repro.network.router import BidirectionalOptimalRouter
from repro.network.simulator import Simulator
from repro.network.traffic import random_pairs


def test_connectivity_under_d_minus_1_failures(benchmark, report):
    """Exhaustive/sampled subsets of d−1 failures never disconnect."""

    def sweep():
        rows = []
        for d, k, budget in [(2, 4, None), (2, 5, None), (3, 3, 400), (4, 2, 400)]:
            graph = undirected_graph(d, k)
            words = list(graph.vertices())
            subsets = combinations(words, d - 1)
            if budget is not None:
                subsets = islice(subsets, budget)
            checked = 0
            failures = 0
            for failed in subsets:
                checked += 1
                if not is_connected_after_failures(graph, failed):
                    failures += 1
            rows.append((d, k, d - 1, checked, failures))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert all(row[-1] == 0 for row in rows)
    report("E7 — connectivity after any (d-1)-subset of site failures\n"
           + format_table(["d", "k", "failures injected", "subsets checked", "disconnections"],
                          rows))


def test_disjoint_path_families(benchmark, report):
    """Greedy vertex-disjoint route counts meet the d−1 bound."""

    def count_paths():
        rows = []
        for d, k in [(2, 4), (3, 3), (4, 2)]:
            graph = undirected_graph(d, k)
            rng = random.Random(d * 100 + k)
            words = list(graph.vertices())
            minimum = None
            total = 0
            trials = 40
            for _ in range(trials):
                x, y = rng.choice(words), rng.choice(words)
                while y == x:
                    y = rng.choice(words)
                found = len(vertex_disjoint_paths(graph, x, y))
                total += found
                minimum = found if minimum is None else min(minimum, found)
            rows.append((d, k, d - 1, minimum, total / trials))
        return rows

    rows = benchmark.pedantic(count_paths, rounds=1, iterations=1)
    for _, _, bound, minimum, _ in rows:
        assert minimum >= bound
    report("E7 — greedy vertex-disjoint path families (40 random pairs each)\n"
           + format_table(["d", "k", "d-1 bound", "min found", "mean found"], rows))


def test_delivery_rate_vs_failure_count(benchmark, report):
    """Delivery under rerouting as failures cross the tolerance threshold."""
    d, k = 3, 3  # tolerance d-1 = 2

    def sweep():
        rows = []
        for failed_count in range(0, 5):
            rng = random.Random(42 + failed_count)
            words = [w for w in undirected_graph(d, k).vertices()]
            failed = rng.sample(words, failed_count)
            sim = Simulator(d, k, reroute_on_failure=True)
            for w in failed:
                sim.fail_node(w, at=0.0)
            survivors = [w for w in words if w not in failed]
            sent = 0
            for t, x, y in random_pairs(d, k, count=300, spacing=0.5, rng=rng):
                if x in survivors and y in survivors:
                    sim.send(x, y, BidirectionalOptimalRouter(), at=t + 1.0)
                    sent += 1
            stats = sim.run()
            rows.append((failed_count, sent, stats.delivered_count,
                         stats.delivered_count / sent, stats.rerouted))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for failed_count, sent, delivered, rate, _ in rows:
        if failed_count <= d - 1:
            # Within the tolerance bound every surviving pair stays
            # connected, so rerouting must deliver everything.
            assert delivered == sent
    report(f"E7 — DN({d},{k}) delivery with hop-by-hop rerouting (tolerance d-1 = {d - 1})\n"
           + format_table(["failed sites", "sent", "delivered", "delivery rate", "reroutes"],
                          rows))
