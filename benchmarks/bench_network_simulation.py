"""E6 — end-to-end routing in the simulated DN(d, k) (paper Section 3).

The paper defines the message format and per-site forwarding rule but
reports no system numbers; this bench supplies the system evaluation a
reader would want:

* mean hop counts under uniform traffic for the optimal router vs the
  trivial diameter-path router vs BFS next-hop tables — the hop savings
  the distance functions predict (δ̄ vs k), observed in motion;
* the wildcard ``*`` ablation: identical path lengths, better load
  spreading (the paper's "traffic could be more or less balanced" remark);
* the memory ablation: table-driven routing pays O(N) cells per
  destination while the paper's routers carry no state.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.exact import undirected_average_distance
from repro.analysis.tables import format_table
from repro.graphs.debruijn import undirected_graph
from repro.network.router import (
    BidirectionalOptimalRouter,
    RandomMinimalRouter,
    TableDrivenRouter,
    TrivialRouter,
)
from repro.network.simulator import Simulator, run_workload
from repro.network.traffic import random_pairs

D, K = 2, 6  # 64 sites
MESSAGES = 600


def _workload():
    return random_pairs(D, K, count=MESSAGES, spacing=0.25, rng=random.Random(1990))


def _simulate(router):
    simulator = Simulator(D, K)
    return run_workload(simulator, router, list(_workload()))


def test_router_comparison_uniform_traffic(benchmark, report):
    """Optimal vs table-driven vs trivial under the same message stream."""

    def run_all():
        routers = [
            # cache_size=0: this ablation measures the *required* memory of
            # address-computable routing (the paper's zero-table claim), so
            # the optional RouteCache memoization (E17) is switched off.
            BidirectionalOptimalRouter(cache_size=0),
            TableDrivenRouter(undirected_graph(D, K)),
            TrivialRouter(),
        ]
        rows = []
        for router in routers:
            stats = _simulate(router)
            summary = stats.summary()
            rows.append((
                router.name,
                summary["delivered"],
                summary["mean_hops"],
                summary["mean_latency"],
                summary["p95_latency"],
                summary["max_link_load"],
                router.memory_cells(),
            ))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    by_name = {row[0]: row for row in rows}
    optimal = by_name["optimal-bidirectional[auto]"]
    table = by_name["table-driven[bi]"]
    trivial = by_name["trivial"]
    assert optimal[1] == table[1] == trivial[1] == MESSAGES  # all delivered
    assert optimal[2] == pytest.approx(table[2])  # both shortest
    assert trivial[2] == pytest.approx(K)  # diameter path every time
    assert optimal[2] < trivial[2]
    assert optimal[6] == 0 and table[6] > 0  # the memory ablation
    predicted = undirected_average_distance(D, K)
    report(f"E6 — DN({D},{K}) uniform traffic, {MESSAGES} messages "
           f"(predicted mean distance δ̄ = {predicted:.3f})\n"
           + format_table(
               ["router", "delivered", "mean hops", "mean latency",
                "p95 latency", "max link load", "table cells"],
               rows, precision=3)
           + "\nshape: optimal ≈ δ̄ hops; trivial = k hops; tables pay O(N)/destination memory.")


def test_wildcard_load_balancing_ablation(benchmark, report):
    """The paper's ``*`` remark: same distance, better balance."""

    def run_ablation():
        rows = []
        from repro.network.router import AdaptiveGreedyRouter

        strategies = [
            ("wildcards (*)", BidirectionalOptimalRouter(use_wildcards=True)),
            ("fixed filler 0", BidirectionalOptimalRouter(use_wildcards=False)),
            ("random minimal", RandomMinimalRouter(D, seed=1990)),
            ("adaptive greedy", AdaptiveGreedyRouter(D)),
        ]
        for label, router in strategies:
            stats = _simulate(router)
            summary = stats.summary()
            rows.append((
                label,
                summary["mean_hops"],
                summary["max_link_load"],
                summary["load_fairness"],
                summary["mean_queue_delay"],
            ))
        return rows

    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    wild, fixed, randomized, adaptive = rows
    assert wild[1] == pytest.approx(fixed[1]) == pytest.approx(randomized[1])
    assert adaptive[1] == pytest.approx(fixed[1])  # all four stay minimal
    assert wild[2] <= fixed[2]  # no worse hot link
    assert wild[3] >= fixed[3] - 1e-9  # no worse fairness
    assert randomized[3] >= fixed[3] - 1e-9  # randomisation spreads load too
    # Adaptive greedy reacts to queue state; at this light load queues are
    # mostly empty, so its deterministic tie-bias can make the static load
    # picture *worse* — its payoff shows up in queueing delay under
    # pressure (see E10), not in idle-network link counts.  Sanity only:
    assert adaptive[2] <= 1.5 * fixed[2]
    report("E6 (ablation) — arbitrary-digit policy: wildcard vs fixed vs randomised vs adaptive\n"
           + format_table(
               ["policy", "mean hops", "max link load", "Jain fairness", "mean queue delay"],
               rows)
           + "\nrandomised routing wins the static balance; adaptive greedy only pays off"
           "\nonce queues actually form (it reads live link state, not history).")


def test_simulation_throughput(benchmark):
    """pytest-benchmark timing of one full 600-message simulation."""
    result = benchmark(lambda: _simulate(BidirectionalOptimalRouter()).delivered_count)
    assert result == MESSAGES
