"""E25 — real-process cluster: detection, delivery, repair, recovery.

The earlier resilience experiments all ran inside the simulator.  E25
measures the same claims on real OS processes and real sockets: a
:class:`~repro.cluster.harness.ClusterHarness` fleet (one process per
prefix-shard group, SWIM membership over UDP) is SIGKILLed under a live
query burst, and the drill records

* **detection latency** — kill to each survivor's DEAD verdict, against
  the analytic SWIM bound;
* **per-phase delivery** — queries answered before / through / after
  the fault window, with the zero-lost invariant enforced;
* **repair** — wall time until every survivor's table digest is
  byte-identical to a fresh ``compile_with_failures``;
* **recovery** — a SIGSTOP'd node is convicted, then SIGCONT'd: it must
  refute, rejoin, and the fleet must converge back to the pristine
  table (detection-driven healing is reversible).

Results append to ``BENCH_cluster.json`` (benchio envelope).  The whole
bench is smoke-sized: small graph, fast SWIM timers.
"""

from __future__ import annotations

import logging
import os
import time
from typing import Dict, List

from repro.analysis.tables import format_kv_block, format_table
from repro.benchio import append_record
from repro.cluster.harness import ClusterHarness, ClusterSpec, run_kill_drill

JSON_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_cluster.json")

SPEC = ClusterSpec(
    d=2, k=5, nodes=4,
    probe_interval=0.15, probe_timeout=0.08, suspicion_timeout=0.4,
    indirect_probes=1, repair_delay=0.25, seed="bench-e25",
)
DRILLS = 2
QUERIES = 1_200

# The victim's dying connections make asyncio's transport layer log one
# line per socket; that is the drill working, not a bench failure.
logging.getLogger("asyncio").setLevel(logging.CRITICAL)


def _pause_resume_recovery(workdir: str) -> Dict[str, float]:
    """SIGSTOP a node until conviction, SIGCONT it, time the rejoin."""
    with ClusterHarness(SPEC, workdir) as harness:
        harness.up()
        victim = SPEC.nodes - 1
        pause_stamp = harness.pause(victim)
        verdicts = harness.wait_for_verdict([victim])
        convict_s = max(verdicts.values()) - pause_stamp
        harness.wait_repaired([victim])

        resume_stamp = harness.resume(victim)
        pristine = harness.expected_digest([])
        deadline = time.monotonic() + SPEC.detection_bound() + 15.0
        while True:
            rows = [harness.counters(node) for node in range(SPEC.nodes)]
            if all(row.get("cluster.dead_mask", -1) == 0
                   and row.get("cluster.unrepaired", -1) == 0
                   and row.get("cluster.table_digest") == pristine
                   for row in rows):
                break
            if time.monotonic() > deadline:
                raise AssertionError("fleet did not reconverge after "
                                     "SIGCONT")
            time.sleep(0.02)
        rejoin_s = time.monotonic() - resume_stamp
    return {"convict_s": convict_s, "rejoin_s": rejoin_s}


def test_cluster_kill_drill_smoke(benchmark, report, tmp_path):
    """The E25 drill suite; writes BENCH_cluster.json."""

    def measure():
        drills = [
            run_kill_drill(SPEC, str(tmp_path / f"drill{i}"),
                           queries=QUERIES, burst_window=32)
            for i in range(DRILLS)
        ]
        recovery = _pause_resume_recovery(str(tmp_path / "recovery"))
        return drills, recovery

    drills, recovery = benchmark.pedantic(measure, rounds=1, iterations=1)

    bound = SPEC.detection_bound()
    detections: List[float] = []
    repairs: List[float] = []
    phases = {"before": [0, 0], "fault": [0, 0], "healed": [0, 0]}
    lost = failovers = detoured = queries = 0
    for drill in drills:
        # run_kill_drill already raised on any broken invariant; fold
        # the measurements into one distribution across drills/survivors.
        detections.extend(drill["detection_s"].values())
        repairs.extend(drill["repair_s"].values())
        burst = drill["fault_burst"]
        lost += burst["lost"]
        failovers += burst["failovers"]
        queries += burst["queries"]
        detoured += drill["detoured_queries"]
        for name, phase in burst["per_phase"].items():
            phases[name][0] += phase["queries"]
            phases[name][1] += phase["ok"]
    assert lost == 0
    assert max(detections) <= bound
    assert recovery["convict_s"] <= bound
    assert phases["fault"][0] > 0  # traffic really crossed the fault

    detections.sort()
    record = {
        "bench": "cluster",
        "spec": dict(drills[0]["spec"]),
        "drills": DRILLS,
        "queries_total": queries,
        "lost": lost,
        "failovers": failovers,
        "detoured_queries": detoured,
        "detection_s": {
            "samples": detections,
            "min": detections[0],
            "p50": detections[len(detections) // 2],
            "max": detections[-1],
            "bound": bound,
        },
        "repair_s": {"min": min(repairs), "max": max(repairs)},
        "per_phase_delivery": {
            name: {"queries": total, "ok": ok}
            for name, (total, ok) in phases.items()
        },
        "pause_resume": recovery,
    }
    append_record(JSON_PATH, record, bench="cluster")

    report(format_kv_block(
        f"E25 cluster drills (d={SPEC.d}, k={SPEC.k}, "
        f"{SPEC.nodes} processes, {DRILLS} drills)", [
            ("queries through faults", queries),
            ("lost", lost),
            ("client failovers", failovers),
            ("detoured during window", detoured),
            ("detection p50 / max (s)",
             f"{record['detection_s']['p50']:.3f} / "
             f"{record['detection_s']['max']:.3f}"),
            ("detection bound (s)", f"{bound:.3f}"),
            ("repair max (s)", f"{max(repairs):.3f}"),
            ("SIGSTOP conviction (s)", f"{recovery['convict_s']:.3f}"),
            ("SIGCONT rejoin (s)", f"{recovery['rejoin_s']:.3f}"),
        ])
        + "\n\n"
        + format_table(
            ["phase", "queries", "ok"],
            [[name, total, ok] for name, (total, ok) in phases.items()],
        ))
