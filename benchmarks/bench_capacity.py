"""E23 — Capacity model: sustained-at-SLO qps per worker count, + soak.

Burst throughput (E21) says how fast the service *can* answer; this
bench says how fast it answers **while staying healthy**, which is the
number a capacity plan needs:

1. **Capacity sweep per worker count** — for W in {1, min(4, cpus)} a
   :class:`~repro.service.supervisor.SupervisorThread` fleet serves
   DG(2,12) from one shared mmap table, and the closed-loop generator
   (:mod:`repro.service.loadgen`) walks an offered-load ladder sized
   from an unpaced probe.  Each step is rated against the p99 SLO
   (``SLO_MS``); the report is the *knee*: the highest step with p99
   within SLO and ≥ 99.9 % of queries answered.  The cpu-gated bar:
   with ≥ 2 CPUs the W-worker fleet must sustain ≥ 1.8× the one-worker
   figure (explicit skip on 1-CPU containers, never a silent pass).
2. **Soak** — ≥ 60 s of steady load at ~60 % of the knee with client
   churn (short-lived vusers reconnecting) and window-0 slams (full
   burst in flight at once, exercising the OVERLOADED path), sampling
   worker RSS from ``/proc``.  The run must show **no drift**: fleet
   RSS growth < 10 % and last-quartile p99 ≤ 1.25× first-quartile p99
   (+1 ms absolute grace for scheduler noise at sub-millisecond p99s).

Records append to ``BENCH_service.json`` (``bench="capacity"``) so the
service history and its capacity model live in one file, distinguished
by envelope.  ``test_capacity_smoke`` is the CI ``capacity-smoke`` job:
a 2-worker fleet on DG(2,8), ~2k queries, and the STATS aggregation
identity — the fleet-wide ``server.queries`` counter must equal the
client-observed answer count *exactly*.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List

import pytest

from repro.analysis.tables import format_kv_block, format_table
from repro.benchio import append_record
from repro.core.parallel import available_cpus, compile_table_buffers
from repro.core.tables import CompiledRouteTable
from repro.service.client import fetch_stats
from repro.service.engine import EngineSpec
from repro.service.loadgen import (
    LoadScenario,
    measure_soak,
    measure_step,
    measure_sweep,
)
from repro.service.supervisor import SupervisorConfig, SupervisorThread

GRAPH = (2, 12)
SLO_MS = 50.0
SEED = 0xE23
STEP_SECONDS = 2.0
SOAK_SECONDS = 60.0
CONNECTIONS = 4
BATCH = 8
#: The cpu-gated scale-out bar (acceptance criterion of PR 7).
SCALEOUT_MIN = 1.8
JSON_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_service.json")


def _spec(tmp_path, d: int, k: int) -> EngineSpec:
    """Compile DG(d,k) once and describe it as a shared mmap table."""
    dist, act = compile_table_buffers(d, k, directed=False,
                                      workers=min(4, available_cpus()))
    table = CompiledRouteTable(d, k, False, bytes(act), bytes(dist))
    path = str(tmp_path / f"capacity-{d}-{k}.routes")
    table.save(path)
    return EngineSpec(d, k, table_path=path)


def _rate_ladder(probe_qps: float) -> List[float]:
    """An offered-load ladder bracketing the unpaced probe throughput."""
    top = max(200.0, probe_qps)
    return [round(top * fraction) for fraction in
            (0.4, 0.6, 0.8, 1.0, 1.2)]


def _measure_capacity(spec: EngineSpec, scenario: LoadScenario,
                      workers: int) -> Dict[str, object]:
    """Probe, sweep, and rate one fleet size."""
    with SupervisorThread(
        spec, SupervisorConfig(workers=workers)
    ) as fleet:
        probe = measure_step(
            "127.0.0.1", fleet.port, scenario,
            duration=STEP_SECONDS / 2, connections=CONNECTIONS, batch=BATCH)
        sweep = measure_sweep(
            "127.0.0.1", fleet.port, scenario,
            rates=_rate_ladder(probe.achieved_qps),
            slo_ms=SLO_MS, step_duration=STEP_SECONDS,
            connections=CONNECTIONS, batch=BATCH, warmup=0.0)
        listener = fleet.supervisor.listener_mode
    row = sweep.to_row()
    row.update({
        "workers": workers,
        "listener": listener,
        "probe_qps": round(probe.achieved_qps, 1),
        "per_worker_sustained_qps": round(
            sweep.sustained_qps / workers, 1),
    })
    return row


def test_capacity(benchmark, report, tmp_path):
    """The full E23 measurement; appends to BENCH_service.json."""
    d, k = GRAPH
    scenario = LoadScenario(d=d, k=k, want_path=False, seed=SEED)

    def measure() -> Dict[str, object]:
        record: Dict[str, object] = {
            "graph": {"d": d, "k": k, "n": d**k},
            "cpus": available_cpus(),
            "slo_ms": SLO_MS,
        }
        start = time.perf_counter()
        spec = _spec(tmp_path, d, k)
        record["table_compile_seconds"] = time.perf_counter() - start
        fleet_sizes = sorted({1, min(4, max(1, available_cpus()))})
        record["capacity"] = [
            _measure_capacity(spec, scenario, workers)
            for workers in fleet_sizes
        ]
        by_workers = {row["workers"]: row for row in record["capacity"]}
        top = max(by_workers)
        record["scaleout_workers"] = top
        base = by_workers[1]["sustained_qps"]
        record["scaleout_speedup"] = (
            by_workers[top]["sustained_qps"] / base if base else 0.0
        )

        # Soak the top fleet at ~60 % of its knee for a minute.
        soak_rate = by_workers[top]["sustained_qps"] * 0.6 or None
        with SupervisorThread(
            spec, SupervisorConfig(workers=top)
        ) as fleet:
            soak = measure_soak(
                "127.0.0.1", fleet.port, scenario,
                duration=SOAK_SECONDS, connections=CONNECTIONS,
                offered_qps=soak_rate, rss_pids=fleet.worker_pids(),
                churn_every=5.0, slam_size=512, batch=BATCH)
        record["soak"] = soak.to_row()
        record["soak"]["workers"] = top
        record["soak"]["offered_qps"] = soak_rate
        return record

    record = benchmark.pedantic(measure, rounds=1, iterations=1)
    append_record(JSON_PATH, record, bench="capacity")

    report(f"E23 — DG({d},{k}) sustained capacity at p99 <= {SLO_MS} ms "
           f"({record['cpus']} CPU(s))\n"
           + format_table(
               ["workers", "probe qps", "sustained qps", "qps/worker",
                "knee offered"],
               [[row["workers"], row["probe_qps"], row["sustained_qps"],
                 row["per_worker_sustained_qps"],
                 row["knee_offered_qps"] or 0]
                for row in record["capacity"]], precision=1)
           + f"\nscale-out: {record['scaleout_speedup']:.2f}x at "
           f"{record['scaleout_workers']} workers (bar: >= "
           f"{SCALEOUT_MIN}x, cpu-gated)")
    soak = record["soak"]
    report(f"E23 — {SOAK_SECONDS:.0f}s soak, {soak['workers']} worker(s)\n"
           + format_kv_block("churn + window-0 slams", [
               ("queries answered", soak["queries"]),
               ("lost", soak["failures"]),
               ("reconnects", soak["reconnects"]),
               ("slams", soak["slams"]),
               ("quartile p99 ms", " ".join(
                   str(v) for v in soak["quartile_p99_ms"])),
               ("rss drift", soak["rss_drift"]),
           ]))

    # Soak health binds on every host (not cpu-gated): no leak, no
    # latency drift between the first and last quartile.
    assert soak["failures"] == 0, f"soak lost {soak['failures']} queries"
    assert soak["slams"] >= 2, "soak never slammed the admission queue"
    drift = soak["rss_drift"]
    assert drift is None or drift < 0.10, (
        f"fleet RSS drifted {drift:+.1%} over the soak (bar: < 10%)"
    )
    first, last = (soak["quartile_p99_ms"][0], soak["quartile_p99_ms"][3])
    assert last <= 1.25 * first + 1.0, (
        f"p99 degraded over the soak: first quartile {first:.3f} ms -> "
        f"last quartile {last:.3f} ms (bar: <= 1.25x + 1 ms)"
    )

    # The scale-out bar only binds where workers can run in parallel —
    # on a 1-CPU container it is an explicit SKIP, never a silent pass.
    if record["cpus"] < 2 or record["scaleout_workers"] < 2:
        pytest.skip(
            f"{record['cpus']} CPU(s) available; the >= {SCALEOUT_MIN}x "
            f"scale-out bar requires >= 2 CPUs"
        )
    assert record["scaleout_speedup"] >= SCALEOUT_MIN, (
        f"{record['scaleout_workers']} workers sustained only "
        f"{record['scaleout_speedup']:.2f}x one worker at the "
        f"{SLO_MS} ms SLO (bar: {SCALEOUT_MIN}x)"
    )


@pytest.mark.smoke
def test_capacity_smoke(tmp_path):
    """CI capacity-smoke: 2 workers, ~2k queries, exact STATS identity."""
    d, k = 2, 8
    scenario = LoadScenario(d=d, k=k, want_path=False, seed=SEED)
    spec = _spec(tmp_path, d, k)
    with SupervisorThread(spec, SupervisorConfig(workers=2)) as fleet:
        assert len(fleet.worker_pids()) == 2
        step = measure_step("127.0.0.1", fleet.port, scenario,
                            duration=0.5, connections=4, batch=8)
        while step.queries < 2000:
            more = measure_step("127.0.0.1", fleet.port, scenario,
                                duration=0.5, connections=4, batch=8)
            step = type(step)(
                offered_qps=None, duration=step.duration + more.duration,
                queries=step.queries + more.queries, ok=step.ok + more.ok,
                errors=step.errors + more.errors,
                failures=step.failures + more.failures,
                achieved_qps=0.0, p50_ms=max(step.p50_ms, more.p50_ms),
                p95_ms=max(step.p95_ms, more.p95_ms),
                p99_ms=max(step.p99_ms, more.p99_ms),
                max_ms=max(step.max_ms, more.max_ms))
        assert step.failures == 0 and step.errors == 0

        snapshot = fetch_stats("127.0.0.1", fleet.port)
        fleet_info = snapshot["fleet"]
        per_worker = fleet_info["per_worker"]
        assert fleet_info["workers"] == 2 and len(per_worker) == 2

        # The aggregation identity: fleet counter == sum of workers ==
        # what the client actually saw answered.  Exact, not approximate.
        worker_sum = sum(row["queries"] for row in per_worker)
        assert worker_sum == snapshot["counters"]["server.queries"]
        assert worker_sum == step.queries, (
            f"fleet counted {worker_sum} queries, client observed "
            f"{step.queries}"
        )

        # Merged p99 is monotone w.r.t. the per-worker p99 bounds
        # (one 1.75x bucket ratio of interpolation slack each way).
        merged_p99 = snapshot["histograms"]["server.latency_seconds"]["p99"]
        worker_p99s = [row["p99_ms"] / 1e3 for row in per_worker
                       if row["queries"]]
        assert merged_p99 <= max(worker_p99s) * 1.75 + 1e-9
        assert merged_p99 >= min(worker_p99s) / 1.75 - 1e-9
