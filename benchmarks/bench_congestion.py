"""E12 (extension) — offline congestion of adversarial permutations.

The static counterpart of E6: route the classical permutation stress
patterns and measure the induced link loads.  The optimal router's
shorter routes cut total traffic; the congestion (max link load) shows
which patterns are genuinely hard for de Bruijn topologies (address-
transform permutations that funnel many pairs through few links).
"""

from __future__ import annotations

from repro.analysis.load import adversarial_patterns, congestion
from repro.analysis.tables import format_table
from repro.network.router import BidirectionalOptimalRouter, TrivialRouter, ValiantRouter

D, K = 2, 6


def test_adversarial_pattern_congestion(benchmark, report):
    """Max/mean link load per pattern: optimal vs trivial vs Valiant."""

    def sweep():
        rows = []
        for pattern, demands in adversarial_patterns(D, K).items():
            for label, router in [
                ("optimal", BidirectionalOptimalRouter(use_wildcards=False)),
                ("trivial", TrivialRouter()),
                ("valiant", ValiantRouter(D, K, seed=1990)),
            ]:
                report_ = congestion(demands, router, D)
                rows.append((
                    pattern,
                    label,
                    report_.demands,
                    report_.mean_hops,
                    report_.max_load,
                    report_.mean_load,
                    report_.fairness,
                ))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_key = {(row[0], row[1]): row for row in rows}
    for pattern in adversarial_patterns(D, K):
        optimal = by_key[(pattern, "optimal")]
        trivial = by_key[(pattern, "trivial")]
        valiant = by_key[(pattern, "valiant")]
        assert optimal[3] <= trivial[3] + 1e-9  # mean hops never worse
        assert optimal[3] <= K
        # Valiant pays up to two optimal legs and its load is pattern-
        # independent (≈ two uniform loads) — never much above 2·δ̄ hops.
        assert valiant[3] <= 2 * K
    # The cyclic shift is the de Bruijn home game: every route is 1 hop.
    assert by_key[("cyclic-shift", "optimal")][3] == 1.0
    report(f"E12 (extension) — offline congestion of permutation patterns on DN({D},{K})\n"
           + format_table(
               ["pattern", "router", "demands", "mean hops", "max link load",
                "mean link load", "fairness"], rows, precision=3)
           + "\ncyclic shifts ride single de Bruijn edges; reversal/complement pay"
           "\nnear-diameter routes.  Negative finding: Valiant's two-phase insurance"
           "\nbuys little here — the optimal router's address algebra already"
           "\ndecorrelates the classical patterns, so Valiant mostly doubles hops.")
