"""E13 (extension) — distributed sorting on the embedded linear array.

Executes the Samatham–Pradhan "sorting network" claim: one key per site,
odd–even transposition over the dilation-1 Hamiltonian-path embedding.
Rounds scale as N (the algorithm's bound) and every round is a single
parallel cycle of one-hop exchanges — only possible because the embedding
has dilation 1.
"""

from __future__ import annotations

import random

from repro.analysis.tables import format_table
from repro.network.sorting import odd_even_transposition_sort, worst_case_rounds

SIZES = [(2, 3), (2, 4), (2, 5), (2, 6), (2, 7), (3, 3), (3, 4)]


def test_sorting_scaling(benchmark, report):
    """Rounds and message counts across network sizes."""

    def sweep():
        rows = []
        for d, k in SIZES:
            n = d**k
            rng = random.Random(n)
            keys = [rng.randrange(10 * n) for _ in range(n)]
            result = odd_even_transposition_sort(d, k, keys)
            assert list(result.final_keys) == sorted(keys)
            rows.append((d, k, n, result.rounds_used, worst_case_rounds(n),
                         result.messages, result.messages / n))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for d, k, n, rounds_used, bound, messages, _ in rows:
        assert rounds_used <= bound
        # Each round exchanges ~n/2 pairs at 2 messages each: ~n msgs/round.
        assert messages <= bound * n
    report("E13 (extension) — odd-even transposition sort on the embedded array\n"
           + format_table(["d", "k", "sites", "rounds", "bound N", "messages",
                           "messages/site"], rows, precision=1)
           + "\none parallel cycle per round, one hop per exchange (dilation-1 embedding).")


def test_sorting_throughput(benchmark):
    """pytest-benchmark timing of a 128-site sort."""
    rng = random.Random(9)
    keys = [rng.randrange(10_000) for _ in range(128)]
    result = benchmark(odd_even_transposition_sort, 2, 7, keys)
    assert list(result.final_keys) == sorted(keys)
