"""E24 — Wire-level chaos campaign: the hardened stack vs real faults.

E19/E20 injected faults into the *simulated* network; this bench
injects them into real sockets.  A :class:`~repro.service.supervisor.
SupervisorThread` fleet serves DG(2,10) behind the fault-injecting TCP
proxy of :mod:`repro.service.chaosproxy`, whose seeded
:class:`~repro.service.chaosproxy.FaultPlan` makes every campaign
replayable: the same seed re-draws the same per-connection fates
(which connections reset mid-frame, which trickle) and the same
per-chunk corruption decisions.

The campaign, per fault class (baseline / latency+jitter / bandwidth
cap / mid-frame resets / corruption+truncation / slow-loris trickle):

1. **Robust client** — a 10k-query burst through the proxy with
   retries, deadline budget, adaptive window, and inner
   progress-aware reconnect (:class:`~repro.service.client.
   RobustRouteClient`).  The bar: **zero lost queries** for every
   class, plus a bounded-latency probe (p99 of a closed-loop step
   under the same faults must stay under ``P99_BOUND_MS``).
2. **Naive client** — the plain pipelining client with ``reconnect=0``
   (reset and corruption classes only; a naive client on a trickled
   wire just hangs).  The bar is the *contrast*: resets and corruption
   must cause measurable loss without the hardening.

Two scenarios ride along:

* **Partition / heal** — the proxy black-holes all traffic; the
  client's circuit breaker must open, and after :meth:`heal` the
  first successful burst must land within one breaker probe interval.
* **Hung worker** — SIGSTOP a worker: the pid stays alive and the
  socket stays open, so only the supervisor's heartbeat can tell.
  The bar: detection + SIGKILL + respawn within the heartbeat budget,
  accounted against the same ``max_restarts`` budget as crashes.

Records append to ``BENCH_service_chaos.json`` (``bench="service_chaos"``).
``test_service_chaos_smoke`` is the CI ``chaos-e2e-smoke`` companion:
a small fleet, reset+latency faults, a 400-query robust burst, zero
loss.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time
from dataclasses import asdict
from typing import Dict, Optional

import pytest

from repro.analysis.tables import format_kv_block, format_table
from repro.benchio import append_record
from repro.core.parallel import available_cpus, compile_table_buffers
from repro.core.tables import CompiledRouteTable
from repro.core.word import random_word
from repro.exceptions import ServiceError
from repro.service.chaosproxy import ChaosProxyThread, FaultPlan
from repro.service.client import (
    BreakerConfig,
    RetryPolicy,
    RobustRouteClient,
    run_burst,
    run_robust_burst,
)
from repro.service.engine import EngineSpec
from repro.service.loadgen import LoadScenario, measure_step
from repro.service.server import ServerConfig
from repro.service.supervisor import SupervisorConfig, SupervisorThread

import random as _random

GRAPH = (2, 10)
N_QUERIES = 10_000
SEED = 0xE24
PLAN_SEED = "e24"
#: Closed-loop p99 bound under every fault class ("bounded", not "tight";
#: a retried batch pays backoff + a fresh attempt).
P99_BOUND_MS = 5_000.0
#: Breaker probe interval for the partition scenario; recovery after
#: heal must land within one interval.
PROBE_SECONDS = 1.0
JSON_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_service_chaos.json")

#: The campaign grid.  Every plan shares PLAN_SEED, so the whole
#: campaign replays from one seed.
FAULT_CLASSES = [
    ("baseline", FaultPlan(seed=PLAN_SEED)),
    ("latency", FaultPlan(seed=PLAN_SEED, latency_ms=1.0, jitter_ms=2.0)),
    ("bandwidth", FaultPlan(seed=PLAN_SEED, bandwidth_kbps=2_000.0)),
    ("reset", FaultPlan(seed=PLAN_SEED, reset_rate=1.0)),
    ("corruption", FaultPlan(seed=PLAN_SEED, corrupt_rate=0.05,
                             truncate_rate=0.02)),
    ("trickle", FaultPlan(seed=PLAN_SEED, trickle_rate=0.25,
                          trickle_interval=0.02)),
]
#: Classes where the naive client must show measurable loss (the rest
#: either lose nothing even naively, or simply hang a naive client).
NAIVE_CLASSES = {"baseline", "reset", "corruption"}

ROBUST_POLICY = RetryPolicy(retries=8, deadline=120.0, attempt_timeout=5.0,
                            seed="e24-robust")
ROBUST_BREAKER = BreakerConfig(failure_threshold=8,
                               probe_interval=PROBE_SECONDS)


def _spec(tmp_path, d: int, k: int) -> EngineSpec:
    """Compile DG(d,k) once and describe it as a shared mmap table."""
    dist, act = compile_table_buffers(d, k, directed=False,
                                     workers=min(4, available_cpus()))
    table = CompiledRouteTable(d, k, False, bytes(act), bytes(dist))
    path = str(tmp_path / f"chaos-{d}-{k}.routes")
    table.save(path)
    return EngineSpec(d, k, table_path=path)


def _fleet_config(workers: int = 2) -> SupervisorConfig:
    """A hardened fleet: read deadlines + admission cap on every worker."""
    return SupervisorConfig(
        workers=workers,
        server=ServerConfig(read_timeout=5.0, max_connections=256),
    )


def _pairs(d: int, k: int, count: int, seed: int):
    rng = _random.Random(seed)
    return [(random_word(d, k, rng), random_word(d, k, rng))
            for _ in range(count)]


def _robust_burst(port: int, pairs, d: int) -> Dict[str, object]:
    """One hardened burst through the proxy; returns the scorecard."""
    outcome, client_stats = run_robust_burst(
        "127.0.0.1", port, pairs, d, want_path=False,
        pool_size=2, window=256,
        policy=ROBUST_POLICY, breaker=ROBUST_BREAKER)
    counters = client_stats.get("counters", {})
    return {
        "queries": len(outcome.replies),
        "ok": outcome.ok_count,
        "lost": outcome.lost_count,
        "elapsed_s": round(outcome.elapsed, 3),
        "qps": round(outcome.qps, 1),
        "client": {name: counters[name] for name in sorted(counters)},
    }


def _naive_burst(port: int, pairs, d: int) -> Dict[str, object]:
    """The plain client, reconnect=0: the contrast measurement."""
    try:
        outcome = run_burst("127.0.0.1", port, pairs, d,
                            want_path=False, pool_size=2, window=256,
                            reconnect=0)
    except (ServiceError, ConnectionError, OSError) as exc:
        return {"completed": False, "lost": len(pairs),
                "error": type(exc).__name__}
    errors = len(outcome.replies) - outcome.ok_count
    return {"completed": True, "lost": errors, "ok": outcome.ok_count,
            "error": None}


def _p99_probe(port: int, scenario: LoadScenario) -> Dict[str, object]:
    """A short closed-loop step under the same faults: the p99 bound."""
    step = measure_step(
        "127.0.0.1", port, scenario, duration=2.0, connections=2,
        batch=8, policy=ROBUST_POLICY, breaker=ROBUST_BREAKER)
    return {"queries": step.queries, "lost": step.failures,
            "p50_ms": round(step.p50_ms, 3), "p99_ms": round(step.p99_ms, 3)}


def _measure_class(name: str, plan: FaultPlan, spec: EngineSpec,
                   pairs, scenario: LoadScenario) -> Dict[str, object]:
    """One fault class: fresh fleet, fresh proxy, robust + naive runs."""
    d = spec.d
    row: Dict[str, object] = {"class": name, "plan": asdict(plan)}
    with SupervisorThread(spec, _fleet_config()) as fleet:
        with ChaosProxyThread("127.0.0.1", fleet.port, plan) as proxy:
            row["robust"] = _robust_burst(proxy.port, pairs, d)
            row["probe"] = _p99_probe(proxy.port, scenario)
            if name in NAIVE_CLASSES:
                row["naive"] = _naive_burst(proxy.port, pairs, d)
            else:
                row["naive"] = None
            counters = proxy.snapshot().get("counters", {})
            row["proxy"] = {k: counters[k] for k in sorted(counters)}
    return row


def _measure_partition(spec: EngineSpec, d: int, k: int) -> Dict[str, object]:
    """Partition -> breaker opens; heal -> recovery within one probe.

    One :class:`RobustRouteClient` lives across the whole scenario so
    the breaker state carries over: opened by the partition, it must
    half-open on its next probe after the heal and close again — the
    recovery time is gated by the probe interval, which is exactly
    what the bar measures.
    """
    policy = RetryPolicy(retries=50, deadline=2.0, attempt_timeout=0.4,
                         backoff_base=0.02, backoff_max=0.2,
                         seed="e24-part")
    breaker = BreakerConfig(failure_threshold=3,
                            probe_interval=PROBE_SECONDS)
    row: Dict[str, object] = {"probe_interval_s": PROBE_SECONDS}
    with SupervisorThread(spec, _fleet_config()) as fleet:
        with ChaosProxyThread("127.0.0.1", fleet.port,
                              FaultPlan(seed=PLAN_SEED)) as proxy:

            async def _scenario() -> None:
                async with RobustRouteClient(
                    "127.0.0.1", proxy.port, d=d,
                    policy=policy, breaker=breaker,
                ) as client:
                    out = await client.query_many(
                        _pairs(d, k, 50, 11), want_path=False)
                    assert out.lost_count == 0, \
                        "pre-partition burst lost queries"

                    proxy.partition()
                    out = await client.query_many(
                        _pairs(d, k, 50, 12), want_path=False)
                    counters = client.registry.snapshot()["counters"]
                    row["during_partition_lost"] = out.lost_count
                    row["breaker_opens"] = counters.get(
                        "client.breaker_open", 0)

                    proxy.heal()
                    healed_at = time.perf_counter()
                    out = await client.query_many(
                        _pairs(d, k, 50, 13), want_path=False)
                    row["recovery_s"] = round(
                        time.perf_counter() - healed_at, 3)
                    row["post_heal_lost"] = out.lost_count

            asyncio.run(_scenario())
    return row


def _measure_hung_worker(spec: EngineSpec) -> Dict[str, object]:
    """SIGSTOP a worker; the heartbeat must recycle it under budget."""
    config = SupervisorConfig(
        workers=2, max_restarts=3,
        heartbeat_interval=0.2, heartbeat_timeout=1.0,
        server=ServerConfig(read_timeout=5.0))
    budget_s = config.heartbeat_timeout + 5 * config.heartbeat_interval + 4.0
    row: Dict[str, object] = {
        "heartbeat_interval_s": config.heartbeat_interval,
        "heartbeat_timeout_s": config.heartbeat_timeout,
        "budget_s": budget_s,
    }
    with SupervisorThread(spec, config) as fleet:
        victim = fleet.worker_pids()[0]
        os.kill(victim, signal.SIGSTOP)
        stopped_at = time.perf_counter()
        detected: Optional[float] = None
        while time.perf_counter() - stopped_at < budget_s:
            agg = fleet.aggregate()
            hung = agg.get("fleet", {}).get("hung_recycles", 0)
            pids = fleet.worker_pids()
            if hung >= 1 and len(pids) == config.workers \
                    and victim not in pids:
                detected = time.perf_counter() - stopped_at
                break
            time.sleep(0.1)
        agg = fleet.aggregate()
        row["detected_and_respawned_s"] = (
            round(detected, 3) if detected is not None else None)
        row["hung_recycles"] = agg.get("fleet", {}).get("hung_recycles", 0)
        row["restarts_used"] = agg.get("fleet", {}).get("restarts", 0)
    return row


def test_service_chaos(benchmark, report, tmp_path):
    """The full E24 campaign; appends to BENCH_service_chaos.json."""
    d, k = GRAPH
    scenario = LoadScenario(d=d, k=k, want_path=False, seed=SEED)
    pairs = _pairs(d, k, N_QUERIES, SEED)

    def measure() -> Dict[str, object]:
        spec = _spec(tmp_path, d, k)
        record: Dict[str, object] = {
            "graph": {"d": d, "k": k, "n": d ** k},
            "n_queries": N_QUERIES,
            "plan_seed": PLAN_SEED,
            "policy": asdict(ROBUST_POLICY),
            "p99_bound_ms": P99_BOUND_MS,
        }
        record["classes"] = [
            _measure_class(name, plan, spec, pairs, scenario)
            for name, plan in FAULT_CLASSES
        ]
        record["partition"] = _measure_partition(spec, d, k)
        record["hung_worker"] = _measure_hung_worker(spec)
        return record

    record = benchmark.pedantic(measure, rounds=1, iterations=1)
    append_record(JSON_PATH, record, bench="service_chaos")

    report(f"E24 — DG({d},{k}) wire-level chaos campaign, "
           f"{N_QUERIES} queries per class (plan seed {PLAN_SEED!r})\n"
           + format_table(
               ["class", "robust lost", "robust qps", "probe p99 ms",
                "naive lost", "retries", "resets inj"],
               [[row["class"], row["robust"]["lost"],
                 row["robust"]["qps"], row["probe"]["p99_ms"],
                 ("-" if row["naive"] is None
                  else row["naive"]["lost"]),
                 row["robust"]["client"].get("client.retries", 0),
                 row["proxy"].get("proxy.resets_injected", 0)]
                for row in record["classes"]], precision=1))
    part = record["partition"]
    hung = record["hung_worker"]
    report(format_kv_block("partition / heal + hung worker", [
        ("breaker opens during partition", part["breaker_opens"]),
        ("recovery after heal s", part["recovery_s"]),
        ("probe interval s", part["probe_interval_s"]),
        ("hung detected+respawned s", hung["detected_and_respawned_s"]),
        ("hung recycles", hung["hung_recycles"]),
        ("restart budget used", hung["restarts_used"]),
    ]))

    # -- acceptance: the hardened stack loses nothing, anywhere --------
    for row in record["classes"]:
        assert row["robust"]["lost"] == 0, (
            f"{row['class']}: robust client lost "
            f"{row['robust']['lost']} of {N_QUERIES} queries")
        assert row["probe"]["lost"] == 0, (
            f"{row['class']}: closed-loop probe lost queries")
        assert row["probe"]["p99_ms"] <= P99_BOUND_MS, (
            f"{row['class']}: p99 {row['probe']['p99_ms']} ms over the "
            f"{P99_BOUND_MS} ms bound")

    # -- and the contrast: without hardening, faults mean loss ---------
    by_class = {row["class"]: row for row in record["classes"]}
    assert by_class["baseline"]["naive"]["lost"] == 0, (
        "naive client lost queries on a clean wire")
    for name in ("reset", "corruption"):
        assert by_class[name]["naive"]["lost"] > 0, (
            f"{name}: the naive client lost nothing — the fault class "
            f"is not actually biting")
        assert by_class[name]["proxy"].get(
            "proxy.resets_injected", 0) + by_class[name]["proxy"].get(
            "proxy.bytes_corrupted", 0) > 0, (
            f"{name}: the proxy injected no faults")

    # -- partition heals within one probe interval ---------------------
    assert part["breaker_opens"] >= 1, "the breaker never opened"
    assert part["post_heal_lost"] == 0, "queries lost after heal"
    assert part["recovery_s"] <= part["probe_interval_s"] + 0.25, (
        f"recovery took {part['recovery_s']} s, over one probe "
        f"interval ({part['probe_interval_s']} s)")

    # -- hung worker: detected, recycled, budget-accounted -------------
    assert hung["detected_and_respawned_s"] is not None, (
        f"hung worker not recycled within {hung['budget_s']} s")
    assert hung["hung_recycles"] >= 1
    assert hung["restarts_used"] >= 1, (
        "hung recycle did not charge the shared restart budget")


@pytest.mark.smoke
def test_service_chaos_smoke(tmp_path):
    """CI chaos-e2e-smoke: reset+latency faults, zero loss, ~seconds."""
    d, k = 2, 8
    spec = _spec(tmp_path, d, k)
    plan = FaultPlan(seed="e24-smoke", reset_rate=0.5, latency_ms=1.0)
    pairs = _pairs(d, k, 400, SEED)
    with SupervisorThread(spec, _fleet_config()) as fleet:
        with ChaosProxyThread("127.0.0.1", fleet.port, plan) as proxy:
            row = _robust_burst(proxy.port, pairs, d)
            counters = proxy.snapshot().get("counters", {})
    assert row["lost"] == 0, f"smoke lost {row['lost']} queries"
    assert row["ok"] == len(pairs)
    assert counters.get("proxy.connections", 0) >= 1
