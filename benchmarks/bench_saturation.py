"""E10 (extension) — load-latency curves: where does DN(d, k) saturate?

The classical interconnection-network evaluation the paper predates:
sweep the injection rate under uniform traffic and record mean latency
and delivered throughput.  Shorter routes consume less aggregate link
bandwidth, so the optimal router both starts lower *and* saturates at a
higher offered load than the trivial diameter-path router — quantifying
what "optimal routing" buys a real network beyond per-message hops.
"""

from __future__ import annotations

import random

from repro.analysis.tables import format_table
from repro.network.router import BidirectionalOptimalRouter, TrivialRouter
from repro.network.simulator import Simulator, run_workload
from repro.network.traffic import uniform_random

D, K = 2, 5
CYCLES = 160
RATES = (0.02, 0.05, 0.10, 0.20, 0.35)


def _run(router, rate: float):
    simulator = Simulator(D, K)
    workload = list(uniform_random(D, K, CYCLES, rate, random.Random(int(rate * 1000))))
    stats = run_workload(simulator, router, workload)
    return stats


def test_load_latency_curve(benchmark, report):
    """Sweep offered load for the optimal and trivial routers."""

    def sweep():
        rows = []
        for rate in RATES:
            for router_factory, label in [
                (BidirectionalOptimalRouter, "optimal"),
                (TrivialRouter, "trivial"),
            ]:
                stats = _run(router_factory(), rate)
                rows.append((
                    label,
                    rate,
                    stats.delivered_count,
                    stats.mean_latency(),
                    stats.p95_latency(),
                    stats.mean_queue_delay(),
                ))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_key = {(label, rate): row for row in rows for label, rate in [(row[0], row[1])]}
    for rate in RATES:
        optimal = by_key[("optimal", rate)]
        trivial = by_key[("trivial", rate)]
        # The optimal router is never slower at equal offered load.
        assert optimal[3] <= trivial[3] + 1e-9
    # Contention must actually bite at the top rate for the trivial router
    # (otherwise the sweep is not reaching saturation territory).
    assert by_key[("trivial", RATES[-1])][5] > by_key[("trivial", RATES[0])][5]
    report(f"E10 (extension) — DN({D},{K}) load sweep, {CYCLES} cycles of uniform traffic\n"
           + format_table(
               ["router", "inj. rate", "delivered", "mean latency",
                "p95 latency", "mean queue delay"], rows, precision=3)
           + "\nshorter optimal routes consume less bandwidth: lower latency at every load"
           + "\nand a later saturation knee than the diameter-path strawman.")


def test_latency_grows_with_load(benchmark, report):
    """Queueing delay is monotone-ish in offered load (optimal router)."""

    def sweep():
        return [(rate, _run(BidirectionalOptimalRouter(), rate).mean_queue_delay())
                for rate in RATES]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert rows[-1][1] >= rows[0][1]
    report("E10 — queueing delay vs offered load (optimal router)\n"
           + format_table(["inj. rate", "mean queue delay"], rows))


def test_analytic_model_vs_simulation(benchmark, report):
    """The M/D/1-based closed form tracks the simulator below saturation."""
    from repro.analysis.exact import undirected_average_distance
    from repro.analysis.queueing import predict_uniform_latency, saturation_rate
    from repro.graphs.debruijn import undirected_graph

    graph = undirected_graph(D, K)
    n_links = 2 * graph.size()
    delta = undirected_average_distance(D, K)

    def sweep():
        rows = []
        for rate in RATES:
            prediction = predict_uniform_latency(graph.order, n_links, rate, delta)
            measured = _run(BidirectionalOptimalRouter(), rate).mean_latency()
            rows.append((rate, prediction.link_utilisation, prediction.latency,
                         measured, measured / prediction.latency))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for rate, rho, predicted, measured, ratio in rows:
        assert rho < 1.0
        assert 0.6 < ratio < 1.6  # tracks within ~±50% across the sweep
    report(f"E10 — analytic M/D/1 prediction vs simulation "
           f"(δ̄ = {delta:.3f}, saturation rate ≈ "
           f"{saturation_rate(graph.order, n_links, delta):.3f})\n"
           + format_table(["inj. rate", "rho", "predicted latency",
                           "measured latency", "measured/predicted"], rows))


def test_adaptive_routing_pays_off_under_pressure(benchmark, report):
    """Live link-state routing beats fixed paths once queues form (rate 0.5)."""
    from repro.network.router import AdaptiveGreedyRouter

    HEAVY = 0.5

    def run_heavy():
        rows = []
        for label, make in [
            ("fixed canonical", lambda: BidirectionalOptimalRouter(use_wildcards=False)),
            ("wildcards (*)", lambda: BidirectionalOptimalRouter()),
            ("adaptive greedy", lambda: AdaptiveGreedyRouter(D)),
        ]:
            stats = _run(make(), HEAVY)
            rows.append((label, stats.mean_latency(), stats.mean_queue_delay(),
                         stats.p95_latency()))
        return rows

    rows = benchmark.pedantic(run_heavy, rounds=1, iterations=1)
    fixed, wild, adaptive = rows
    assert adaptive[2] <= fixed[2]  # adaptivity beats the fixed path...
    assert wild[2] <= fixed[2]  # ...and so does wildcard resolution
    report(f"E10 (ablation) — routing adaptivity at heavy load (rate {HEAVY})\n"
           + format_table(["policy", "mean latency", "mean queue delay", "p95 latency"],
                          rows)
           + "\nper-hop link-state choice (adaptive, wildcards) sheds queueing that"
           "\nthe fixed canonical path must eat; the gap widens with offered load.")
