"""E11 (extension) — bufferless deflection routing vs store-and-forward.

The equal in/out degree of DG(d, k) is what makes hot-potato routing
possible at all; the preferred output port per packet is exactly
Algorithm 1's next digit.  This bench sweeps injection rates in the
synchronous bufferless model and compares against the buffered
store-and-forward simulator at matched offered load, reporting latency
and the deflection overhead.
"""

from __future__ import annotations

import random

from repro.analysis.tables import format_table
from repro.network.deflection import DeflectionNetwork, uniform_deflection_workload
from repro.network.router import UnidirectionalOptimalRouter
from repro.network.simulator import Simulator, run_workload

D, K = 2, 5
CYCLES = 120
RATES = (0.02, 0.08, 0.20, 0.40)


def test_deflection_rate_sweep(benchmark, report):
    """Latency and deflection overhead as offered load grows."""

    def sweep():
        rows = []
        for rate in RATES:
            for priority in ("oldest", "closest"):
                network = DeflectionNetwork(D, K, priority=priority)
                workload = uniform_deflection_workload(
                    D, K, CYCLES, rate, random.Random(int(rate * 1e4)))
                stats = network.run(workload)
                rows.append((
                    priority,
                    rate,
                    stats.injected,
                    stats.rejected_injections,
                    stats.mean_latency(),
                    stats.mean_deflections(),
                    stats.deflection_rate(),
                ))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_key = {(row[0], row[1]): row for row in rows}
    for priority in ("oldest", "closest"):
        light = by_key[(priority, RATES[0])]
        heavy = by_key[(priority, RATES[-1])]
        assert light[5] <= heavy[5]  # deflections grow with load
        assert light[4] <= heavy[4]  # latency grows with load
        assert heavy[5] < K  # but stays bounded well below pathological
    report(f"E11 (extension) — bufferless deflection routing on DN({D},{K}), "
           f"{CYCLES} cycles\n"
           + format_table(
               ["priority", "inj. rate", "injected", "rejected",
                "mean latency", "mean deflections", "deflections/hop"],
               rows, precision=3))


def test_deflection_vs_store_and_forward(benchmark, report):
    """Same offered pattern through both models (uni-directional)."""

    def compare():
        rows = []
        for rate in (0.05, 0.20):
            rng_seed = int(rate * 1e4)
            workload = uniform_deflection_workload(D, K, CYCLES, rate,
                                                   random.Random(rng_seed))
            network = DeflectionNetwork(D, K)
            hot = network.run(list(workload))
            simulator = Simulator(D, K, bidirectional=False)
            buffered = run_workload(
                simulator, UnidirectionalOptimalRouter(),
                [(float(t), s, d) for t, s, d in workload])
            rows.append((
                rate,
                hot.mean_latency(),
                hot.mean_deflections(),
                buffered.mean_latency(),
                buffered.mean_queue_delay(),
            ))
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    for rate, hot_latency, deflections, buffered_latency, queue_delay in rows:
        # Both models deliver everything; hot-potato trades buffers for
        # deflection hops, store-and-forward trades hops for queueing.
        assert hot_latency > 0 and buffered_latency > 0
    report("E11 — deflection (bufferless) vs store-and-forward (buffered)\n"
           + format_table(
               ["inj. rate", "hot-potato latency", "mean deflections",
                "buffered latency", "buffered queue delay"], rows, precision=3)
           + "\nhot-potato pays misroutes; store-and-forward pays queueing — "
           "both built on Algorithm 1's port preference.")
