"""E17 — Routed-message throughput: packed words + memoized batch routing.

The paper's asymptotic promise is O(k) planning per pair; this bench
measures what the *simulator* actually sustains per second, and what the
performance layer of this PR buys on top:

1. **Simulator throughput** — routed messages/sec on a steady-state
   workload with repeated (source, destination) pairs, comparing the
   uncached tuple baseline (every message re-plans its witness) against
   the warm :class:`RouteCache` fast path.  The acceptance bar is a
   >= 5x speedup on the planning-dominated warm-cache workload (large
   k), with a >= 2x floor on the hop-bound small graphs where delivery
   itself is irreducible O(hops) work.
2. **Plan-only throughput** — plans/sec, cold vs. warm cache.
3. **Shift arithmetic** — per-hop word updates/sec, tuple rebuilds vs.
   O(1) packed div-mod (:mod:`repro.core.packed`).
4. **Distance rows** — BFS row construction, tuple-dict
   ``distances_from`` vs. the packed bytearray engine of
   :mod:`repro.core.batch`.
5. **Crossover sweep** — ``undirected_witness`` via the O(k²) matching
   method vs. the O(k) suffix tree across k; the last k where matching
   wins is the measured value behind ``distance.AUTO_METHOD_CUTOVER``
   (previously a hard-coded guess).

Results are appended to ``BENCH_routing_throughput.json`` at the repo
root as one trajectory record per run (in the :mod:`repro.benchio`
``{"meta": ..., "results": [...]}`` envelope), so regressions are
visible over time.  The small ``test_throughput_smoke`` variant runs the whole
machinery on a toy grid in well under a second for CI smoke jobs
(``make bench-smoke``).
"""

from __future__ import annotations

import os
import random
import time
from typing import Dict, List, Tuple

from repro.analysis.tables import format_table
from repro.benchio import append_record
from repro.core.batch import distances_row
from repro.core.distance import (
    AUTO_METHOD_CUTOVER,
    distances_from,
    undirected_witness_matching,
    undirected_witness_suffix_tree,
)
from repro.core.packed import PackedSpace
from repro.core.word import left_shift, random_word, right_shift
from repro.network.router import BidirectionalOptimalRouter
from repro.network.simulator import Simulator, run_workload

GRID: Tuple[Tuple[int, int], ...] = ((2, 8), (2, 12), (4, 6))
JSON_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_routing_throughput.json")

#: Simulator workload shape: repeated OD pairs model steady-state traffic.
DISTINCT_PAIRS = 40
REPEATS = 25


def _workload(d: int, k: int, distinct: int, repeats: int):
    """(time, source, destination) stream cycling over ``distinct`` pairs."""
    rng = random.Random(97 * d + k)
    pairs = []
    while len(pairs) < distinct:
        x, y = random_word(d, k, rng), random_word(d, k, rng)
        if x != y:
            pairs.append((x, y))
    injections = []
    t = 0.0
    for _ in range(repeats):
        for x, y in pairs:
            injections.append((t, x, y))
            t += 0.1  # stagger so queueing does not dominate planning
    return pairs, injections


def _simulator_messages_per_sec(d: int, k: int, router, injections,
                                rounds: int = 3) -> float:
    """Best-of-``rounds`` delivered messages/sec (min elapsed kills noise)."""
    best = float("inf")
    for _ in range(rounds):
        simulator = Simulator(d, k)
        start = time.perf_counter()
        stats = run_workload(simulator, router, injections)
        elapsed = time.perf_counter() - start
        assert stats.delivered_count == len(injections)
        best = min(best, elapsed)
    return len(injections) / best


def _measure_simulator(d: int, k: int, distinct: int = DISTINCT_PAIRS,
                       repeats: int = REPEATS) -> Dict[str, float]:
    # Concrete (wildcard-free) paths: wildcard hops probe link costs at
    # every site, a load-balancing feature orthogonal to the planning
    # throughput this bench isolates.
    pairs, injections = _workload(d, k, distinct, repeats)
    uncached = _simulator_messages_per_sec(
        d, k, BidirectionalOptimalRouter(cache_size=0, use_wildcards=False),
        injections)
    warm_router = BidirectionalOptimalRouter(cache_size=4 * distinct,
                                             use_wildcards=False)
    for x, y in pairs:  # warm the cache: one planning pass per distinct pair
        warm_router.plan(x, y)
    warm = _simulator_messages_per_sec(d, k, warm_router, injections)
    return {
        "uncached_msgs_per_sec": uncached,
        "warm_cache_msgs_per_sec": warm,
        "speedup": warm / uncached,
        "cache_hit_rate": warm_router.cache.hit_rate,
    }


def _measure_plan_only(d: int, k: int, count: int = 400) -> Dict[str, float]:
    rng = random.Random(13 * d + k)
    pairs = [(random_word(d, k, rng), random_word(d, k, rng))
             for _ in range(count)]
    cold_router = BidirectionalOptimalRouter(cache_size=0)
    start = time.perf_counter()
    for x, y in pairs:
        cold_router.plan(x, y)
    cold = count / (time.perf_counter() - start)
    warm_router = BidirectionalOptimalRouter(cache_size=2 * count)
    for x, y in pairs:
        warm_router.plan(x, y)
    start = time.perf_counter()
    for x, y in pairs:
        warm_router.plan(x, y)
    warm = count / (time.perf_counter() - start)
    return {"cold_plans_per_sec": cold, "warm_plans_per_sec": warm,
            "speedup": warm / cold}


def _measure_shifts(d: int, k: int, words: int = 200) -> Dict[str, float]:
    """Per-hop arithmetic: k alternating shifts per word, tuple vs. packed."""
    rng = random.Random(7 * d + k)
    space = PackedSpace(d, k)
    tuples = [random_word(d, k, rng) for _ in range(words)]
    packed = [space.pack(w) for w in tuples]
    digits = [rng.randrange(d) for _ in range(k)]
    ops = words * k

    start = time.perf_counter()
    for w in tuples:
        for i, a in enumerate(digits):
            w = left_shift(w, a) if i % 2 == 0 else right_shift(w, a)
    tuple_rate = ops / (time.perf_counter() - start)

    left, right = space.left, space.right
    start = time.perf_counter()
    for v in packed:
        for i, a in enumerate(digits):
            v = left(v, a) if i % 2 == 0 else right(v, a)
    packed_rate = ops / (time.perf_counter() - start)
    return {"tuple_shifts_per_sec": tuple_rate,
            "packed_shifts_per_sec": packed_rate,
            "speedup": packed_rate / tuple_rate}


def _measure_bfs_rows(d: int, k: int, sources: int = 8) -> Dict[str, float]:
    rng = random.Random(3 * d + k)
    space = PackedSpace(d, k)
    words = [random_word(d, k, rng) for _ in range(sources)]

    start = time.perf_counter()
    for w in words:
        distances_from(w, d)
    tuple_rate = sources / (time.perf_counter() - start)

    start = time.perf_counter()
    for w in words:
        distances_row(space, space.pack(w))
    packed_rate = sources / (time.perf_counter() - start)
    return {"tuple_rows_per_sec": tuple_rate,
            "packed_rows_per_sec": packed_rate,
            "speedup": packed_rate / tuple_rate}


def _measure_crossover(ks=(8, 10, 12, 14, 16, 20), pairs_per_k: int = 300,
                       repetitions: int = 3) -> Dict[str, object]:
    """The AUTO_METHOD_CUTOVER measurement: last k where matching wins."""
    rng = random.Random(0xC05)
    sweep: List[Dict[str, float]] = []
    cutover = 0
    for k in ks:
        pairs = [(random_word(2, k, rng), random_word(2, k, rng))
                 for _ in range(pairs_per_k)]
        timings = {}
        for label, fn in (("matching", undirected_witness_matching),
                          ("suffix_tree", undirected_witness_suffix_tree)):
            best = float("inf")
            for _ in range(repetitions):
                start = time.perf_counter()
                for x, y in pairs:
                    fn(x, y)
                best = min(best, time.perf_counter() - start)
            timings[label] = best / pairs_per_k
        ratio = timings["matching"] / timings["suffix_tree"]
        sweep.append({"k": k, "matching_us": timings["matching"] * 1e6,
                      "suffix_tree_us": timings["suffix_tree"] * 1e6,
                      "ratio": ratio})
    for entry in sweep:  # first crossing: last k before matching loses
        if entry["ratio"] <= 1.0:
            cutover = entry["k"]
        else:
            break
    return {"sweep": sweep, "measured_cutover": cutover}


def _append_trajectory(record: Dict[str, object]) -> None:
    append_record(JSON_PATH, record, bench="routing_throughput")


def test_routing_throughput(benchmark, report):
    """The full measurement grid; writes BENCH_routing_throughput.json."""

    def measure():
        record: Dict[str, object] = {"grid": []}
        for d, k in GRID:
            entry: Dict[str, object] = {"d": d, "k": k}
            entry["simulator"] = _measure_simulator(d, k)
            entry["plan_only"] = _measure_plan_only(d, k)
            entry["shifts"] = _measure_shifts(d, k)
            entry["bfs_rows"] = _measure_bfs_rows(d, k)
            record["grid"].append(entry)
        record["crossover"] = _measure_crossover()
        return record

    record = benchmark.pedantic(measure, rounds=1, iterations=1)
    _append_trajectory(record)

    rows = []
    for entry in record["grid"]:
        sim = entry["simulator"]
        rows.append([
            f"DG({entry['d']},{entry['k']})",
            sim["uncached_msgs_per_sec"],
            sim["warm_cache_msgs_per_sec"],
            sim["speedup"],
            entry["plan_only"]["speedup"],
            entry["shifts"]["speedup"],
            entry["bfs_rows"]["speedup"],
        ])
    report("E17 — routed throughput (messages/sec) and fast-path speedups\n"
           + format_table(
               ["graph", "uncached msg/s", "warm-cache msg/s", "sim x",
                "plan x", "shift x", "bfs x"], rows, precision=1))
    cross = record["crossover"]
    report("E17 — matching vs suffix-tree crossover (AUTO_METHOD_CUTOVER)\n"
           + format_table(
               ["k", "matching us", "suffix us", "ratio"],
               [[r["k"], r["matching_us"], r["suffix_tree_us"], r["ratio"]]
                for r in cross["sweep"]], precision=2)
           + f"\nmeasured cutover: k = {cross['measured_cutover']}"
           + f" (distance.AUTO_METHOD_CUTOVER = {AUTO_METHOD_CUTOVER})")

    # Acceptance: >= 5x messages/sec on the warm-cache simulator workload.
    # Planning cost grows with k while per-hop cost is flat, so the 5x bar
    # is set by the planning-dominated grid point (DG(2,12) here); the
    # hop-bound small-k points are reported in full and held to a >= 2x
    # regression floor (delivery itself is irreducible O(hops) work that
    # no amount of route caching can remove).
    speedups = {(e["d"], e["k"]): e["simulator"]["speedup"]
                for e in record["grid"]}
    assert max(speedups.values()) >= 5.0, (
        f"no warm-cache workload reached 5x: {speedups}"
    )
    for (d, k), speedup in speedups.items():
        assert speedup >= 2.0, (
            f"warm-cache speedup regressed below 2x on DG({d},{k}): "
            f"{speedup:.2f}x"
        )
    # The shipped cutover constant must sit inside the measured crossover
    # band.  The ratio curve is nearly flat around 1.0 for mid-range k, so
    # asserting on the exact crossing k would flake; instead require that
    # neither side of the auto dispatch pays a large penalty: matching is
    # within 25% of the suffix tree at the constant itself, and the suffix
    # tree is within 25% at the next sweep step above it.
    by_k = {r["k"]: r["ratio"] for r in cross["sweep"]}
    assert AUTO_METHOD_CUTOVER in by_k, "cutover constant not in sweep grid"
    assert by_k[AUTO_METHOD_CUTOVER] <= 1.25, (
        f"AUTO_METHOD_CUTOVER={AUTO_METHOD_CUTOVER} is stale: matching is "
        f"{by_k[AUTO_METHOD_CUTOVER]:.2f}x the suffix tree there"
    )
    above = min((k for k in by_k if k > AUTO_METHOD_CUTOVER), default=None)
    if above is not None:
        assert by_k[above] >= 0.80, (
            f"AUTO_METHOD_CUTOVER={AUTO_METHOD_CUTOVER} is stale: matching "
            f"still clearly wins at k={above} "
            f"(ratio {by_k[above]:.2f})"
        )


def test_throughput_smoke():
    """Fast CI smoke: the cache fast path beats the uncached baseline.

    Runs the same machinery as the full bench on a single small graph
    with a tiny workload; asserts a conservative 2x so the job fails
    loudly on a real regression without flaking on noise.
    """
    d, k = 2, 8
    result = _measure_simulator(d, k, distinct=12, repeats=10)
    assert result["cache_hit_rate"] > 0.9
    assert result["speedup"] >= 2.0, (
        f"warm-cache smoke speedup collapsed: {result['speedup']:.2f}x"
    )
    shifts = _measure_shifts(d, k, words=50)
    assert shifts["packed_shifts_per_sec"] > 0
    rows = _measure_bfs_rows(d, k, sources=2)
    assert rows["packed_rows_per_sec"] > rows["tuple_rows_per_sec"]
