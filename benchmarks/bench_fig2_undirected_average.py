"""E3 — Figure 2: average distance of the undirected de Bruijn graphs.

The paper gives no closed form for the undirected average distance δ̄(d, k)
and presents numerical curves instead (computed for the report by Michel
Syska).  This bench regenerates the series: exact all-pairs means for all
sizes that fit the memory guard, extended by uniform sampling, and renders
the curves as an ASCII plot.

Shape checks encoded as assertions:
* δ̄ grows monotonically in k and stays strictly below the directed mean;
* bidirectional links buy real distance: δ̄/k sits well below 1 (≈ 0.5-0.65
  at the sizes measured) while the directed ratio tends to 1;
* at fixed k, δ̄ increases with d toward the diameter.
"""

from __future__ import annotations

import random

from repro.analysis.distributions import figure2_series
from repro.analysis.exact import directed_average_distance
from repro.analysis.tables import format_table
from repro.analysis.textplot import render_plot
from repro.core.average_distance import undirected_average_distance_sampled

D_VALUES = (2, 3, 4, 5)
K_MAX = 10
CELL_GUARD = 1_048_576  # exact enumeration up to N = 1024


def test_fig2_exact_series(benchmark, report):
    """Exact δ̄(d, k) for every size within the guard."""
    series = benchmark(figure2_series, D_VALUES, K_MAX, CELL_GUARD)
    rows = []
    for d in D_VALUES:
        points = series[d]
        means = [m for _, m in points]
        assert means == sorted(means)  # monotone in k
        for k, mean in points:
            directed_mean = directed_average_distance(d, k)
            assert mean <= directed_mean + 1e-9
            rows.append((d, k, mean, directed_mean, mean / k))
    # At fixed k, the mean approaches the diameter as d grows.
    fixed_k = 3
    at_k = [series[d] for d in D_VALUES]
    means_at_k = [dict(points).get(fixed_k) for points in at_k]
    means_at_k = [m for m in means_at_k if m is not None]
    assert means_at_k == sorted(means_at_k)
    report("E3 / Figure 2 — undirected average distance δ̄(d, k), exact\n"
           + format_table(["d", "k", "undirected mean", "directed mean", "mean / k"], rows)
           + "\n" + render_plot(
               {f"d={d}": [(float(k), m) for k, m in series[d]] for d in D_VALUES},
               x_label="k", y_label="average distance"))


def test_fig2_sampled_extension(benchmark, report):
    """Monte-Carlo extension of the d = 2 curve to k = 16."""

    def sample():
        rows = []
        for k in (8, 10, 12, 14, 16):
            mean = undirected_average_distance_sampled(2, k, samples=3000, rng=random.Random(k))
            rows.append((2, k, mean, mean / k))
        return rows

    rows = benchmark(sample)
    ratios = [ratio for _, _, _, ratio in rows]
    for ratio in ratios:
        assert 0.4 < ratio < 0.8  # the δ̄ ≈ 0.55·k shape persists
    report("E3 (extension) — sampled δ̄(2, k) for large k\n"
           + format_table(["d", "k", "sampled mean", "mean / k"], rows))
