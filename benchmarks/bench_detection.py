"""E20 — distributed failure detection vs the oracle resilience stack.

PR 3's chaos campaign (E19) proved the resilience machinery works when
every site magically knows the failed set.  E20 removes the magic: a
SWIM-style detector (:mod:`repro.network.membership`) runs inside the
simulator — periodic probes, indirect probe-requests, suspicion with
incarnation refutation, piggybacked dissemination — and the
detection-driven strategy legs (``detour-detect``, ``repair-detect``)
drive the *same* detour policy and self-healing table from each site's
detected view instead of ground truth.

Asserted, at full chaos intensity on DG(2, 6):

* detection-driven repair delivers at least **85%** of oracle-driven
  repair (the acceptance bar — the price of honest knowledge is
  bounded), and
* both detection legs still beat the drop-on-failure baseline.

Alongside the paired campaign, a detector-only characterisation run
records detection latency, false positives/negatives, and protocol
overhead per site.  Everything replays from the recorded seeds; results
append to ``BENCH_detection.json`` (benchio envelope).
"""

from __future__ import annotations

import os
from typing import Dict, List

from repro.analysis.tables import format_kv_block, format_table
from repro.benchio import append_record
from repro.network.chaos import ChaosConfig, generate_schedule, run_campaign
from repro.network.membership import SwimConfig, SwimDetector
from repro.network.simulator import Simulator

JSON_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_detection.json")

GRAPH = (2, 6)
INTENSITIES = (0.0, 0.5, 1.0)
#: Detection-driven repair must deliver at least this fraction of the
#: oracle-driven repair's rate at full intensity (the acceptance bar).
ORACLE_FRACTION = 0.85
CAMPAIGN = ChaosConfig(
    d=GRAPH[0], k=GRAPH[1], seed="bench-e20", horizon=3000.0,
    messages=300, spacing=5.0, mtbf=600.0, mttr=120.0,
    loss_rate=0.05, regional_rate=0.0005, region_prefix_len=2,
)
STRATEGIES = ("oblivious", "repair", "detour-detect", "repair-detect")


def test_detection_vs_oracle_campaign(benchmark, report):
    """The E20 sweep; writes BENCH_detection.json."""

    def measure() -> List[Dict[str, object]]:
        return run_campaign(CAMPAIGN, INTENSITIES, STRATEGIES)

    records = benchmark.pedantic(measure, rounds=1, iterations=1)
    by_key = {(r["strategy"], r["intensity"]): r for r in records}

    # Fault-free control: nobody loses traffic, and the detector never
    # convicts anyone.
    for strategy in STRATEGIES:
        control = by_key[(strategy, 0.0)]
        assert control["delivery_ratio"] == 1.0
        assert control["false_positives"] == 0
    # The detector actually ran on the detection legs (and only there).
    assert by_key[("detour-detect", 0.0)]["membership_messages"] > 0
    assert by_key[("repair", 1.0)]["membership_messages"] == 0

    top = max(INTENSITIES)
    oracle = by_key[("repair", top)]["delivery_ratio"]
    detected = by_key[("repair-detect", top)]["delivery_ratio"]
    floor = by_key[("oblivious", top)]["delivery_ratio"]
    assert oracle > floor  # the oracle stack still earns its keep
    assert detected >= ORACLE_FRACTION * oracle, (
        f"detection-driven repair must reach {ORACLE_FRACTION:.0%} of "
        f"oracle repair at intensity {top}: {detected:.3f} vs "
        f"{ORACLE_FRACTION * oracle:.3f} (oracle {oracle:.3f})")
    for strategy in ("detour-detect", "repair-detect"):
        ratio = by_key[(strategy, top)]["delivery_ratio"]
        assert ratio > floor, (
            f"{strategy} must beat oblivious at intensity {top}: "
            f"{ratio:.3f} vs {floor:.3f}")
    # Detection evidence: outages were detected, with finite latency.
    leg = by_key[("repair-detect", top)]
    assert leg["detected_outages"] > 0
    assert leg["mean_detection_latency"] > 0
    assert leg["table_repairs"] > 0

    record: Dict[str, object] = {
        "graph": {"d": CAMPAIGN.d, "k": CAMPAIGN.k,
                  "n": CAMPAIGN.d ** CAMPAIGN.k},
        "config": {
            "seed": CAMPAIGN.seed, "horizon": CAMPAIGN.horizon,
            "messages": CAMPAIGN.messages, "mtbf": CAMPAIGN.mtbf,
            "mttr": CAMPAIGN.mttr, "loss_rate": CAMPAIGN.loss_rate,
            "regional_rate": CAMPAIGN.regional_rate,
            "probe_interval": CAMPAIGN.probe_interval,
            "probe_timeout": CAMPAIGN.probe_timeout,
            "suspicion_timeout": CAMPAIGN.suspicion_timeout,
            "indirect_probes": CAMPAIGN.indirect_probes,
        },
        "oracle_fraction_required": ORACLE_FRACTION,
        "oracle_fraction_achieved": detected / oracle if oracle else 0.0,
        "campaign": records,
    }
    append_record(JSON_PATH, record, bench="detection")

    rows = [(r["strategy"], r["intensity"], r["delivery_ratio"],
             r["mean_detection_latency"], r["false_positives"],
             r["false_negatives"], r["membership_messages"],
             r["table_repairs"])
            for r in records]
    report(f"E20 — detection-driven vs oracle repair on DG{GRAPH}, "
           f"seed {CAMPAIGN.seed!r}\n"
           + format_table(
               ["strategy", "intensity", "delivery ratio",
                "mean det latency", "false pos", "false neg",
                "swim msgs", "repairs"],
               rows, precision=3)
           + f"\nrepair-detect reaches {detected / oracle:.1%} of oracle "
             f"repair at intensity {top} (bar: {ORACLE_FRACTION:.0%}); "
             "the campaign replays exactly from its seed.")


def test_detector_characterisation(benchmark, report):
    """Detector-only run: latency / accuracy / overhead, no data traffic."""
    d, k = GRAPH
    seed = "bench-e20-detector"
    horizon = 3000.0

    def measure():
        simulator = Simulator(d, k)
        schedule = generate_schedule(
            d, k, horizon, seed=f"{seed}:faults", mtbf=600.0, mttr=120.0)
        schedule.apply(simulator)
        detector = SwimDetector(
            simulator, SwimConfig(seed=f"{seed}:swim"), horizon=horizon)
        detector.start()
        simulator.run()
        outcome = detector.finalize()
        stats = simulator.stats
        return {
            "sites": len(detector.sites),
            "outages": outcome.outages,
            "detected": outcome.detected,
            "detected_ratio": (outcome.detected / outcome.outages
                               if outcome.outages else 1.0),
            "mean_detection_latency": outcome.mean_latency,
            "p95_detection_latency": stats.p95_detection_latency(),
            "false_positives": outcome.false_positives,
            "false_negatives": outcome.false_negatives,
            "messages": outcome.messages,
            "bytes": outcome.bytes,
            "msgs_per_site_per_unit": outcome.messages
            / (len(detector.sites) * horizon),
        }

    row = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert row["outages"] > 0
    assert row["detected"] > 0
    # On a clean (lossless) control channel the detector should catch
    # most outages that outlive its detection budget.
    assert row["detected_ratio"] > 0.5
    assert row["false_positives"] <= row["detected"]

    append_record(JSON_PATH, {
        "graph": {"d": d, "k": k, "n": d ** k},
        "seed": seed,
        "characterisation": row,
    }, bench="detection_characterisation")

    report(f"E20 — SWIM detector characterisation on DG({d},{k}), "
           f"seed {seed!r}\n"
           + format_kv_block("lossless control channel", [
               (key, round(value, 4) if isinstance(value, float) else value)
               for key, value in row.items()]))


def test_detection_smoke(benchmark):
    """Small seeded detection campaign (CI-fast): detection still pays.

    DG(2, 5) rather than the resilience smoke's DG(2, 4): with only 16
    sites a single stale conviction swings the delivery ratio by whole
    percentage points, which makes the oracle-fraction bar about noise
    instead of the detector.  32 sites is still sub-second.
    """
    config = ChaosConfig(d=2, k=5, seed="bench-e20-smoke", horizon=1000.0,
                         messages=100, spacing=5.0, mtbf=400.0, mttr=100.0,
                         loss_rate=0.02)

    def run():
        return run_campaign(config, intensities=(0.0, 1.0),
                            strategies=STRATEGIES)

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    by_key = {(r["strategy"], r["intensity"]): r for r in records}
    assert by_key[("repair-detect", 0.0)]["delivery_ratio"] == 1.0
    floor = by_key[("oblivious", 1.0)]["delivery_ratio"]
    oracle = by_key[("repair", 1.0)]["delivery_ratio"]
    detected = by_key[("repair-detect", 1.0)]["delivery_ratio"]
    assert detected >= ORACLE_FRACTION * oracle
    assert detected > floor
    assert by_key[("detour-detect", 1.0)]["delivery_ratio"] > floor
    assert by_key[("repair-detect", 1.0)]["detected_outages"] > 0
    # Replay determinism: the same seed reproduces the same records.
    assert run() == records
